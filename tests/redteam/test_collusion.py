"""Red team: attacks that need more than one bad actor or identity.

Two-host collusion (a compromised relay diverts the agent to a partner
that hosts it off the books) and quarantine evasion by identity rotation
(a banned host re-registers under a fresh name, keeping its keys).
"""

from __future__ import annotations

from repro.credentials.rights import Rights
from repro.net.faults import redirect, tamper_state

from tests.redteam.campaign import assert_attack_detected, hopper


def test_colluding_pair_is_caught_at_first_honest_server(world):
    w = world(3)
    home, s1, s2 = w.servers
    # The colluding partner: a full server that neither appraises
    # arrivals nor seals departures (it runs the integrity layer
    # disabled — that is exactly what makes it complicit).
    colluder = w.add_server("urn:server:backalley.net/c0")
    colluder.integrity = None
    colluder.admission.integrity = None
    for honest in (home, s1, s2):
        w.network.connect(colluder.name, honest.name,
                          latency=0.005, bandwidth=1e7)
    w.faults().compromise(s1, redirect(colluder.name), at=0.0)

    w.launch(hopper(s1.name, s2.name, home.name), Rights.all())
    w.run(detect_deadlock=False)
    # The diversion succeeded — the colluder hosted the agent without
    # verifying the (misdirected) tip link — but its forwarding carries
    # no link for the colluder's hop, and the first honest server counts
    # links against the trace.
    assert colluder.stats["agents_hosted"] == 1
    assert s2.stats["agents_hosted"] == 0  # the sealed-for stop was bypassed
    assert_attack_detected(w, home, colluder, reason="trace-mismatch")


def test_quarantine_evasion_by_identity_rotation_is_blocked(world):
    w = world(3)
    home, s1, s2 = w.servers
    w.faults().compromise(s1, tamper_state(evil=True), at=0.0, duration=5.0)
    w.launch(hopper(s1.name, s2.name), Rights.all())
    w.run(detect_deadlock=False)
    assert s2.integrity.quarantine.blocked_name(s1.name)

    # The attacker re-registers under a fresh name and a fresh CA cert —
    # but its appraisal links can only verify under the key it owns, and
    # the quarantine remembers the key's fingerprint.
    reborn = w.add_server("urn:server:phoenix.net/s1b", keys=s1.secure.keys)
    for honest in (home, s2):
        w.network.connect(reborn.name, honest.name,
                          latency=0.005, bandwidth=1e7)
    w.launch(hopper(reborn.name, s2.name), Rights.all())
    w.run(detect_deadlock=False)
    assert s2.stats["agents_hosted"] == 0
    assert s2.integrity.stats["quarantine_evasions_blocked"] == 1
    assert_attack_detected(
        w, s2, reborn, reason="quarantine-evasion", count=1, total=2
    )
    # The rotated identity is now banned under its new name too.
    assert s2.integrity.quarantine.blocked_name(reborn.name)
    fingerprint = s1.secure.keys.public.fingerprint()
    assert s2.integrity.quarantine.blocked_fingerprint(fingerprint)

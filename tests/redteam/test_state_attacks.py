"""Red team: hosts that rewrite what the agent carries.

Three attacks on the sealed payload — doctoring captured state, shedding
the whole appraisal record, and stripping delegation links to regain
rights the forwarder deliberately narrowed.  Each is refused by the next
honest server with a typed reason, the attacker is quarantined, and the
reject span lands causally after the malicious departure.
"""

from __future__ import annotations

from repro.credentials.rights import Rights
from repro.net.faults import strip_chain, strip_delegation, tamper_state

from tests.redteam.campaign import assert_attack_detected, hopper


def test_state_rewrite_is_detected_and_quarantined(world):
    w = world(3)
    home, s1, s2 = w.servers
    controller = w.faults().compromise(
        s1, tamper_state(poison="injected-by-s1"), at=0.0
    )
    w.launch(hopper(s1.name, s2.name), Rights.all())
    w.run(detect_deadlock=False)
    assert controller.applied == 1
    assert s1.stats["agents_hosted"] == 1  # the agent did run at s1...
    assert s2.stats["agents_hosted"] == 0  # ...but its doctored copy died
    assert s1.stats["transfers_refused_remote"] == 1
    assert_attack_detected(w, s2, s1, reason="state-tampered")


def test_stripped_appraisal_chain_is_refused(world):
    w = world(3)
    home, s1, s2 = w.servers
    w.faults().compromise(s1, strip_chain(), at=0.0)
    w.launch(hopper(s1.name, s2.name), Rights.all())
    w.run(detect_deadlock=False)
    assert s2.stats["agents_hosted"] == 0
    assert_attack_detected(w, s2, s1, reason="missing-chain")


def test_delegation_stripping_is_a_state_tamper(world):
    """Credential-delegation abuse: s1 sheds the restriction link the
    home site attached, regaining the owner's full rights.  The stripped
    chain is *cryptographically valid* — only the appraisal seal, whose
    state digest covers the credentials as forwarded, catches it."""
    w = world(3)
    home, s1, s2 = w.servers
    home.forward_restriction = Rights.of("Buffer.get", "Buffer.size")
    w.faults().compromise(s1, strip_delegation(), at=0.0)
    w.launch(hopper(s1.name, s2.name), Rights.all())
    w.run(detect_deadlock=False)
    assert s1.stats["agents_hosted"] == 1  # the restricted copy was fine
    assert s2.stats["agents_hosted"] == 0
    assert_attack_detected(w, s2, s1, reason="state-tampered")

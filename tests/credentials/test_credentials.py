"""Tests for credentials and cascaded delegation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.credentials.credentials import Credentials
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.rights import Rights
from repro.crypto.cert import CertificateAuthority
from repro.crypto.keys import KeyPair
from repro.errors import CredentialError, CredentialExpiredError
from repro.naming.urn import URN
from repro.util.clock import VirtualClock
from repro.util.rng import make_rng
from repro.util.serialization import decode, encode

OWNER = URN.parse("urn:principal:umn.edu/anand")
CREATOR = URN.parse("urn:principal:umn.edu/launcher-app")
AGENT = URN.parse("urn:agent:umn.edu/anand/shopper-1")
SERVER = URN.parse("urn:server:store.com/front")


@pytest.fixture(scope="module")
def setup():
    clock = VirtualClock()
    ca = CertificateAuthority("root-ca", make_rng(10, "ca"), clock)
    owner_keys = KeyPair.generate(make_rng(11, "owner"), bits=512)
    server_keys = KeyPair.generate(make_rng(12, "server"), bits=512)
    owner_cert = ca.issue(str(OWNER), owner_keys.public)
    server_cert = ca.issue(str(SERVER), server_keys.public)
    return clock, ca, owner_keys, owner_cert, server_keys, server_cert


def issue(setup, rights=None, lifetime=3600.0) -> Credentials:
    clock, ca, owner_keys, owner_cert, _, _ = setup
    return Credentials.issue(
        agent=AGENT,
        owner=OWNER,
        creator=CREATOR,
        owner_keys=owner_keys,
        owner_certificate=owner_cert,
        rights=rights if rights is not None else Rights.of("Buffer.*"),
        now=clock.now(),
        lifetime=lifetime,
    )


class TestCredentials:
    def test_issue_and_verify(self, setup):
        clock, ca, *_ = setup
        cred = issue(setup)
        cred.verify(ca, clock.now())
        assert cred.agent == AGENT and cred.owner == OWNER
        assert cred.rights.permits("Buffer.get")

    def test_expired_rejected(self, setup):
        clock, ca, *_ = setup
        cred = issue(setup, lifetime=10.0)
        with pytest.raises(CredentialExpiredError):
            cred.verify(ca, clock.now() + 11.0)

    def test_not_yet_valid_rejected(self, setup):
        _, ca, *_ = setup
        cred = issue(setup)
        with pytest.raises(CredentialExpiredError):
            cred.verify(ca, cred.issued_at - 1.0)

    def test_tampered_rights_rejected(self, setup):
        clock, ca, *_ = setup
        cred = issue(setup, rights=Rights.of("Buffer.get"))
        forged = dataclasses.replace(cred, rights=Rights.all())
        with pytest.raises(CredentialError, match="invalid owner signature"):
            forged.verify(ca, clock.now())

    def test_tampered_owner_rejected(self, setup):
        clock, ca, *_ = setup
        cred = issue(setup)
        forged = dataclasses.replace(
            cred, owner=URN.parse("urn:principal:evil.com/mallory")
        )
        with pytest.raises(CredentialError):
            forged.verify(ca, clock.now())

    def test_certificate_swap_rejected(self, setup):
        clock, ca, owner_keys, owner_cert, server_keys, server_cert = setup
        cred = issue(setup)
        forged = dataclasses.replace(cred, owner_certificate=server_cert)
        with pytest.raises(CredentialError):
            forged.verify(ca, clock.now())

    def test_untrusted_ca_rejected(self, setup):
        clock, _, *_ = setup
        other_ca = CertificateAuthority("other-ca", make_rng(13, "other"), clock)
        cred = issue(setup)
        with pytest.raises(CredentialError):
            cred.verify(other_ca, clock.now())

    def test_non_agent_subject_rejected(self, setup):
        clock, ca, owner_keys, owner_cert, *_ = setup
        with pytest.raises(CredentialError, match="agent URN"):
            Credentials.issue(
                agent=SERVER,  # wrong kind
                owner=OWNER,
                creator=CREATOR,
                owner_keys=owner_keys,
                owner_certificate=owner_cert,
                rights=Rights.all(),
                now=clock.now(),
            )

    def test_wrong_owner_cert_rejected_at_issue(self, setup):
        clock, ca, owner_keys, _, _, server_cert = setup
        with pytest.raises(CredentialError, match="names"):
            Credentials.issue(
                agent=AGENT,
                owner=OWNER,
                creator=CREATOR,
                owner_keys=owner_keys,
                owner_certificate=server_cert,
                rights=Rights.all(),
                now=clock.now(),
            )

    def test_nonpositive_lifetime_rejected(self, setup):
        with pytest.raises(CredentialError):
            issue(setup, lifetime=0.0)

    def test_serialization_roundtrip_still_verifies(self, setup):
        clock, ca, *_ = setup
        cred = issue(setup)
        restored = decode(encode(cred))
        assert restored == cred
        restored.verify(ca, clock.now())

    def test_any_bitflip_in_wire_form_detected(self, setup):
        clock, ca, *_ = setup
        cred = issue(setup)
        blob = bytearray(encode(cred))
        # Flip a byte inside the signature region (end of blob).
        blob[-5] ^= 0x01
        restored = decode(bytes(blob))
        with pytest.raises(CredentialError):
            restored.verify(ca, clock.now())


class TestDelegation:
    def test_wrap_and_verify(self, setup):
        clock, ca, *_ = setup
        chain = DelegatedCredentials.wrap(issue(setup))
        chain.verify(ca, clock.now())
        assert chain.effective_rights().permits("Buffer.get")

    def test_extend_attenuates(self, setup):
        clock, ca, _, _, server_keys, server_cert = setup
        chain = DelegatedCredentials.wrap(issue(setup))  # Buffer.*
        restricted = chain.extend(
            delegator=SERVER,
            delegator_keys=server_keys,
            delegator_certificate=server_cert,
            restriction=Rights.of("Buffer.get"),
            now=clock.now(),
        )
        restricted.verify(ca, clock.now())
        rights = restricted.effective_rights()
        assert rights.permits("Buffer.get")
        assert not rights.permits("Buffer.put")

    def test_delegation_cannot_amplify(self, setup):
        clock, ca, _, _, server_keys, server_cert = setup
        chain = DelegatedCredentials.wrap(issue(setup, rights=Rights.of("Buffer.get")))
        widened = chain.extend(
            delegator=SERVER,
            delegator_keys=server_keys,
            delegator_certificate=server_cert,
            restriction=Rights.all(),  # server "grants" everything
            now=clock.now(),
        )
        # Base grant still gates: nothing beyond Buffer.get is permitted.
        assert not widened.effective_rights().permits("Buffer.put")

    def test_link_tamper_detected(self, setup):
        clock, ca, _, _, server_keys, server_cert = setup
        chain = DelegatedCredentials.wrap(issue(setup)).extend(
            delegator=SERVER,
            delegator_keys=server_keys,
            delegator_certificate=server_cert,
            restriction=Rights.of("Buffer.get"),
            now=clock.now(),
        )
        link = chain.links[0]
        forged_link = dataclasses.replace(link, restriction=Rights.all())
        forged = DelegatedCredentials(base=chain.base, links=(forged_link,))
        with pytest.raises(CredentialError, match="invalid signature"):
            forged.verify(ca, clock.now())

    def test_dropped_link_detected(self, setup):
        clock, ca, _, _, server_keys, server_cert = setup
        chain = DelegatedCredentials.wrap(issue(setup))
        step1 = chain.extend(
            delegator=SERVER,
            delegator_keys=server_keys,
            delegator_certificate=server_cert,
            restriction=Rights.of("Buffer.get"),
            now=clock.now(),
        )
        step2 = step1.extend(
            delegator=SERVER,
            delegator_keys=server_keys,
            delegator_certificate=server_cert,
            restriction=Rights.of("Buffer.get"),
            now=clock.now(),
        )
        # Drop the middle link: digests no longer chain.
        spliced = DelegatedCredentials(base=chain.base, links=(step2.links[1],))
        with pytest.raises(CredentialError, match="chain"):
            spliced.verify(ca, clock.now())

    def test_expired_link_rejected(self, setup):
        clock, ca, _, _, server_keys, server_cert = setup
        chain = DelegatedCredentials.wrap(issue(setup)).extend(
            delegator=SERVER,
            delegator_keys=server_keys,
            delegator_certificate=server_cert,
            restriction=Rights.of("Buffer.get"),
            now=clock.now(),
            lifetime=5.0,
        )
        with pytest.raises(CredentialExpiredError, match="link"):
            chain.verify(ca, clock.now() + 6.0)

    def test_serialization_roundtrip(self, setup):
        clock, ca, _, _, server_keys, server_cert = setup
        chain = DelegatedCredentials.wrap(issue(setup)).extend(
            delegator=SERVER,
            delegator_keys=server_keys,
            delegator_certificate=server_cert,
            restriction=Rights.of("Buffer.get"),
            now=clock.now(),
        )
        restored = decode(encode(chain))
        assert restored == chain
        restored.verify(ca, clock.now())

    def test_quota_attenuates_through_chain(self, setup):
        clock, ca, _, _, server_keys, server_cert = setup
        base = issue(setup, rights=Rights.of("Buffer.*", quotas={"Buffer.put": 100}))
        chain = DelegatedCredentials.wrap(base).extend(
            delegator=SERVER,
            delegator_keys=server_keys,
            delegator_certificate=server_cert,
            restriction=Rights.of("Buffer.*", quotas={"Buffer.put": 7}),
            now=clock.now(),
        )
        assert chain.effective_rights().quota_for("Buffer.put") == 7

"""The bounded credential-verification cache (binding fast path).

A chain verified once keeps its RSA work; only the time-dependent
conditions replay on a hit.  These tests pin the soundness obligations:
expiry is honored on hits, trust-store mutations orphan cached verdicts,
tampering never slips through, and eviction bounds memory.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.credentials.cache import (
    CredentialVerificationCache,
    credential_fingerprint,
    verify_credentials,
)
from repro.credentials.credentials import Credentials
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.rights import Rights
from repro.crypto.cert import CertificateAuthority
from repro.crypto.keys import KeyPair
from repro.crypto.trust import TrustStore
from repro.naming.urn import URN
from repro.util.clock import VirtualClock
from repro.util.rng import make_rng


class Env:
    def __init__(self, seed: int = 901):
        self.clock = VirtualClock()
        self.ca = CertificateAuthority("vc-ca", make_rng(seed, "ca"), self.clock)
        self.store = TrustStore.of(self.clock, self.ca)
        self.owner = URN.parse("urn:principal:umn.edu/anand")
        self.keys = KeyPair.generate(make_rng(seed, "owner"), bits=512)
        self.cert = self.ca.issue(str(self.owner), self.keys.public)

    def credentials(
        self, local: str = "agent-1", *, lifetime: float = 1000.0,
        cert=None,
    ) -> DelegatedCredentials:
        cred = Credentials.issue(
            agent=URN.parse(f"urn:agent:umn.edu/{local}"),
            owner=self.owner,
            creator=self.owner,
            owner_keys=self.keys,
            owner_certificate=cert if cert is not None else self.cert,
            rights=Rights.of("Buffer.*"),
            now=self.clock.now(),
            lifetime=lifetime,
        )
        return DelegatedCredentials.wrap(cred)


def test_repeat_verification_hits():
    env = Env()
    cache = CredentialVerificationCache()
    creds = env.credentials()
    for _ in range(3):
        cache.verify(creds, env.store, env.clock.now())
    assert cache.stats() == {"hits": 2, "misses": 1, "size": 1}


def test_delegated_chain_is_cached_by_whole_chain():
    env = Env()
    cache = CredentialVerificationCache()
    base = env.credentials()
    server = URN.parse("urn:principal:umn.edu/server")
    server_keys = KeyPair.generate(make_rng(7, "srv"), bits=512)
    server_cert = env.ca.issue(str(server), server_keys.public)
    extended = base.extend(
        delegator=server,
        delegator_keys=server_keys,
        delegator_certificate=server_cert,
        restriction=Rights.of("Buffer.get"),
        now=env.clock.now(),
    )
    cache.verify(base, env.store, env.clock.now())
    cache.verify(extended, env.store, env.clock.now())  # distinct identity
    assert cache.misses == 2
    cache.verify(extended, env.store, env.clock.now())
    assert cache.hits == 1
    assert credential_fingerprint(base) != credential_fingerprint(extended)


def test_expiry_is_honored_on_hits():
    """The classic cache bug — a hit outliving the credential — must not exist."""
    env = Env()
    cache = CredentialVerificationCache()
    creds = env.credentials(lifetime=100.0)
    cache.verify(creds, env.store, env.clock.now())
    env.clock.advance(99.0)
    cache.verify(creds, env.store, env.clock.now())  # still inside: hit
    assert cache.hits == 1
    env.clock.advance(2.0)  # past expires_at
    from repro.errors import CredentialExpiredError

    with pytest.raises(CredentialExpiredError):
        cache.verify(creds, env.store, env.clock.now())


def test_link_expiry_bounds_the_cached_window():
    env = Env()
    cache = CredentialVerificationCache()
    server = URN.parse("urn:principal:umn.edu/server")
    server_keys = KeyPair.generate(make_rng(8, "srv"), bits=512)
    server_cert = env.ca.issue(str(server), server_keys.public)
    extended = env.credentials(lifetime=1000.0).extend(
        delegator=server,
        delegator_keys=server_keys,
        delegator_certificate=server_cert,
        restriction=Rights.of("Buffer.get"),
        now=env.clock.now(),
        lifetime=50.0,  # the tightest bound in the chain
    )
    cache.verify(extended, env.store, env.clock.now())
    env.clock.advance(51.0)
    from repro.errors import CredentialExpiredError

    with pytest.raises(CredentialExpiredError):
        cache.verify(extended, env.store, env.clock.now())


def test_removing_an_anchor_orphans_cached_verdicts():
    env = Env()
    cache = CredentialVerificationCache()
    creds = env.credentials()
    cache.verify(creds, env.store, env.clock.now())
    env.store.remove_anchor("vc-ca")
    from repro.errors import CredentialError

    with pytest.raises(CredentialError):
        cache.verify(creds, env.store, env.clock.now())
    # Re-trusting bumps the version again: full re-verification, not a hit.
    env.store.add_anchor(env.ca.root_certificate)
    cache.verify(creds, env.store, env.clock.now())
    assert cache.hits == 0  # every verify so far ran under a new trust set
    cache.verify(creds, env.store, env.clock.now())
    assert cache.hits == 1  # stable trust set: back to hitting


def test_tampered_chain_never_verifies_cached_or_not():
    env = Env()
    cache = CredentialVerificationCache()
    honest = env.credentials()
    cache.verify(honest, env.store, env.clock.now())
    forged_base = dataclasses.replace(honest.base, rights=Rights.all())
    forged = DelegatedCredentials(base=forged_base, links=())
    from repro.errors import CredentialError

    for _ in range(2):  # failures are not memoized either
        with pytest.raises(CredentialError):
            cache.verify(forged, env.store, env.clock.now())
    assert cache.misses == 3


def test_distinct_stores_do_not_share_verdicts():
    env = Env()
    cache = CredentialVerificationCache()
    creds = env.credentials()
    empty_store = TrustStore(env.clock)
    cache.verify(creds, env.store, env.clock.now())
    from repro.errors import CredentialError

    with pytest.raises(CredentialError):  # nothing trusted over there
        cache.verify(creds, empty_store, env.clock.now())


def test_eviction_keeps_the_cache_bounded():
    env = Env()
    cache = CredentialVerificationCache(maxsize=4)
    pool = [env.credentials(f"agent-{i}") for i in range(6)]
    for creds in pool:
        cache.verify(creds, env.store, env.clock.now())
    assert len(cache) == 4
    cache.verify(pool[0], env.store, env.clock.now())  # evicted: full miss
    assert cache.misses == 7 and cache.hits == 0


def test_module_level_convenience_uses_shared_default():
    env = Env()
    creds = env.credentials()
    verify_credentials(creds, env.store, env.clock.now())
    verify_credentials(creds, env.store, env.clock.now())
    # And an explicit cache is honored:
    mine = CredentialVerificationCache()
    verify_credentials(creds, env.store, env.clock.now(), cache=mine)
    assert mine.misses == 1


def test_fingerprint_is_stable_and_memoized():
    env = Env()
    creds = env.credentials()
    assert credential_fingerprint(creds) == creds.fingerprint() == creds.chain_digest()

"""Tests for principals and group membership."""

from __future__ import annotations

import pytest

from repro.credentials.principal import Group, GroupDirectory, Principal
from repro.errors import NamingError
from repro.naming.urn import URN

ALICE = URN.parse("urn:principal:umn.edu/alice")
BOB = URN.parse("urn:principal:umn.edu/bob")
EVE = URN.parse("urn:principal:evil.com/eve")
STAFF = URN.parse("urn:group:umn.edu/staff")
ADMINS = URN.parse("urn:group:umn.edu/admins")
EVERYONE = URN.parse("urn:group:umn.edu/everyone")


def test_principal_requires_urn():
    Principal(ALICE)
    with pytest.raises(NamingError):
        Principal("alice")  # type: ignore[arg-type]


def test_group_membership_operations():
    g = Group(STAFF)
    g.add(ALICE)
    assert ALICE in g
    assert BOB not in g
    g.remove(ALICE)
    assert ALICE not in g
    g.remove(ALICE)  # idempotent


def test_directory_direct_membership():
    d = GroupDirectory()
    d.add_group(Group(STAFF, {ALICE}))
    assert d.is_member(ALICE, STAFF)
    assert not d.is_member(BOB, STAFF)
    assert not d.is_member(ALICE, ADMINS)  # unknown group: deny


def test_directory_nested_membership():
    d = GroupDirectory()
    d.add_group(Group(ADMINS, {ALICE}))
    d.add_group(Group(STAFF, {BOB, ADMINS}))  # admins nested in staff
    assert d.is_member(ALICE, STAFF)
    assert d.is_member(BOB, STAFF)
    assert not d.is_member(BOB, ADMINS)


def test_directory_cycles_tolerated():
    a = URN.parse("urn:group:x.com/a")
    b = URN.parse("urn:group:x.com/b")
    d = GroupDirectory()
    d.add_group(Group(a, {b}))
    d.add_group(Group(b, {a, ALICE}))
    assert d.is_member(ALICE, a)
    assert not d.is_member(EVE, a)


def test_groups_of():
    d = GroupDirectory()
    d.add_group(Group(ADMINS, {ALICE}))
    d.add_group(Group(STAFF, {ADMINS, BOB}))
    d.add_group(Group(EVERYONE, {STAFF}))
    assert d.groups_of(ALICE) == {ADMINS, STAFF, EVERYONE}
    assert d.groups_of(BOB) == {STAFF, EVERYONE}
    assert d.groups_of(EVE) == set()


def test_duplicate_group_rejected():
    d = GroupDirectory()
    d.add_group(Group(STAFF))
    with pytest.raises(NamingError):
        d.add_group(Group(STAFF))


def test_unknown_group_lookup():
    d = GroupDirectory()
    with pytest.raises(NamingError):
        d.group(STAFF)

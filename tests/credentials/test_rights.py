"""Tests for the rights algebra, including the attenuation property."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.credentials.rights import CompositeRights, Rights
from repro.errors import CredentialError
from repro.util.serialization import decode, encode


class TestRights:
    def test_exact_permission(self):
        r = Rights.of("Buffer.get", "Buffer.size")
        assert r.permits("Buffer.get")
        assert r.permits("Buffer.size")
        assert not r.permits("Buffer.put")

    def test_glob_patterns(self):
        r = Rights.of("Buffer.*")
        assert r.permits("Buffer.get") and r.permits("Buffer.put")
        assert not r.permits("Database.query")

    def test_all_and_none(self):
        assert Rights.all().permits("anything.at_all")
        assert not Rights.none().permits("Buffer.get")

    def test_case_sensitive(self):
        assert not Rights.of("buffer.get").permits("Buffer.get")

    def test_invalid_patterns_rejected(self):
        with pytest.raises(CredentialError):
            Rights.of("")
        with pytest.raises(CredentialError):
            Rights.of("ok", quotas={"": 3})
        with pytest.raises(CredentialError):
            Rights.of("ok", quotas={"ok": -1})

    def test_quota_minimum_over_matches(self):
        r = Rights.of("Buffer.*", quotas={"Buffer.*": 100, "Buffer.put": 10})
        assert r.quota_for("Buffer.put") == 10
        assert r.quota_for("Buffer.get") == 100
        assert r.quota_for("Database.query") is None

    def test_serialization_roundtrip(self):
        r = Rights.of("Buffer.*", "Database.query", quotas={"Buffer.put": 5})
        assert decode(encode(r)) == r

    def test_value_semantics(self):
        assert Rights.of("a.b", "c.d") == Rights.of("c.d", "a.b")


class TestCompositeRights:
    def test_conjunction(self):
        chain = CompositeRights(links=(Rights.of("Buffer.*"), Rights.of("*.get")))
        assert chain.permits("Buffer.get")
        assert not chain.permits("Buffer.put")  # second link denies
        assert not chain.permits("Database.get")  # first link denies

    def test_empty_chain_denies_all(self):
        assert not CompositeRights(links=()).permits("anything")

    def test_restricted_to_builds_chains(self):
        base = Rights.of("Buffer.*")
        chain = base.restricted_to(Rights.of("Buffer.get"))
        assert chain.permits("Buffer.get")
        assert not chain.permits("Buffer.put")
        longer = chain.restricted_to(Rights.none())
        assert not longer.permits("Buffer.get")

    def test_quota_minimum_over_links(self):
        chain = CompositeRights(
            links=(
                Rights.of("Buffer.*", quotas={"Buffer.*": 50}),
                Rights.of("Buffer.*", quotas={"Buffer.get": 5}),
            )
        )
        assert chain.quota_for("Buffer.get") == 5
        assert chain.quota_for("Buffer.put") == 50

    def test_serialization_roundtrip(self):
        chain = CompositeRights(links=(Rights.of("a.*"), Rights.of("a.b")))
        assert decode(encode(chain)) == chain

    def test_from_state_rejects_non_rights(self):
        with pytest.raises(CredentialError):
            CompositeRights.from_state(["not-rights"])


# ---------------------------------------------------------------------------
# Property: delegation only ever attenuates
# ---------------------------------------------------------------------------

_patterns = st.lists(
    st.sampled_from(
        ["Buffer.*", "Buffer.get", "Buffer.put", "*.get", "Database.*", "*"]
    ),
    max_size=3,
).map(lambda ps: Rights.of(*ps) if ps else Rights.none())

_permissions = st.sampled_from(
    ["Buffer.get", "Buffer.put", "Database.query", "Database.get", "system.exec"]
)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(_patterns, min_size=1, max_size=4),
    _patterns,
    _permissions,
)
def test_property_adding_link_never_grants(chain_rights, extra, permission):
    chain = CompositeRights(links=tuple(chain_rights))
    extended = chain.restricted_to(extra)
    if extended.permits(permission):
        assert chain.permits(permission)


@settings(max_examples=200, deadline=None)
@given(st.lists(_patterns, min_size=1, max_size=4), _permissions)
def test_property_chain_equals_conjunction(chain_rights, permission):
    chain = CompositeRights(links=tuple(chain_rights))
    assert chain.permits(permission) == all(
        r.permits(permission) for r in chain_rights
    )

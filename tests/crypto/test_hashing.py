"""Tests for the hashing helpers."""

from __future__ import annotations

import hashlib

from repro.crypto.hashing import derive_key, hash_to_int, sha256, sha256_hex


def test_sha256_concatenates_parts():
    assert sha256(b"ab", b"cd") == hashlib.sha256(b"abcd").digest()
    assert sha256() == hashlib.sha256(b"").digest()


def test_sha256_hex():
    assert sha256_hex(b"x") == hashlib.sha256(b"x").hexdigest()


def test_hash_to_int_range_and_determinism():
    value = hash_to_int(b"seed material")
    assert 0 <= value < 2**256
    assert value == hash_to_int(b"seed material")
    assert value != hash_to_int(b"other material")


def test_derive_key_is_32_bytes():
    key = derive_key(b"master", "label")
    assert len(key) == 32

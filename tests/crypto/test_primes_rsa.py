"""Tests for primality testing and raw RSA."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import rsa
from repro.crypto.hashing import sha256
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.errors import CryptoError, SignatureError
from repro.util.rng import make_rng


class TestPrimes:
    def test_small_primes(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 97, 101}
        for n in range(2, 103):
            assert is_probable_prime(n) == (n in primes or n in {
                43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89
            })

    def test_edge_cases(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(1)
        assert not is_probable_prime(-7)

    def test_known_large_prime(self):
        # 2^127 - 1 is a Mersenne prime
        assert is_probable_prime(2**127 - 1)
        assert not is_probable_prime(2**128)

    def test_carmichael_numbers_rejected(self):
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911, 62745, 162401):
            assert not is_probable_prime(n)

    def test_generate_prime_bit_length(self):
        rng = make_rng(7, "primes")
        for bits in (16, 64, 256):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)
            assert p % 2 == 1

    def test_generate_prime_deterministic(self):
        assert generate_prime(64, make_rng(1, "p")) == generate_prime(64, make_rng(1, "p"))

    def test_generate_prime_too_small(self):
        with pytest.raises(CryptoError):
            generate_prime(4, make_rng(1, "p"))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=2**20))
    def test_property_agrees_with_trial_division(self, n):
        def trial(n: int) -> bool:
            if n < 2:
                return False
            i = 2
            while i * i <= n:
                if n % i == 0:
                    return False
                i += 1
            return True

        assert is_probable_prime(n) == trial(n)


class TestRsa:
    @pytest.fixture(scope="class")
    def key(self):
        return rsa.rsa_keygen(512, make_rng(42, "rsa"))

    def test_keygen_invariants(self, key):
        assert key.n == key.p * key.q
        assert key.bits == 512
        assert key.e == 65537
        phi = (key.p - 1) * (key.q - 1)
        assert (key.e * key.d) % phi == 1
        assert (key.q * key.q_inv) % key.p == 1

    def test_keygen_bad_sizes(self):
        with pytest.raises(CryptoError):
            rsa.rsa_keygen(256, make_rng(1, "r"))
        with pytest.raises(CryptoError):
            rsa.rsa_keygen(513, make_rng(1, "r"))

    def test_sign_verify_roundtrip(self, key):
        digest = sha256(b"the agent's credentials")
        sig = rsa.rsa_sign_digest(key, digest)
        rsa.rsa_verify_digest(key.n, key.e, digest, sig)  # no raise

    def test_signature_is_deterministic(self, key):
        digest = sha256(b"msg")
        assert rsa.rsa_sign_digest(key, digest) == rsa.rsa_sign_digest(key, digest)

    def test_wrong_digest_rejected(self, key):
        sig = rsa.rsa_sign_digest(key, sha256(b"a"))
        with pytest.raises(SignatureError):
            rsa.rsa_verify_digest(key.n, key.e, sha256(b"b"), sig)

    def test_tampered_signature_rejected(self, key):
        digest = sha256(b"msg")
        sig = bytearray(rsa.rsa_sign_digest(key, digest))
        sig[10] ^= 0x01
        with pytest.raises(SignatureError):
            rsa.rsa_verify_digest(key.n, key.e, digest, bytes(sig))

    def test_wrong_length_signature_rejected(self, key):
        with pytest.raises(SignatureError, match="length"):
            rsa.rsa_verify_digest(key.n, key.e, sha256(b"m"), b"short")

    def test_out_of_range_signature_rejected(self, key):
        k = (key.n.bit_length() + 7) // 8
        too_big = (key.n + 1).to_bytes(k, "big")
        with pytest.raises(SignatureError, match="range"):
            rsa.rsa_verify_digest(key.n, key.e, sha256(b"m"), too_big)

    def test_wrong_key_rejected(self, key):
        other = rsa.rsa_keygen(512, make_rng(43, "rsa"))
        digest = sha256(b"msg")
        sig = rsa.rsa_sign_digest(key, digest)
        with pytest.raises(SignatureError):
            rsa.rsa_verify_digest(other.n, other.e, digest, sig)

    def test_digest_size_enforced(self, key):
        with pytest.raises(CryptoError):
            rsa.rsa_sign_digest(key, b"short")

    def test_kem_roundtrip(self, key):
        ct, shared = rsa.rsa_encapsulate(key.n, key.e, make_rng(5, "kem"))
        assert rsa.rsa_decapsulate(key, ct) == shared
        assert len(shared) == 32

    def test_kem_different_nonces_different_keys(self, key):
        rng = make_rng(5, "kem")
        _, k1 = rsa.rsa_encapsulate(key.n, key.e, rng)
        _, k2 = rsa.rsa_encapsulate(key.n, key.e, rng)
        assert k1 != k2

    def test_kem_bad_ciphertext_length(self, key):
        with pytest.raises(CryptoError):
            rsa.rsa_decapsulate(key, b"short")

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=0, max_size=64))
    def test_property_sign_verify_any_message(self, message):
        key = rsa.rsa_keygen(384, make_rng(9, "prop-rsa"))
        digest = sha256(message)
        sig = rsa.rsa_sign_digest(key, digest)
        rsa.rsa_verify_digest(key.n, key.e, digest, sig)

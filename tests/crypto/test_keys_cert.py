"""Tests for key objects and certificates."""

from __future__ import annotations

import pytest

from repro.crypto.cert import Certificate, CertificateAuthority
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import (
    CredentialError,
    CredentialExpiredError,
    CryptoError,
    SerializationError,
    SignatureError,
)
from repro.util.clock import VirtualClock
from repro.util.rng import make_rng
from repro.util.serialization import decode, encode


@pytest.fixture(scope="module")
def keys() -> KeyPair:
    return KeyPair.generate(make_rng(1, "keys"), bits=512)


@pytest.fixture()
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture()
def ca(clock) -> CertificateAuthority:
    return CertificateAuthority("minnesota-ca", make_rng(2, "ca"), clock)


class TestKeys:
    def test_sign_verify_through_objects(self, keys):
        digest = sha256(b"hello")
        sig = keys.private.sign(digest)
        keys.public.verify(digest, sig)
        with pytest.raises(SignatureError):
            keys.public.verify(sha256(b"other"), sig)

    def test_kem_through_objects(self, keys):
        ct, shared = keys.public.encapsulate(make_rng(3, "kem"))
        assert keys.private.decapsulate(ct) == shared

    def test_public_key_serialization_roundtrip(self, keys):
        assert decode(encode(keys.public)) == keys.public

    def test_malformed_public_key_state_rejected(self, keys):
        blob = encode(keys.public)
        # decode-time validation: forge a state with n = 1
        evil = encode({"n": 1, "e": 65537})
        tagged = blob[: blob.index(b"M")] + evil
        with pytest.raises((SerializationError, CryptoError)):
            decode(tagged)

    def test_private_key_not_serializable(self, keys):
        with pytest.raises(SerializationError, match="unregistered"):
            encode(keys.private)

    def test_private_key_repr_leaks_nothing(self, keys):
        text = repr(keys.private)
        assert str(keys.public.n) not in text
        assert "PrivateKey" in text

    def test_fingerprint_stable_and_short(self, keys):
        assert keys.public.fingerprint() == keys.public.fingerprint()
        assert len(keys.public.fingerprint()) == 16


class TestCertificates:
    def test_issue_and_validate(self, ca, keys):
        cert = ca.issue("alice", keys.public)
        ca.validate(cert)  # no raise
        assert cert.subject == "alice"
        assert cert.issuer == "minnesota-ca"

    def test_root_certificate_self_signed(self, ca):
        ca.validate(ca.root_certificate)
        assert ca.root_certificate.subject == ca.name

    def test_issue_under_ca_name_rejected(self, ca, keys):
        with pytest.raises(CredentialError):
            ca.issue("minnesota-ca", keys.public)

    def test_expired_certificate_rejected(self, ca, keys, clock):
        cert = ca.issue("alice", keys.public, lifetime=100.0)
        clock.advance(101.0)
        with pytest.raises(CredentialExpiredError):
            ca.validate(cert)

    def test_tampered_subject_rejected(self, ca, keys):
        cert = ca.issue("alice", keys.public)
        forged = Certificate(
            subject="mallory",
            public_key=cert.public_key,
            issuer=cert.issuer,
            not_before=cert.not_before,
            not_after=cert.not_after,
            signature=cert.signature,
        )
        with pytest.raises(CredentialError, match="invalid signature"):
            ca.validate(forged)

    def test_swapped_key_rejected(self, ca, keys):
        mallory = KeyPair.generate(make_rng(4, "mallory"), bits=512)
        cert = ca.issue("alice", keys.public)
        forged = Certificate(
            subject=cert.subject,
            public_key=mallory.public,
            issuer=cert.issuer,
            not_before=cert.not_before,
            not_after=cert.not_after,
            signature=cert.signature,
        )
        with pytest.raises(CredentialError):
            ca.validate(forged)

    def test_wrong_issuer_rejected(self, clock, keys):
        ca1 = CertificateAuthority("ca-one", make_rng(5, "ca1"), clock)
        ca2 = CertificateAuthority("ca-two", make_rng(6, "ca2"), clock)
        cert = ca1.issue("alice", keys.public)
        with pytest.raises(CredentialError, match="issued by"):
            ca2.validate(cert)

    def test_certificate_serialization_roundtrip(self, ca, keys):
        cert = ca.issue("alice", keys.public)
        restored = decode(encode(cert))
        assert restored == cert
        ca.validate(restored)

    def test_forged_ca_cannot_mint_valid_certs(self, clock, keys):
        real = CertificateAuthority("trusted-ca", make_rng(7, "real"), clock)
        fake = CertificateAuthority("trusted-ca", make_rng(8, "fake"), clock)
        cert = fake.issue("mallory", keys.public)
        # Same issuer *name*, but the relying party holds the real CA key.
        with pytest.raises(CredentialError):
            real.validate(cert)

"""Tests for HMAC and the AEAD stream cipher."""

from __future__ import annotations

import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cipher import (
    NONCE_SIZE,
    keystream_xor,
    open_payload,
    seal_payload,
)
from repro.crypto.hashing import derive_key, sha256
from repro.crypto.mac import hmac_sha256, verify_hmac
from repro.errors import CryptoError, IntegrityError

KEY = sha256(b"session key material")
NONCE = b"n" * NONCE_SIZE


class TestHmac:
    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=128), st.binary(max_size=256))
    def test_property_matches_stdlib(self, key, message):
        expected = stdlib_hmac.new(key, message, "sha256").digest()
        assert hmac_sha256(key, message) == expected

    def test_long_key_hashed_first(self):
        key = b"k" * 200  # longer than SHA-256 block
        expected = stdlib_hmac.new(key, b"msg", "sha256").digest()
        assert hmac_sha256(key, b"msg") == expected

    def test_verify_accepts_and_rejects(self):
        tag = hmac_sha256(b"key", b"msg")
        assert verify_hmac(b"key", b"msg", tag)
        assert not verify_hmac(b"key", b"msg2", tag)
        assert not verify_hmac(b"key2", b"msg", tag)
        assert not verify_hmac(b"key", b"msg", tag[:-1] + b"\x00")


class TestKeystream:
    def test_xor_is_involution(self):
        data = b"some plaintext spanning multiple sha blocks" * 3
        ct = keystream_xor(KEY, NONCE, data)
        assert ct != data
        assert keystream_xor(KEY, NONCE, ct) == data

    def test_different_nonce_different_stream(self):
        data = b"x" * 64
        assert keystream_xor(KEY, NONCE, data) != keystream_xor(
            KEY, b"m" * NONCE_SIZE, data
        )

    def test_nonce_size_enforced(self):
        with pytest.raises(CryptoError):
            keystream_xor(KEY, b"short", b"data")

    def test_empty_data(self):
        assert keystream_xor(KEY, NONCE, b"") == b""


class TestAead:
    def test_seal_open_roundtrip(self):
        sealed = seal_payload(KEY, NONCE, b"secret agent state", b"header")
        assert open_payload(KEY, sealed, b"header") == b"secret agent state"

    def test_ciphertext_hides_plaintext(self):
        sealed = seal_payload(KEY, NONCE, b"secret agent state")
        assert b"secret" not in sealed

    def test_tampered_ciphertext_detected(self):
        sealed = bytearray(seal_payload(KEY, NONCE, b"payload"))
        sealed[NONCE_SIZE + 2] ^= 0x01
        with pytest.raises(IntegrityError):
            open_payload(KEY, bytes(sealed))

    def test_tampered_nonce_detected(self):
        sealed = bytearray(seal_payload(KEY, NONCE, b"payload"))
        sealed[0] ^= 0x01
        with pytest.raises(IntegrityError):
            open_payload(KEY, bytes(sealed))

    def test_tampered_tag_detected(self):
        sealed = bytearray(seal_payload(KEY, NONCE, b"payload"))
        sealed[-1] ^= 0x01
        with pytest.raises(IntegrityError):
            open_payload(KEY, bytes(sealed))

    def test_wrong_associated_data_detected(self):
        sealed = seal_payload(KEY, NONCE, b"payload", b"to:serverA")
        with pytest.raises(IntegrityError):
            open_payload(KEY, sealed, b"to:serverB")

    def test_wrong_key_detected(self):
        sealed = seal_payload(KEY, NONCE, b"payload")
        with pytest.raises(IntegrityError):
            open_payload(sha256(b"other"), sealed)

    def test_truncated_payload_detected(self):
        with pytest.raises(IntegrityError, match="too short"):
            open_payload(KEY, b"tiny")

    def test_empty_plaintext(self):
        sealed = seal_payload(KEY, NONCE, b"")
        assert open_payload(KEY, sealed) == b""

    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=300), st.binary(max_size=40))
    def test_property_roundtrip(self, plaintext, ad):
        sealed = seal_payload(KEY, NONCE, plaintext, ad)
        assert open_payload(KEY, sealed, ad) == plaintext

    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=1, max_size=100), st.integers(min_value=0))
    def test_property_any_bitflip_detected(self, plaintext, position):
        sealed = bytearray(seal_payload(KEY, NONCE, plaintext))
        index = position % len(sealed)
        sealed[index] ^= 0x01
        with pytest.raises(IntegrityError):
            open_payload(KEY, bytes(sealed))


class TestDeriveKey:
    def test_labels_independent(self):
        assert derive_key(KEY, "enc") != derive_key(KEY, "mac")

    def test_boundary_ambiguity_resolved(self):
        # ("ab", key="c"+K) must differ from ("a", key="bc"+K) style splices
        assert derive_key(b"xkey", "a") != derive_key(b"key", "ax")

    def test_deterministic(self):
        assert derive_key(KEY, "enc") == derive_key(KEY, "enc")

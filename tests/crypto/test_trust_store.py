"""Tests for multi-authority trust stores."""

from __future__ import annotations

import pytest

from repro.crypto.cert import CertificateAuthority
from repro.crypto.keys import KeyPair
from repro.crypto.trust import TrustAnchor, TrustStore
from repro.errors import CredentialError, CredentialExpiredError
from repro.util.clock import VirtualClock
from repro.util.rng import make_rng


@pytest.fixture()
def clock():
    return VirtualClock()


@pytest.fixture()
def authorities(clock):
    return (
        CertificateAuthority("ca-east", make_rng(1, "east"), clock),
        CertificateAuthority("ca-west", make_rng(2, "west"), clock),
        CertificateAuthority("ca-rogue", make_rng(3, "rogue"), clock),
    )


@pytest.fixture()
def keys():
    return KeyPair.generate(make_rng(4, "subject"), bits=512)


def test_protocol_conformance(clock, authorities):
    east, *_ = authorities
    assert isinstance(TrustStore(clock), TrustAnchor)
    assert isinstance(east, TrustAnchor)


def test_validates_certs_from_any_trusted_authority(clock, authorities, keys):
    east, west, rogue = authorities
    store = TrustStore.of(clock, east, west)
    store.validate(east.issue("urn:principal:e.org/alice", keys.public))
    store.validate(west.issue("urn:principal:w.org/bob", keys.public))
    assert store.anchors() == ["ca-east", "ca-west"]
    assert len(store) == 2


def test_untrusted_issuer_rejected(clock, authorities, keys):
    east, _west, rogue = authorities
    store = TrustStore.of(clock, east)
    cert = rogue.issue("urn:principal:r.org/mallory", keys.public)
    with pytest.raises(CredentialError, match="untrusted authority"):
        store.validate(cert)


def test_rogue_ca_with_stolen_name_rejected(clock, keys):
    """Same issuer *name*, different key: the signature gives it away."""
    real = CertificateAuthority("shared-name", make_rng(5, "real"), clock)
    fake = CertificateAuthority("shared-name", make_rng(6, "fake"), clock)
    store = TrustStore.of(clock, real)
    with pytest.raises(CredentialError):
        store.validate(fake.issue("urn:principal:x.org/eve", keys.public))


def test_expired_certificate_rejected(clock, authorities, keys):
    east, *_ = authorities
    store = TrustStore.of(clock, east)
    cert = east.issue("urn:principal:e.org/alice", keys.public, lifetime=10.0)
    clock.advance(11.0)
    with pytest.raises(CredentialExpiredError):
        store.validate(cert)


def test_anchor_must_be_self_signed(clock, authorities, keys):
    east, *_ = authorities
    store = TrustStore(clock)
    leaf = east.issue("urn:principal:e.org/alice", keys.public)
    with pytest.raises(CredentialError, match="self-signed root"):
        store.add_anchor(leaf)


def test_duplicate_anchor_rejected(clock, authorities):
    east, *_ = authorities
    store = TrustStore.of(clock, east)
    with pytest.raises(CredentialError, match="already trusted"):
        store.add_anchor(east.root_certificate)


def test_remove_anchor(clock, authorities, keys):
    east, west, _ = authorities
    store = TrustStore.of(clock, east, west)
    cert = west.issue("urn:principal:w.org/bob", keys.public)
    store.validate(cert)
    store.remove_anchor("ca-west")
    with pytest.raises(CredentialError):
        store.validate(cert)
    store.remove_anchor("ca-west")  # idempotent


def test_credentials_verify_through_trust_store(clock, authorities, keys):
    """The credential layer accepts a TrustStore wherever it took a CA."""
    from repro.credentials.credentials import Credentials
    from repro.credentials.rights import Rights
    from repro.naming.urn import URN

    east, west, _ = authorities
    owner = URN.parse("urn:principal:w.org/owner")
    cert = west.issue(str(owner), keys.public)
    cred = Credentials.issue(
        agent=URN.parse("urn:agent:w.org/owner/a1"),
        owner=owner,
        creator=owner,
        owner_keys=keys,
        owner_certificate=cert,
        rights=Rights.all(),
        now=clock.now(),
    )
    store = TrustStore.of(clock, east, west)
    cred.verify(store, clock.now())  # duck-typed trust anchor
    east_only = TrustStore.of(clock, east)
    with pytest.raises(CredentialError):
        cred.verify(east_only, clock.now())

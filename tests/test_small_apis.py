"""Mop-up coverage for small public APIs not hit elsewhere."""

from __future__ import annotations

import pytest

from repro.core.capability import current_domain_id
from repro.net.message import HEADER_OVERHEAD, Message
from repro.sim.kernel import Kernel
from repro.sim.sync import Semaphore
from repro.util.serialization import SerializationError, registered_class


class TestMessage:
    def test_size_includes_framing(self):
        msg = Message(src="a", dst="b", kind="k", payload=b"12345")
        assert msg.size == 5 + HEADER_OVERHEAD

    def test_copy_gets_fresh_id_same_content(self):
        msg = Message(src="a", dst="b", kind="k", payload=b"x", corr_id="c1")
        clone = msg.copy()
        assert clone.msg_id != msg.msg_id
        assert (clone.src, clone.dst, clone.kind, clone.payload, clone.corr_id) == (
            "a", "b", "k", b"x", "c1",
        )

    def test_ids_monotonic(self):
        a = Message(src="a", dst="b", kind="k", payload=b"")
        b = Message(src="a", dst="b", kind="k", payload=b"")
        assert b.msg_id > a.msg_id


class TestRegisteredClass:
    def test_lookup_known(self):
        from repro.naming.urn import URN

        assert registered_class("repro.naming.urn:URN") is URN

    def test_lookup_unknown(self):
        with pytest.raises(SerializationError, match="unknown serializable"):
            registered_class("nowhere:Nothing")


class TestCapabilityHelpers:
    def test_current_domain_id_outside_any_domain(self):
        assert current_domain_id() is None

    def test_current_domain_id_inside(self):
        from repro.sandbox.domain import ProtectionDomain
        from repro.sandbox.threadgroup import ThreadGroup, enter_group

        domain = ProtectionDomain("cap-test", "server", ThreadGroup("g"))
        with enter_group(domain.thread_group):
            assert current_domain_id() == "cap-test"


class TestSemaphoreIntrospection:
    def test_waiting_count(self):
        from repro.sim.threads import SimThread

        kernel = Kernel()
        sem = Semaphore(kernel, 1)
        observed = []

        def holder():
            sem.acquire()
            kernel.current_thread().sleep(5.0)
            observed.append(sem.waiting)  # two contenders parked
            sem.release()

        def contender():
            sem.acquire()
            sem.release()

        SimThread(kernel, holder, "h").start()
        SimThread(kernel, contender, "c1").start()
        SimThread(kernel, contender, "c2").start()
        kernel.run()
        assert observed == [2]


class TestAgentThreadHandle:
    def test_alive_transitions(self):
        from repro.agents.agent import Agent, register_trusted_agent_class
        from repro.credentials.rights import Rights
        from repro.server.testbed import Testbed

        @register_trusted_agent_class
        class HandleWatcher(Agent):
            def run(self):
                handle = self.host.spawn_thread(
                    lambda: self.host.sleep(2.0), "napper"
                )
                before = handle.alive()
                handle.join()
                after = handle.alive()
                self.host.report_home({"before": before, "after": after})
                self.complete()

        bed = Testbed(2)
        bed.launch(HandleWatcher(), Rights.all(), at=bed.servers[1])
        bed.run()
        payload = bed.servers[1].reports[-1]["payload"]
        assert payload == {"before": True, "after": False}


class TestStopDefaults:
    def test_stop_default_method(self):
        from repro.agents.itinerary import Stop

        stop = Stop("urn:server:x.net/s")
        assert stop.method == "run"

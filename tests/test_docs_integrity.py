"""Documentation rot guards.

Docs reference dozens of `repro.*` dotted paths; this test resolves every
one of them against the live package so a rename breaks CI, not a reader.
"""

from __future__ import annotations

import importlib
import pathlib
import pkgutil
import re

import pytest

import repro

ROOT = pathlib.Path(__file__).resolve().parents[1]
DOC_FILES = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "CONTRIBUTING.md",
    ROOT / "docs" / "tutorial.md",
    ROOT / "docs" / "security-model.md",
    ROOT / "docs" / "api.md",
    ROOT / "docs" / "observability.md",
    ROOT / "docs" / "robustness.md",
    ROOT / "docs" / "naming.md",
]

_REF = re.compile(r"\brepro(?:\.[a-zA-Z_][a-zA-Z0-9_]*)+")


def all_real_modules() -> set[str]:
    modules = {"repro"}
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.add(info.name)
    return modules


MODULES = all_real_modules()


def resolve(path: str) -> bool:
    """True if ``path`` is a module, or an attribute of one."""
    if path in MODULES:
        return True
    parts = path.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        module_name = ".".join(parts[:cut])
        if module_name in MODULES:
            obj = importlib.import_module(module_name)
            for attr in parts[cut:]:
                if not hasattr(obj, attr):
                    return False
                obj = getattr(obj, attr)
            return True
    return False


def collect_references() -> list[tuple[str, str]]:
    refs = []
    for doc in DOC_FILES:
        for match in _REF.finditer(doc.read_text()):
            refs.append((doc.name, match.group(0).rstrip(".")))
    return refs


def test_docs_exist():
    for doc in DOC_FILES:
        assert doc.is_file(), f"missing documentation file {doc}"


def test_every_doc_reference_resolves():
    bad = []
    for doc_name, ref in collect_references():
        if not resolve(ref):
            bad.append(f"{doc_name}: {ref}")
    assert not bad, "dangling doc references:\n" + "\n".join(sorted(set(bad)))


def test_examples_listed_in_readme_exist():
    readme = (ROOT / "README.md").read_text()
    for match in re.finditer(r"`([a-z_]+\.py)`", readme):
        name = match.group(1)
        if name in ("setup.py",):
            continue
        assert (ROOT / "examples" / name).is_file(), f"README lists missing {name}"


def test_design_bench_targets_exist():
    design = (ROOT / "DESIGN.md").read_text()
    for match in re.finditer(r"benchmarks/(bench_[a-z0-9_]+\.py)", design):
        assert (ROOT / "benchmarks" / match.group(1)).is_file(), match.group(0)

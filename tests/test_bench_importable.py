"""Every benchmark module must at least import cleanly.

``pytest tests/`` runs in seconds; the bench suite takes minutes.  This
guard catches syntax errors, renamed imports, or API drift in
`benchmarks/` during ordinary test runs, so `pytest benchmarks/` never
surprises.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("bench_*.py"))


def test_bench_directory_populated():
    assert len(BENCH_FILES) >= 17


@pytest.mark.parametrize("path", BENCH_FILES, ids=[p.stem for p in BENCH_FILES])
def test_bench_module_imports(path):
    sys.path.insert(0, str(BENCH_DIR))  # for `from _common import ...`
    try:
        spec = importlib.util.spec_from_file_location(f"benchcheck_{path.stem}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
    finally:
        sys.path.remove(str(BENCH_DIR))
    # Every bench file must contain at least one test and one table writer.
    names = dir(module)
    assert any(n.startswith("test_") for n in names)
    assert any(n.startswith("test_table_") for n in names), (
        f"{path.name} regenerates no experiment table"
    )

"""Tests for tariffs, meters and usage reports."""

from __future__ import annotations

import pytest

from repro.core.accounting import Meter, Tariff
from repro.errors import QuotaExceededError


class TestTariff:
    def test_per_call_prices(self):
        t = Tariff.of({"put": 0.5, "get": 0.1}, default_per_call=0.01)
        assert t.price_of("put") == 0.5
        assert t.price_of("get") == 0.1
        assert t.price_of("size") == 0.01

    def test_free(self):
        t = Tariff.free()
        assert t.price_of("anything") == 0.0
        assert t.per_second == 0.0

    def test_value_semantics(self):
        assert Tariff.of({"a": 1.0, "b": 2.0}) == Tariff.of({"b": 2.0, "a": 1.0})


def make_meter(**kw):
    defaults = dict(
        grantee="dom-1",
        resource="Buffer",
        tariff=Tariff.of({"put": 0.25}, per_second=2.0),
    )
    defaults.update(kw)
    return Meter(**defaults)


class TestMeter:
    def test_counts_and_charges(self):
        meter = make_meter()
        meter.charge_call("put")
        meter.charge_call("put")
        meter.charge_call("get")  # free
        report = meter.report()
        assert report.count_of("put") == 2
        assert report.count_of("get") == 1
        assert report.count_of("never") == 0
        assert report.call_charges == pytest.approx(0.5)

    def test_quota_enforcement(self):
        meter = make_meter(quotas={"put": 2})
        meter.charge_call("put")
        meter.charge_call("put")
        assert meter.remaining_quota("put") == 0
        with pytest.raises(QuotaExceededError, match="quota of 2"):
            meter.charge_call("put")
        # The denied call is not counted.
        assert meter.report().count_of("put") == 2

    def test_unlimited_methods(self):
        meter = make_meter(quotas={"put": 1})
        assert meter.remaining_quota("get") is None
        for _ in range(10):
            meter.charge_call("get")

    def test_elapsed_time_charging(self):
        meter = make_meter()
        meter.charge_elapsed("get", 1.5)
        report = meter.report()
        assert report.time_charges == pytest.approx(3.0)
        assert report.total == pytest.approx(3.0)

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            make_meter().charge_elapsed("get", -0.1)

    def test_on_charge_sink_sees_both_kinds(self):
        charged: list[tuple[str, float]] = []
        meter = make_meter(on_charge=lambda m, amt: charged.append((m, amt)))
        meter.charge_call("put")
        meter.charge_elapsed("get", 1.0)
        assert charged == [("put", 0.25), ("get", 2.0)]

    def test_free_calls_do_not_hit_sink(self):
        charged = []
        meter = make_meter(on_charge=lambda m, amt: charged.append(m))
        meter.charge_call("get")  # price 0
        assert charged == []

    def test_report_identity_fields(self):
        report = make_meter().report()
        assert report.grantee == "dom-1"
        assert report.resource == "Buffer"

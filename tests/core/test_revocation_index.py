"""The per-domain weakref issued-proxy index behind revocation (§5.5).

Pins the fast-path rework of ``AccessProtocol``'s proxy table: revocation
is O(proxies of the named domain), dropped proxies are reclaimed by the
collector instead of being pinned forever, and revocation *counts* still
report every grant invalidated — even for proxies whose agent discarded
them before the manager revoked.
"""

from __future__ import annotations

import gc

import pytest

from repro.apps.buffer import Buffer
from repro.core.policy import SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import PrivilegeError, ProxyRevokedError
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group

RES = URN.parse("urn:resource:store.com/buf")
OWNER = URN.parse("urn:principal:store.com/admin")


@pytest.fixture()
def buf():
    return Buffer(RES, OWNER, SecurityPolicy.allow_all(), capacity=8)


def _proxy(env, buf, domain):
    return buf.get_proxy(domain.credentials, env.context(domain))


def test_issued_proxies_excludes_collected(env, buf):
    d1 = env.agent_domain(Rights.all())
    keep = _proxy(env, buf, d1)
    _proxy(env, buf, d1)  # dropped on the spot
    gc.collect()
    live = buf.issued_proxies()
    assert live == (keep,)


def test_dropped_proxies_leave_no_strong_refs(env, buf):
    """The leak fix itself: the index holds nothing once agents drop proxies."""
    d1 = env.agent_domain(Rights.all())
    for _ in range(32):
        _proxy(env, buf, d1)
    gc.collect()
    assert buf.issued_proxies() == ()
    # The weakref list was pruned by the reaper callbacks, not just hidden.
    assert len(buf._issued[d1.domain_id].refs) == 0


def test_revoke_for_counts_collected_grants(env, buf):
    """A grant is invalidated whether or not its proxy object survived."""
    d1 = env.agent_domain(Rights.all())
    held = _proxy(env, buf, d1)
    _proxy(env, buf, d1)
    gc.collect()
    with enter_group(env.server_domain.thread_group):
        assert buf.revoke_for(d1.domain_id) == 2
        assert buf.revoke_for(d1.domain_id) == 0  # bucket gone
    with pytest.raises(ProxyRevokedError):
        held.size()


def test_revoke_for_touches_only_named_domain(env, buf):
    d1 = env.agent_domain(Rights.all())
    d2 = env.agent_domain(Rights.all())
    p1 = _proxy(env, buf, d1)
    p2 = _proxy(env, buf, d2)
    with enter_group(env.server_domain.thread_group):
        assert buf.revoke_for(d1.domain_id) == 1
    with enter_group(d1.thread_group):
        with pytest.raises(ProxyRevokedError):
            p1.size()
    with enter_group(d2.thread_group):
        assert p2.size() == 0  # untouched
    with enter_group(env.server_domain.thread_group):
        assert buf.revoke_all() == 1  # only d2's grant remained tracked


def test_revoke_all_counts_mixed_live_and_dead(env, buf):
    d1 = env.agent_domain(Rights.all())
    d2 = env.agent_domain(Rights.all())
    held = _proxy(env, buf, d1)
    _proxy(env, buf, d1)
    _proxy(env, buf, d2)
    gc.collect()
    with enter_group(env.server_domain.thread_group):
        assert buf.revoke_all() == 3
        assert buf.revoke_all() == 0  # index cleared, nothing to manage
    with pytest.raises(ProxyRevokedError):
        held.size()


def test_revocation_stays_privileged_when_proxies_collected(env, buf):
    """Authority to revoke must not depend on the agent's GC behavior."""
    d1 = env.agent_domain(Rights.all())
    _proxy(env, buf, d1)
    gc.collect()
    intruder = env.agent_domain(Rights.all())
    with enter_group(intruder.thread_group):
        with pytest.raises(PrivilegeError):
            buf.revoke_all()
        with pytest.raises(PrivilegeError):
            buf.revoke_for(d1.domain_id)
    # The failed attempt must not have consumed the tracked grants.
    with enter_group(env.server_domain.thread_group):
        assert buf.revoke_for(d1.domain_id) == 1


def test_reissue_after_revoke_for_restarts_tracking(env, buf):
    d1 = env.agent_domain(Rights.all())
    _proxy(env, buf, d1)
    with enter_group(env.server_domain.thread_group):
        assert buf.revoke_for(d1.domain_id) == 1
    fresh = _proxy(env, buf, d1)
    with enter_group(d1.thread_group):
        assert fresh.size() == 0  # new grant works
    with enter_group(env.server_domain.thread_group):
        assert buf.revoke_for(d1.domain_id) == 1  # not 2: old era closed

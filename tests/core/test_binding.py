"""Tests for the six-step resource request protocol (Fig. 6)."""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.core.binding import BindingService
from repro.core.domain_db import DomainDatabase
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.core.registry import ResourceRegistry
from repro.credentials.rights import Rights
from repro.errors import (
    AccessDeniedError,
    PrivilegeError,
    UnknownNameError,
)
from repro.naming.urn import URN
from repro.sandbox.security_manager import SecurityManager
from repro.sandbox.threadgroup import enter_group

RES = URN.parse("urn:resource:store.com/buf")
OWNER = URN.parse("urn:principal:store.com/admin")


@pytest.fixture()
def service(env):
    secman = SecurityManager(env.server_domain, env.audit)
    registry = ResourceRegistry(secman, env.clock)
    db = DomainDatabase(env.clock)
    return BindingService(registry, db, env.clock, env.audit)


def admit(env, service, domain):
    with service.domain_db.privileged():
        service.domain_db.admit(domain, domain.credentials, "home")


def install(env, service, policy=None, name=RES, **kw):
    buf = Buffer(name, OWNER, policy or SecurityPolicy.allow_all(), **kw)
    with enter_group(env.server_domain.thread_group):
        service.register_resource(buf)
    return buf


class TestSixSteps:
    def test_full_protocol(self, env, service):
        buf = install(env, service, capacity=8)  # step 1
        domain = env.agent_domain(Rights.of("Buffer.*"))
        admit(env, service, domain)
        with enter_group(domain.thread_group):  # steps 2-5
            proxy = service.get_resource(RES)
            proxy.put("payload")  # step 6
            assert proxy.size() == 1
        assert buf.size() == 1
        # Step 5's bookkeeping: the binding is in the domain database.
        record = service.domain_db.get(domain.domain_id)
        assert len(record.bindings) == 1
        assert record.bindings[0].resource == RES
        assert record.bindings[0].proxy is proxy

    def test_identity_from_execution_context(self, env, service):
        """The grantee is whoever is *running*, not a parameter."""
        install(env, service)
        weak = env.agent_domain(Rights.of("Buffer.get"))
        with enter_group(weak.thread_group):
            proxy = service.get_resource(RES)
        assert proxy.proxy_info()["grantee"] == weak.domain_id
        assert proxy.proxy_info()["enabled"] == frozenset({"get"})

    def test_unknown_resource(self, env, service):
        domain = env.agent_domain(Rights.all())
        with enter_group(domain.thread_group):
            with pytest.raises(UnknownNameError):
                service.get_resource(RES)

    def test_unmanaged_caller_denied(self, env, service):
        install(env, service)
        with pytest.raises(PrivilegeError):
            service.get_resource(RES)

    def test_policy_denial_propagates(self, env, service):
        install(env, service, policy=SecurityPolicy.deny_all())
        domain = env.agent_domain(Rights.all())
        with enter_group(domain.thread_group):
            with pytest.raises(AccessDeniedError):
                service.get_resource(RES)

    def test_per_agent_proxies_are_distinct(self, env, service):
        install(env, service)
        d1, d2 = env.agent_domain(Rights.all()), env.agent_domain(Rights.all())
        with enter_group(d1.thread_group):
            p1 = service.get_resource(RES)
        with enter_group(d2.thread_group):
            p2 = service.get_resource(RES)
        assert p1 is not p2
        assert p1.proxy_info()["grantee"] != p2.proxy_info()["grantee"]

    def test_binding_skipped_for_unadmitted_domain(self, env, service):
        """Direct (non-resident) callers still get proxies, just no record."""
        install(env, service)
        domain = env.agent_domain(Rights.all())
        with enter_group(domain.thread_group):
            service.get_resource(RES)
        assert domain.domain_id not in service.domain_db


class TestAccountingFlow:
    def test_charges_flow_to_domain_database(self, env, service):
        from repro.core.accounting import Tariff

        policy = SecurityPolicy(
            rules=[PolicyRule("any", "*", Rights.all(), metered=True, confine=False)]
        )
        buf = Buffer(
            RES, OWNER, policy, capacity=10,
            tariff=Tariff.of({"put": 0.25, "get": 0.1}),
        )
        with enter_group(env.server_domain.thread_group):
            service.register_resource(buf)
        domain = env.agent_domain(Rights.all())
        admit(env, service, domain)
        with enter_group(domain.thread_group):
            proxy = service.get_resource(RES)
            proxy.put("a")
            proxy.put("b")
            proxy.get()
        assert service.domain_db.get(domain.domain_id).charges == pytest.approx(0.6)
        report = proxy.usage_report()
        assert report.call_charges == pytest.approx(0.6)


class TestDynamicInstallation:
    def test_installer_agent_extends_server(self, env, service):
        """Section 5.5: an agent installs a resource; another uses it."""
        new_name = URN.parse("urn:resource:store.com/carried-db")
        installer = env.agent_domain(
            Rights.of("system.resource_register", "Buffer.*")
        )
        carried = Buffer(new_name, env.owner, SecurityPolicy.allow_all(), capacity=4)
        with enter_group(installer.thread_group):
            service.register_resource(carried)  # the agent's own upload
        # installer "terminates"; a later visitor binds to the resource
        visitor = env.agent_domain(Rights.of("Buffer.*"))
        with enter_group(visitor.thread_group):
            proxy = service.get_resource(new_name)
            proxy.put("left behind")
            assert proxy.get() == "left behind"

    def test_plain_agent_cannot_install(self, env, service):
        new_name = URN.parse("urn:resource:store.com/smuggled")
        visitor = env.agent_domain(Rights.of("Buffer.*"))
        smuggled = Buffer(new_name, env.owner, SecurityPolicy.allow_all())
        with enter_group(visitor.thread_group):
            with pytest.raises(PrivilegeError):
                service.register_resource(smuggled)

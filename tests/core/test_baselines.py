"""Tests for the section-5.4 baseline designs.

Each baseline must make the *same* allow/deny decisions as the proxy
design on the same policy inputs — they differ in architecture and cost,
not in outcome — so these tests double as an equivalence check.
"""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.core.baselines.safe_env import SafeEnvironment, TrustedEnvironment
from repro.core.baselines.secman_checked import AppSecurityManager, guard_resource
from repro.core.baselines.wrapper import AccessControlList, wrap_resource
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import (
    AccessDeniedError,
    PrivilegeError,
    UnknownNameError,
)
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group

RES = URN.parse("urn:resource:store.com/buf")
OWNER = URN.parse("urn:principal:store.com/admin")


def plain_buffer(**kw) -> Buffer:
    return Buffer(RES, OWNER, SecurityPolicy.allow_all(), **kw)


class TestAclWrapper:
    def test_allowed_calls_forward(self, env):
        buf = plain_buffer(capacity=4)
        acl = AccessControlList().allow("owner", "urn:principal:umn.edu/*",
                                        Rights.of("Buffer.*"))
        wrapper = wrap_resource(buf, acl)
        domain = env.agent_domain(Rights.all())
        with enter_group(domain.thread_group):
            wrapper.put("x")
            assert wrapper.get() == "x"

    def test_acl_denies_unknown_principal(self, env):
        buf = plain_buffer()
        acl = AccessControlList().allow("owner", "urn:principal:umn.edu/*",
                                        Rights.of("Buffer.*"))
        wrapper = wrap_resource(buf, acl, env.audit)
        stranger = env.agent_domain(
            Rights.all(), owner=URN.parse("urn:principal:evil.com/eve")
        )
        with enter_group(stranger.thread_group):
            with pytest.raises(AccessDeniedError):
                wrapper.size()
        assert env.audit.denials()

    def test_acl_respects_delegated_restrictions(self, env):
        buf = plain_buffer()
        acl = AccessControlList().allow("any", "*", Rights.of("Buffer.*"))
        wrapper = wrap_resource(buf, acl)
        weak = env.agent_domain(Rights.of("Buffer.get"))
        with enter_group(weak.thread_group):
            with pytest.raises(AccessDeniedError):
                wrapper.put("x")

    def test_method_granularity(self, env):
        buf = plain_buffer(capacity=4)
        acl = AccessControlList().allow("any", "*", Rights.of("Buffer.get", "Buffer.size"))
        wrapper = wrap_resource(buf, acl)
        domain = env.agent_domain(Rights.all())
        buf.put("direct")
        with enter_group(domain.thread_group):
            assert wrapper.get() == "direct"
            with pytest.raises(AccessDeniedError):
                wrapper.put("no")

    def test_uncredentialed_caller_rejected(self, env):
        wrapper = wrap_resource(plain_buffer(), AccessControlList())
        with pytest.raises(PrivilegeError):
            wrapper.size()

    def test_single_wrapper_shared_by_all(self, env):
        """Unlike proxies, there is one guard object for everyone."""
        buf = plain_buffer(capacity=4)
        acl = AccessControlList().allow("any", "*", Rights.of("Buffer.*"))
        wrapper = wrap_resource(buf, acl)
        d1, d2 = env.agent_domain(Rights.all()), env.agent_domain(Rights.all())
        with enter_group(d1.thread_group):
            wrapper.put("from-1")
        with enter_group(d2.thread_group):
            assert wrapper.get() == "from-1"

    def test_bad_subject_kind(self):
        with pytest.raises(ValueError):
            AccessControlList().allow("species", "*", Rights.all())


class TestSecManChecked:
    @pytest.fixture()
    def manager(self, env):
        return AppSecurityManager(env.server_domain, env.audit)

    def test_policy_must_be_installed_centrally(self, env, manager):
        guarded = guard_resource(plain_buffer(), manager)
        domain = env.agent_domain(Rights.all())
        with enter_group(domain.thread_group):
            with pytest.raises(AccessDeniedError, match="no policy installed"):
                guarded.size()
        manager.install_app_policy(
            "Buffer", SecurityPolicy.allow_all(confine=False)
        )
        with enter_group(domain.thread_group):
            assert guarded.size() == 0
        assert manager.installed_policies == 1

    def test_method_granularity(self, env, manager):
        manager.install_app_policy(
            "Buffer",
            SecurityPolicy(rules=[PolicyRule("any", "*", Rights.of("Buffer.get"),
                                             confine=False)]),
        )
        buf = plain_buffer(capacity=4)
        guarded = guard_resource(buf, manager)
        buf.put("direct")
        domain = env.agent_domain(Rights.all())
        with enter_group(domain.thread_group):
            assert guarded.get() == "direct"
            with pytest.raises(AccessDeniedError):
                guarded.put("x")

    def test_server_code_bypasses(self, env, manager):
        guarded = guard_resource(plain_buffer(), manager)
        with enter_group(env.server_domain.thread_group):
            assert guarded.size() == 0  # trusted even without a policy

    def test_uncredentialed_rejected(self, env, manager):
        guarded = guard_resource(plain_buffer(), manager)
        with pytest.raises(PrivilegeError):
            guarded.size()

    def test_manager_still_does_system_checks(self, env, manager):
        """It remains a SecurityManager — the bloat is the point."""
        domain = env.agent_domain(Rights.of("system.ping"))
        with enter_group(domain.thread_group):
            manager.check("ping")
            with pytest.raises(PrivilegeError):
                manager.check("other")


class TestSafeEnvironment:
    @pytest.fixture()
    def envs(self, env):
        trusted = TrustedEnvironment()
        buf = plain_buffer(capacity=4)
        trusted.install("buf", buf)
        safe = SafeEnvironment(trusted, env.audit)
        safe.set_policy("buf", SecurityPolicy.allow_all(confine=False))
        return trusted, safe, buf

    def test_screened_call_crosses_boundary(self, env, envs):
        _, safe, buf = envs
        domain = env.agent_domain(Rights.all())
        with enter_group(domain.thread_group):
            safe.invoke("buf", "put", "marshalled")
            assert safe.invoke("buf", "size") == 1
            assert safe.invoke("buf", "get") == "marshalled"
        assert buf.size() == 0

    def test_screening_denies_disabled_method(self, env, envs):
        _, safe, _ = envs
        safe.set_policy(
            "buf",
            SecurityPolicy(rules=[PolicyRule("any", "*", Rights.of("Buffer.get"),
                                             confine=False)]),
        )
        domain = env.agent_domain(Rights.all())
        with enter_group(domain.thread_group):
            with pytest.raises(AccessDeniedError, match="denies 'put'"):
                safe.invoke("buf", "put", "x")

    def test_delegated_rights_still_gate(self, env, envs):
        _, safe, _ = envs
        weak = env.agent_domain(Rights.of("Buffer.size"))
        with enter_group(weak.thread_group):
            assert safe.invoke("buf", "size") == 0
            with pytest.raises(AccessDeniedError):
                safe.invoke("buf", "put", "x")

    def test_unknown_resource_and_method(self, env, envs):
        trusted, safe, _ = envs
        domain = env.agent_domain(Rights.all())
        with enter_group(domain.thread_group):
            with pytest.raises(AccessDeniedError, match="no policy"):
                safe.invoke("ghost", "get")
        with pytest.raises(UnknownNameError):
            trusted.perform("ghost", "get", b"L\x00")

    def test_unexported_method_blocked_at_trusted_side(self, envs):
        trusted, _, _ = envs
        from repro.util.serialization import encode

        with pytest.raises(AccessDeniedError, match="does not export"):
            trusted.perform("buf", "init_access_protocol", encode([]))

    def test_only_bytes_cross_the_boundary(self, env, envs):
        """Arguments are marshalled: mutable objects do not alias across."""
        _, safe, buf = envs
        domain = env.agent_domain(Rights.all())
        payload = {"nested": [1, 2, 3]}
        with enter_group(domain.thread_group):
            safe.invoke("buf", "put", payload)
            returned = safe.invoke("buf", "get")
        assert returned == payload
        assert returned is not payload  # a copy, not the same object

    def test_uncredentialed_rejected(self, envs):
        _, safe, _ = envs
        with pytest.raises(PrivilegeError):
            safe.invoke("buf", "size")

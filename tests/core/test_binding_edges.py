"""Edge paths of the binding service and the proxy management surface."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.buffer import Buffer
from repro.core.accounting import Tariff
from repro.core.binding import BindingService
from repro.core.domain_db import DomainDatabase
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.core.registry import ResourceRegistry
from repro.core.resource import exported_methods, permission_for
from repro.credentials.rights import Rights
from repro.errors import PrivilegeError
from repro.naming.urn import URN
from repro.sandbox.security_manager import SecurityManager
from repro.sandbox.threadgroup import enter_group

RES = URN.parse("urn:resource:store.com/buf")
OWNER = URN.parse("urn:principal:store.com/admin")


@pytest.fixture()
def service(env):
    secman = SecurityManager(env.server_domain, env.audit)
    registry = ResourceRegistry(secman, env.clock)
    return BindingService(registry, DomainDatabase(env.clock), env.clock, env.audit)


def test_charges_from_unadmitted_domain_do_not_crash(env, service):
    """A metered proxy used by a domain that was never admitted to the
    domain db: charges have nowhere to go, and that must be harmless."""
    policy = SecurityPolicy(
        rules=[PolicyRule("any", "*", Rights.all(), metered=True, confine=False)]
    )
    buf = Buffer(RES, OWNER, policy, capacity=4, tariff=Tariff.of({"put": 1.0}))
    with enter_group(env.server_domain.thread_group):
        service.register_resource(buf)
    domain = env.agent_domain(Rights.all())
    with enter_group(domain.thread_group):
        proxy = service.get_resource(RES)
        proxy.put("x")  # sink fires, finds no record, drops the charge
    assert domain.domain_id not in service.domain_db
    assert proxy.usage_report().call_charges == 1.0  # proxy-local bill kept


def test_domain_without_credentials_rejected(env, service):
    from repro.sandbox.domain import ProtectionDomain
    from repro.sandbox.threadgroup import ThreadGroup

    buf = Buffer(RES, OWNER, SecurityPolicy.allow_all())
    with enter_group(env.server_domain.thread_group):
        service.register_resource(buf)
    bare = ProtectionDomain("bare", "agent", ThreadGroup("bare-g"))
    with enter_group(bare.thread_group):
        with pytest.raises(PrivilegeError, match="no credentials"):
            service.get_resource(RES)


def test_revocation_management_requires_admin_context(env):
    buf = Buffer(RES, OWNER, SecurityPolicy.allow_all(confine=False))
    domain = env.agent_domain(Rights.all())
    buf.get_proxy(domain.credentials, env.context(domain))
    # From the grantee's own (non-admin) domain:
    with enter_group(domain.thread_group):
        with pytest.raises(PrivilegeError):
            buf.revoke_all()
        with pytest.raises(PrivilegeError):
            buf.revoke_for(domain.domain_id)
    # From the server domain: fine.
    with enter_group(env.server_domain.thread_group):
        assert buf.revoke_for(domain.domain_id) == 1
        assert buf.revoke_for(domain.domain_id) == 0  # already gone


def test_extra_admin_domains_can_manage_proxies(env):
    """A resource owner's own agent domain can be named proxy-admin."""
    manager = env.agent_domain(Rights.all())
    buf = Buffer(RES, OWNER, SecurityPolicy.allow_all(confine=False),
                 admin_domains=(manager.domain_id,))
    victim = env.agent_domain(Rights.all())
    proxy = buf.get_proxy(victim.credentials, env.context(victim))
    with enter_group(manager.thread_group):
        proxy.set_method_enabled("put", False)
        proxy.revoke()


# ---------------------------------------------------------------------------
# Property: whatever the policy/rights combination, decide() never enables
# a method that either side forbids.
# ---------------------------------------------------------------------------

_METHOD_PATTERNS = ["Buffer.*", "Buffer.get", "Buffer.put", "Buffer.size",
                    "*.get", "*"]


def _rights(patterns):
    return Rights.of(*patterns) if patterns else Rights.none()


from tests.conftest import CoreEnv

_PROP_ENV = CoreEnv(seed=606)  # shared across hypothesis examples


@settings(max_examples=150, deadline=None)
@given(
    policy_patterns=st.lists(st.sampled_from(_METHOD_PATTERNS), max_size=3),
    agent_patterns=st.lists(st.sampled_from(_METHOD_PATTERNS), max_size=3),
)
def test_property_decide_is_sound(policy_patterns, agent_patterns):
    env = _PROP_ENV
    policy = SecurityPolicy(
        rules=[PolicyRule("any", "*", _rights(policy_patterns))]
    )
    buf = Buffer(RES, OWNER, policy)
    creds = env.credentials(_rights(agent_patterns))
    grant = policy.decide(buf, creds)
    for method in exported_methods(Buffer):
        permission = permission_for(Buffer, method)
        both_permit = (
            _rights(policy_patterns).permits(permission)
            and _rights(agent_patterns).permits(permission)
        )
        assert (method in grant.enabled) == both_permit

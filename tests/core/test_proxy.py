"""Tests for proxy synthesis and the pre-check chain (Fig. 5, section 5.5)."""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.core.proxy import ResourceProxy, synthesize_proxy_class
from repro.core.resource import ResourceImpl, export
from repro.credentials.rights import Rights
from repro.errors import (
    AccessDeniedError,
    CapabilityConfinementError,
    MethodDisabledError,
    PrivilegeError,
    ProxyExpiredError,
    ProxyRevokedError,
    QuotaExceededError,
    SecurityException,
)
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group

RES = URN.parse("urn:resource:store.com/buf")
OWNER = URN.parse("urn:principal:store.com/admin")


def make_proxy(env, *, policy=None, rights=None, domain=None, **buffer_kw):
    buf = Buffer(RES, OWNER, policy or SecurityPolicy.allow_all(confine=False),
                 **buffer_kw)
    domain = domain or env.agent_domain(rights or Rights.all())
    proxy = buf.get_proxy(domain.credentials, env.context(domain))
    return buf, domain, proxy


class TestSynthesis:
    def test_proxy_class_cached_per_resource_class(self):
        assert synthesize_proxy_class(Buffer) is synthesize_proxy_class(Buffer)
        assert synthesize_proxy_class(Buffer).__name__ == "BufferProxy"

    def test_proxy_implements_exported_interface(self, env):
        _, _, proxy = make_proxy(env)
        for name in ("put", "get", "size", "resource_name"):
            assert callable(getattr(proxy, name))

    def test_empty_interface_rejected(self):
        class Bare(ResourceImpl):
            pass

        # Bare still inherits the generic queries, so construct a truly
        # bare class.
        class ReallyBare:
            pass

        with pytest.raises(SecurityException, match="exports no methods"):
            synthesize_proxy_class(ReallyBare)

    def test_reserved_name_collision_rejected(self):
        class Nasty(ResourceImpl):
            @export
            def revoke(self):  # collides with the control surface
                return "ha"

        with pytest.raises(SecurityException, match="reserved"):
            synthesize_proxy_class(Nasty)

    def test_proxy_is_a_resource_not_the_impl(self, env):
        buf, _, proxy = make_proxy(env)
        assert isinstance(proxy, ResourceProxy)
        assert not isinstance(proxy, Buffer)


class TestPassThrough:
    def test_enabled_calls_forward(self, env):
        buf, _, proxy = make_proxy(env, capacity=4)
        proxy.put("item")
        assert proxy.size() == 1
        assert proxy.get() == "item"
        assert buf.size() == 0  # same underlying state

    def test_generic_queries_via_proxy(self, env):
        _, _, proxy = make_proxy(env)
        assert proxy.resource_name() == RES
        assert proxy.resource_kind() == "Buffer"

    def test_resource_exceptions_propagate(self, env):
        from repro.apps.buffer import BufferEmpty

        _, _, proxy = make_proxy(env)
        with pytest.raises(BufferEmpty):
            proxy.get()


class TestSelectiveDisabling:
    def test_disabled_method_raises(self, env):
        policy = SecurityPolicy(
            rules=[PolicyRule("any", "*", Rights.of("Buffer.get", "Buffer.size"),
                              confine=False)]
        )
        buf, _, proxy = make_proxy(env, policy=policy)
        buf.put("direct")  # server side can still put
        assert proxy.get() == "direct"
        with pytest.raises(MethodDisabledError, match="Buffer.put"):
            proxy.put("nope")

    def test_rights_restriction_disables(self, env):
        _, _, proxy = make_proxy(env, rights=Rights.of("Buffer.get", "Buffer.size"))
        with pytest.raises(MethodDisabledError):
            proxy.put("x")

    def test_nothing_enabled_denies_at_get_proxy(self, env):
        buf = Buffer(RES, OWNER, SecurityPolicy.deny_all())
        domain = env.agent_domain(Rights.all())
        with pytest.raises(AccessDeniedError):
            buf.get_proxy(domain.credentials, env.context(domain))

    def test_denials_are_audited(self, env):
        _, domain, proxy = make_proxy(env, rights=Rights.of("Buffer.get"))
        with pytest.raises(MethodDisabledError):
            proxy.put("x")
        denials = env.audit.denials()
        assert any(
            r.operation == "proxy.invoke" and r.target == "Buffer.put"
            for r in denials
        )


class TestExpiry:
    def test_proxy_expires(self, env):
        policy = SecurityPolicy(
            rules=[PolicyRule("any", "*", Rights.all(), lifetime=10.0, confine=False)]
        )
        _, _, proxy = make_proxy(env, policy=policy, capacity=4)
        proxy.put("early")
        env.clock.advance(11.0)
        with pytest.raises(ProxyExpiredError):
            proxy.get()

    def test_set_expiry_privileged_extension(self, env):
        policy = SecurityPolicy(
            rules=[PolicyRule("any", "*", Rights.all(), lifetime=10.0, confine=False)]
        )
        _, _, proxy = make_proxy(env, policy=policy, capacity=4)
        with enter_group(env.server_domain.thread_group):
            proxy.set_expiry(env.clock.now() + 1000.0)
        env.clock.advance(500.0)
        proxy.put("still works")


class TestRevocation:
    def test_full_revocation(self, env):
        buf, _, proxy = make_proxy(env, capacity=4)
        proxy.put("a")
        with enter_group(env.server_domain.thread_group):
            proxy.revoke()
        with pytest.raises(ProxyRevokedError):
            proxy.get()

    def test_selective_method_revocation_and_restore(self, env):
        buf, _, proxy = make_proxy(env, capacity=4)
        with enter_group(env.server_domain.thread_group):
            proxy.set_method_enabled("put", False)
        with pytest.raises(MethodDisabledError):
            proxy.put("x")
        assert proxy.size() == 0  # other methods unaffected
        with enter_group(env.server_domain.thread_group):
            proxy.set_method_enabled("put", True)
        proxy.put("x")
        assert proxy.size() == 1

    def test_unknown_method_toggle_rejected(self, env):
        _, _, proxy = make_proxy(env)
        with enter_group(env.server_domain.thread_group):
            with pytest.raises(SecurityException, match="no exported method"):
                proxy.set_method_enabled("launder_money", True)

    def test_agent_cannot_call_privileged_methods(self, env):
        _, domain, proxy = make_proxy(env)
        with enter_group(domain.thread_group):
            with pytest.raises(PrivilegeError):
                proxy.revoke()
            with pytest.raises(PrivilegeError):
                proxy.set_method_enabled("put", False)
            with pytest.raises(PrivilegeError):
                proxy.set_expiry(None)

    def test_unmanaged_context_cannot_call_privileged(self, env):
        _, _, proxy = make_proxy(env)
        with pytest.raises(PrivilegeError):
            proxy.revoke()

    def test_revoke_all_from_server(self, env):
        buf = Buffer(RES, OWNER, SecurityPolicy.allow_all(confine=False))
        proxies = []
        for _ in range(3):
            domain = env.agent_domain(Rights.all())
            proxies.append(buf.get_proxy(domain.credentials, env.context(domain)))
        with enter_group(env.server_domain.thread_group):
            assert buf.revoke_all() == 3
        for proxy in proxies:
            with pytest.raises(ProxyRevokedError):
                proxy.size()

    def test_revoke_for_single_domain(self, env):
        buf = Buffer(RES, OWNER, SecurityPolicy.allow_all(confine=False))
        d1 = env.agent_domain(Rights.all())
        d2 = env.agent_domain(Rights.all())
        p1 = buf.get_proxy(d1.credentials, env.context(d1))
        p2 = buf.get_proxy(d2.credentials, env.context(d2))
        with enter_group(env.server_domain.thread_group):
            assert buf.revoke_for(d1.domain_id) == 1
        with pytest.raises(ProxyRevokedError):
            p1.size()
        p2.size()  # unaffected


class TestConfinement:
    def test_grantee_domain_may_invoke(self, env):
        domain = env.agent_domain(Rights.all())
        buf, _, proxy = make_proxy(
            env, policy=SecurityPolicy.allow_all(confine=True), domain=domain
        )
        with enter_group(domain.thread_group):
            proxy.put("mine")
            assert proxy.size() == 1

    def test_stolen_proxy_useless_in_other_domain(self, env):
        """Section 5.5: the proxy is an identity-based capability."""
        victim = env.agent_domain(Rights.all())
        thief = env.agent_domain(Rights.all())
        buf, _, proxy = make_proxy(
            env, policy=SecurityPolicy.allow_all(confine=True), domain=victim
        )
        with enter_group(thief.thread_group):
            with pytest.raises(CapabilityConfinementError):
                proxy.size()

    def test_unconfined_proxy_travels(self, env):
        victim = env.agent_domain(Rights.all())
        thief = env.agent_domain(Rights.all())
        buf, _, proxy = make_proxy(
            env, policy=SecurityPolicy.allow_all(confine=False), domain=victim
        )
        with enter_group(thief.thread_group):
            assert proxy.size() == 0  # allowed: confinement off


class TestPrecheckOrder:
    def test_revoked_beats_expired_beats_disabled(self, env):
        policy = SecurityPolicy(
            rules=[PolicyRule("any", "*", Rights.of("Buffer.get"),
                              lifetime=5.0, confine=False)]
        )
        _, _, proxy = make_proxy(env, policy=policy)
        env.clock.advance(10.0)  # now expired
        with pytest.raises(ProxyExpiredError):
            proxy.put("x")  # put is ALSO disabled, but expiry reported first
        with enter_group(env.server_domain.thread_group):
            proxy.revoke()
        with pytest.raises(ProxyRevokedError):
            proxy.put("x")  # revocation reported before expiry

    def test_confinement_beats_disabled(self, env):
        victim = env.agent_domain(Rights.of("Buffer.get"))
        thief = env.agent_domain(Rights.all())
        _, _, proxy = make_proxy(
            env, policy=SecurityPolicy.allow_all(confine=True), domain=victim,
            rights=Rights.of("Buffer.get"),
        )
        with enter_group(thief.thread_group):
            with pytest.raises(CapabilityConfinementError):
                proxy.put("x")


class TestMetering:
    def metered_proxy(self, env, quotas=None, rights=None):
        policy = SecurityPolicy(
            rules=[PolicyRule("any", "*",
                              Rights.of("Buffer.*", quotas=quotas or {}),
                              confine=False, metered=True)]
        )
        return make_proxy(env, policy=policy, rights=rights, capacity=100)

    def test_quota_enforced(self, env):
        _, _, proxy = self.metered_proxy(env, quotas={"Buffer.put": 2})
        proxy.put(1)
        proxy.put(2)
        with pytest.raises(QuotaExceededError):
            proxy.put(3)
        assert proxy.size() == 2  # the third put never reached the buffer

    def test_usage_report(self, env):
        _, _, proxy = self.metered_proxy(env)
        proxy.put(1)
        proxy.put(2)
        proxy.get()
        report = proxy.usage_report()
        assert report.count_of("put") == 2
        assert report.count_of("get") == 1

    def test_unmetered_proxy_has_no_report(self, env):
        _, _, proxy = make_proxy(env)
        assert proxy.usage_report() is None

    def test_proxy_info(self, env):
        _, domain, proxy = make_proxy(env, rights=Rights.of("Buffer.get"))
        info = proxy.proxy_info()
        assert info["resource"] == "Buffer"
        assert info["grantee"] == domain.domain_id
        assert info["enabled"] == frozenset({"get"})
        assert info["revoked"] is False

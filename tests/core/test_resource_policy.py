"""Tests for the resource skeleton and the security policy engine."""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.apps.database import QueryStore
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.core.resource import (
    ResourceImpl,
    export,
    exported_methods,
    permission_for,
)
from repro.credentials.principal import Group, GroupDirectory
from repro.credentials.rights import Rights
from repro.errors import CredentialError, SecurityException
from repro.naming.urn import URN

RES = URN.parse("urn:resource:store.com/buf")
OWNER = URN.parse("urn:principal:store.com/admin")


def make_buffer(policy=None, **kw) -> Buffer:
    return Buffer(RES, OWNER, policy or SecurityPolicy.allow_all(), **kw)


class TestResourceSkeleton:
    def test_generic_queries(self):
        buf = make_buffer(capacity=4)
        assert buf.resource_name() == RES
        assert buf.resource_owner() == OWNER
        assert buf.resource_kind() == "Buffer"
        assert "put" in buf.resource_interface()
        assert "resource_name" in buf.resource_interface()

    def test_non_resource_urn_rejected(self):
        with pytest.raises(SecurityException):
            Buffer(
                URN.parse("urn:agent:store.com/buf"),
                OWNER,
                SecurityPolicy.allow_all(),
            )

    def test_exported_methods_include_inherited(self):
        methods = exported_methods(Buffer)
        # Fig. 4 interface + Fig. 3 generics
        for name in ("put", "get", "size", "resource_name", "resource_owner"):
            assert name in methods

    def test_export_marks_only_decorated(self):
        class Custom(ResourceImpl):
            @export
            def visible(self):
                return 1

            def hidden(self):
                return 2

        assert "visible" in exported_methods(Custom)
        assert "hidden" not in exported_methods(Custom)

    def test_permission_uses_most_derived_class(self):
        assert permission_for(Buffer, "get") == "Buffer.get"
        assert permission_for(QueryStore, "query") == "QueryStore.query"

    def test_definition_order_stable(self):
        m = exported_methods(Buffer)
        assert m.index("put") < m.index("get") < m.index("size")


class TestPolicyRuleMatching(object):
    def test_owner_pattern(self, env):
        rule = PolicyRule("owner", "urn:principal:umn.edu/*", Rights.all())
        creds = env.credentials(Rights.all())
        assert rule.matches(creds, None)
        stranger = env.credentials(
            Rights.all(), owner=URN.parse("urn:principal:evil.com/eve")
        )
        assert not rule.matches(stranger, None)

    def test_agent_pattern(self, env):
        rule = PolicyRule("agent", "urn:agent:umn.edu/agent-*", Rights.all())
        assert rule.matches(env.credentials(Rights.all()), None)

    def test_any(self, env):
        rule = PolicyRule("any", "*", Rights.all())
        assert rule.matches(env.credentials(Rights.all()), None)

    def test_group_membership(self, env):
        groups = GroupDirectory()
        staff = URN.parse("urn:group:umn.edu/staff")
        groups.add_group(Group(staff, {env.owner}))
        rule = PolicyRule("group", str(staff), Rights.all())
        assert rule.matches(env.credentials(Rights.all()), groups)
        outsider = env.credentials(
            Rights.all(), owner=URN.parse("urn:principal:evil.com/eve")
        )
        assert not rule.matches(outsider, groups)

    def test_group_without_directory_denies(self, env):
        rule = PolicyRule("group", "urn:group:umn.edu/staff", Rights.all())
        assert not rule.matches(env.credentials(Rights.all()), None)

    def test_bad_kind_rejected(self):
        with pytest.raises(CredentialError):
            PolicyRule("species", "*", Rights.all())

    def test_bad_lifetime_rejected(self):
        with pytest.raises(CredentialError):
            PolicyRule("any", "*", Rights.all(), lifetime=0.0)


class TestDecide:
    def test_no_matching_rule_grants_nothing(self, env):
        policy = SecurityPolicy(
            rules=[PolicyRule("owner", "urn:principal:other.org/*", Rights.all())]
        )
        buf = make_buffer(policy)
        grant = policy.decide(buf, env.credentials(Rights.all()))
        assert grant.enabled == frozenset()

    def test_both_sides_must_permit(self, env):
        # Server policy offers only get; owner delegated only put: nothing.
        policy = SecurityPolicy(rules=[PolicyRule("any", "*", Rights.of("Buffer.get"))])
        buf = make_buffer(policy)
        grant = policy.decide(buf, env.credentials(Rights.of("Buffer.put")))
        assert grant.enabled == frozenset()

    def test_intersection_semantics(self, env):
        policy = SecurityPolicy(rules=[PolicyRule("any", "*", Rights.of("Buffer.*"))])
        buf = make_buffer(policy)
        grant = policy.decide(
            buf, env.credentials(Rights.of("Buffer.get", "Buffer.size"))
        )
        assert grant.enabled == frozenset({"get", "size"})

    def test_union_over_matching_rules(self, env):
        policy = SecurityPolicy(
            rules=[
                PolicyRule("any", "*", Rights.of("Buffer.get")),
                PolicyRule("owner", "urn:principal:umn.edu/*", Rights.of("Buffer.put")),
            ]
        )
        buf = make_buffer(policy)
        grant = policy.decide(buf, env.credentials(Rights.all()))
        assert {"get", "put"} <= set(grant.enabled)

    def test_quota_minimum_across_sources(self, env):
        policy = SecurityPolicy(
            rules=[
                PolicyRule(
                    "any", "*",
                    Rights.of("Buffer.*", quotas={"Buffer.put": 10}),
                )
            ]
        )
        buf = make_buffer(policy)
        creds = env.credentials(Rights.of("Buffer.*", quotas={"Buffer.put": 3}))
        grant = policy.decide(buf, creds)
        assert grant.quota_for("put") == 3
        assert grant.quota_for("get") is None

    def test_lifetime_minimum_over_rules(self, env):
        policy = SecurityPolicy(
            rules=[
                PolicyRule("any", "*", Rights.of("Buffer.get"), lifetime=100.0),
                PolicyRule("any", "*", Rights.of("Buffer.size"), lifetime=50.0),
            ]
        )
        buf = make_buffer(policy)
        grant = policy.decide(buf, env.credentials(Rights.all()))
        assert grant.lifetime == 50.0

    def test_flags_or_over_rules(self, env):
        policy = SecurityPolicy(
            rules=[
                PolicyRule("any", "*", Rights.of("Buffer.get"),
                           confine=False, metered=False),
                PolicyRule("any", "*", Rights.of("Buffer.size"),
                           confine=True, metered=True),
            ]
        )
        buf = make_buffer(policy)
        grant = policy.decide(buf, env.credentials(Rights.all()))
        assert grant.confine and grant.metered

    def test_delegation_attenuation_reaches_decide(self, env):
        """A server-added restriction narrows what decide enables."""
        policy = SecurityPolicy.allow_all()
        buf = make_buffer(policy)
        creds = env.credentials(Rights.of("Buffer.*"))
        server_keys = KeyPairFactory(env)
        restricted = creds.extend(
            delegator=URN.parse("urn:server:relay.com/s1"),
            delegator_keys=server_keys.keys,
            delegator_certificate=server_keys.cert,
            restriction=Rights.of("Buffer.get", "Buffer.size"),
            now=env.clock.now(),
        )
        grant = policy.decide(buf, restricted)
        assert "get" in grant.enabled
        assert "put" not in grant.enabled

    def test_allow_all_and_deny_all(self, env):
        buf_allow = make_buffer(SecurityPolicy.allow_all())
        grant = SecurityPolicy.allow_all().decide(
            buf_allow, env.credentials(Rights.all())
        )
        assert set(grant.enabled) == set(exported_methods(Buffer))
        grant2 = SecurityPolicy.deny_all().decide(
            buf_allow, env.credentials(Rights.all())
        )
        assert grant2.enabled == frozenset()


class KeyPairFactory:
    """A delegating server identity for delegation tests."""

    def __init__(self, env):
        from repro.crypto.keys import KeyPair
        from repro.util.rng import make_rng

        self.keys = KeyPair.generate(make_rng(77, "relay"), bits=512)
        self.cert = env.ca.issue("urn:server:relay.com/s1", self.keys.public)


class TestQuotaFolding:
    """The multi-rule offer fold (rewritten to O(granted methods)).

    A rule that offers a method *without* a quota must never widen
    another rule's limit, and min-combination must be independent of
    rule order — both were implicit in the old O(interface x rules)
    scan and are pinned here against the folded implementation.
    """

    def _decide(self, rules, env, rights=None):
        policy = SecurityPolicy(rules=list(rules))
        buf = make_buffer(policy)
        return policy.decide(buf, env.credentials(rights or Rights.all()))

    def test_unquoted_rule_does_not_widen_limit(self, env):
        grant = self._decide(
            [
                PolicyRule("any", "*",
                           Rights.of("Buffer.*", quotas={"Buffer.put": 5})),
                PolicyRule("any", "*", Rights.of("Buffer.put")),
            ],
            env,
        )
        assert grant.quota_for("put") == 5

    def test_min_over_quoted_rules_any_order(self, env):
        low = PolicyRule("any", "*",
                         Rights.of("Buffer.*", quotas={"Buffer.put": 2}))
        high = PolicyRule("any", "*",
                          Rights.of("Buffer.*", quotas={"Buffer.put": 9}))
        for ordering in ([low, high], [high, low]):
            grant = self._decide(ordering, env)
            assert grant.quota_for("put") == 2

    def test_single_rule_fast_path_is_pure(self, env):
        # The one-rule path aliases the rule's method table; deciding
        # twice must not perturb it.
        rule = PolicyRule("any", "*",
                          Rights.of("Buffer.*", quotas={"Buffer.put": 4}))
        policy = SecurityPolicy(rules=[rule])
        buf = make_buffer(policy)
        first = policy.decide(buf, env.credentials(Rights.all()))
        second = policy.decide(buf, env.credentials(Rights.all()))
        assert first.quotas == second.quotas
        assert first.enabled == second.enabled
        assert first.quota_for("put") == 4

    def test_union_of_disjoint_rule_offers_keeps_each_quota(self, env):
        grant = self._decide(
            [
                PolicyRule("any", "*",
                           Rights.of("Buffer.put", quotas={"Buffer.put": 3})),
                PolicyRule("any", "*",
                           Rights.of("Buffer.get", quotas={"Buffer.get": 7})),
            ],
            env,
        )
        assert grant.quota_for("put") == 3
        assert grant.quota_for("get") == 7
        assert {"put", "get"} <= set(grant.enabled)

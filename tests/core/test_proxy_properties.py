"""Property-based tests of the proxy soundness invariant.

The invariant (DESIGN.md §6): a proxy call succeeds **iff**
not revoked ∧ not expired ∧ (unconfined ∨ caller is the grantee)
∧ method enabled — and when it fails, the *first* violated condition in
that order names the exception.  A hypothesis state machine drives random
interleavings of calls, revocations, method toggles, expiry changes and
clock advances against a pure model.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.apps.buffer import Buffer
from repro.core.policy import SecurityPolicy
from repro.core.resource import exported_methods
from repro.credentials.rights import Rights
from repro.errors import (
    CapabilityConfinementError,
    MethodDisabledError,
    ProxyExpiredError,
    ProxyRevokedError,
)
from repro.naming.urn import URN

import tests.conftest as shared

METHODS = ["size", "try_put", "resource_name", "resource_kind"]


class ProxyMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.env = shared.CoreEnv(seed=900)
        self.buffer = Buffer(
            URN.parse("urn:resource:prop.org/buf"),
            URN.parse("urn:principal:prop.org/o"),
            SecurityPolicy.allow_all(confine=True),
        )
        self.grantee = self.env.agent_domain(Rights.all())
        self.thief = self.env.agent_domain(Rights.all())
        self.proxy = self.buffer.get_proxy(
            self.grantee.credentials, self.env.context(self.grantee)
        )
        # the model
        self.enabled = set(exported_methods(Buffer))
        self.revoked = False
        self.expires_at: float | None = None

    # -- mutations ------------------------------------------------------------

    @rule(method=st.sampled_from(METHODS), on=st.booleans())
    def toggle(self, method, on):
        from repro.sandbox.threadgroup import enter_group

        with enter_group(self.env.server_domain.thread_group):
            self.proxy.set_method_enabled(method, on)
        if on:
            self.enabled.add(method)
        else:
            self.enabled.discard(method)

    @rule()
    def revoke(self):
        from repro.sandbox.threadgroup import enter_group

        with enter_group(self.env.server_domain.thread_group):
            self.proxy.revoke()
        self.revoked = True

    @rule(lifetime=st.one_of(st.none(), st.floats(min_value=0.5, max_value=50.0)))
    def set_expiry(self, lifetime):
        from repro.sandbox.threadgroup import enter_group

        expires = None if lifetime is None else self.env.clock.now() + lifetime
        with enter_group(self.env.server_domain.thread_group):
            self.proxy.set_expiry(expires)
        self.expires_at = expires

    @rule(dt=st.floats(min_value=0.1, max_value=30.0))
    def advance_clock(self, dt):
        self.env.clock.advance(dt)

    # -- the probe ---------------------------------------------------------------

    def expected_error(self, method: str, as_thief: bool):
        if self.revoked:
            return ProxyRevokedError
        if self.expires_at is not None and self.env.clock.now() > self.expires_at:
            return ProxyExpiredError
        if as_thief:
            return CapabilityConfinementError
        if method not in self.enabled:
            return MethodDisabledError
        return None

    def probe(self, method: str, as_thief: bool):
        from repro.sandbox.threadgroup import enter_group

        domain = self.thief if as_thief else self.grantee
        args = ("x",) if method == "try_put" else ()
        expected = self.expected_error(method, as_thief)
        with enter_group(domain.thread_group):
            if expected is None:
                getattr(self.proxy, method)(*args)  # must not raise
            else:
                with pytest.raises(expected):
                    getattr(self.proxy, method)(*args)

    @rule(method=st.sampled_from(METHODS))
    def call_as_grantee(self, method):
        self.probe(method, as_thief=False)

    @rule(method=st.sampled_from(METHODS))
    def call_as_thief(self, method):
        self.probe(method, as_thief=True)

    # -- global checks --------------------------------------------------------------

    @invariant()
    def info_matches_model(self):
        info = self.proxy.proxy_info()
        assert info["revoked"] == self.revoked
        assert info["enabled"] == frozenset(self.enabled)
        assert info["expires_at"] == self.expires_at


TestProxyMachine = ProxyMachine.TestCase
TestProxyMachine.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)

"""Soundness of the binding fast path's grant cache.

The cache on ``AccessProtocol`` memoizes ``SecurityPolicy.decide`` keyed
by ``(credential fingerprint, policy version)``.  The invariant pinned
here (property-based, per the §5.1 dynamic-policy requirement): **after
any mutation — ``add_rule``, ``set_policy``, or a group-membership
change — the served grant is identical to what a freshly constructed
policy object would decide.**  A grant computed before the mutation is
never served after it.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.credentials import Credentials
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.principal import Group, GroupDirectory
from repro.credentials.rights import Rights
from repro.crypto.cert import CertificateAuthority
from repro.crypto.keys import KeyPair
from repro.naming.urn import URN
from repro.util.clock import VirtualClock
from repro.util.rng import make_rng

RES = URN.parse("urn:resource:store.com/buf")
STAFF = URN.parse("urn:group:umn.edu/staff")


def _mint_pool():
    """A fixed pool of signed credentials (RSA once, reused by every example)."""
    clock = VirtualClock()
    ca = CertificateAuthority("gc-ca", make_rng(1234, "ca"), clock)
    pool = []
    owners = [
        ("urn:principal:umn.edu/alice", Rights.of("Buffer.*")),
        ("urn:principal:umn.edu/alice", Rights.of("Buffer.get", "Buffer.size")),
        ("urn:principal:evil.com/eve", Rights.all()),
    ]
    for index, (owner_str, rights) in enumerate(owners):
        owner = URN.parse(owner_str)
        keys = KeyPair.generate(make_rng(1234 + index, "owner"), bits=512)
        cert = ca.issue(owner_str, keys.public)
        cred = Credentials.issue(
            agent=URN.parse(f"urn:agent:umn.edu/agent-{index}"),
            owner=owner,
            creator=owner,
            owner_keys=keys,
            owner_certificate=cert,
            rights=rights,
            now=clock.now(),
            lifetime=1e9,
        )
        pool.append(DelegatedCredentials.wrap(cred))
    return pool


POOL = _mint_pool()
ALICE = URN.parse("urn:principal:umn.edu/alice")
EVE = URN.parse("urn:principal:evil.com/eve")

permissions = st.sampled_from(
    ["Buffer.*", "Buffer.put", "Buffer.get", "Buffer.size", "*", "resource_*"]
)
rights_values = st.builds(
    lambda patterns, quota: Rights.of(
        *patterns, quotas={"Buffer.put": quota} if quota is not None else None
    ),
    st.lists(permissions, min_size=1, max_size=3),
    st.one_of(st.none(), st.integers(min_value=0, max_value=9)),
)
rules = st.one_of(
    st.builds(lambda g: PolicyRule("any", "*", g), rights_values),
    st.builds(
        lambda subject, g: PolicyRule("owner", subject, g),
        st.sampled_from(
            ["urn:principal:umn.edu/*", "urn:principal:evil.com/*", "urn:none/*"]
        ),
        rights_values,
    ),
    st.builds(
        lambda subject, g: PolicyRule("agent", subject, g),
        st.sampled_from(["urn:agent:umn.edu/agent-*", "urn:agent:other.org/*"]),
        rights_values,
    ),
    st.builds(lambda g: PolicyRule("group", str(STAFF), g), rights_values),
)
rule_lists = st.lists(rules, min_size=0, max_size=4)
mutations = st.lists(
    st.one_of(
        st.tuples(st.just("add_rule"), rules),
        st.tuples(st.just("set_policy"), rule_lists),
        st.tuples(st.just("group_add"), st.sampled_from([ALICE, EVE])),
        st.tuples(st.just("group_remove"), st.sampled_from([ALICE, EVE])),
    ),
    min_size=1,
    max_size=5,
)


def fresh_decision(buf, credentials):
    """What a brand-new policy object (no cache, no history) decides."""
    current = buf.policy
    pristine = SecurityPolicy(rules=list(current.rules), groups=current.groups)
    return pristine.decide(buf, credentials)


@settings(max_examples=60, deadline=None)
@given(initial=rule_lists, steps=mutations, members=st.sets(st.sampled_from([ALICE, EVE])))
def test_mutations_never_serve_stale_grants(initial, steps, members):
    groups = GroupDirectory()
    groups.add_group(Group(STAFF, set(members)))
    buf = Buffer(RES, ALICE, SecurityPolicy(rules=list(initial), groups=groups))
    # Warm the cache with pre-mutation decisions for every credential.
    for credentials in POOL:
        buf._grant_for(credentials)
    for op, arg in steps:
        if op == "add_rule":
            buf.policy.add_rule(arg)
        elif op == "set_policy":
            buf.set_policy(SecurityPolicy(rules=list(arg), groups=groups))
        elif op == "group_add":
            groups.group(STAFF).add(arg)
        elif op == "group_remove":
            groups.group(STAFF).remove(arg)
        # After *each* mutation the cache must agree with a fresh policy.
        for credentials in POOL:
            assert buf._grant_for(credentials) == fresh_decision(buf, credentials)


def test_repeat_binding_hits_the_cache():
    buf = Buffer(RES, ALICE, SecurityPolicy.allow_all())
    credentials = POOL[0]
    first = buf._grant_for(credentials)
    second = buf._grant_for(credentials)
    assert first == second
    stats = buf.grant_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_add_rule_invalidates():
    buf = Buffer(RES, ALICE, SecurityPolicy(
        rules=[PolicyRule("any", "*", Rights.of("Buffer.get"))]
    ))
    before = buf._grant_for(POOL[0])
    assert "put" not in before.enabled
    buf.policy.add_rule(PolicyRule("any", "*", Rights.of("Buffer.put")))
    after = buf._grant_for(POOL[0])
    assert "put" in after.enabled
    assert buf.grant_cache_stats()["misses"] == 2  # both keys decided afresh


def test_set_policy_invalidates_and_flushes():
    buf = Buffer(RES, ALICE, SecurityPolicy.allow_all())
    wide = buf._grant_for(POOL[0])
    assert "put" in wide.enabled
    buf.set_policy(SecurityPolicy.deny_all())
    assert buf.grant_cache_stats()["size"] == 0
    assert buf._grant_for(POOL[0]).enabled == frozenset()


def test_group_membership_change_invalidates_both_ways():
    groups = GroupDirectory()
    groups.add_group(Group(STAFF, set()))
    buf = Buffer(RES, ALICE, SecurityPolicy(
        rules=[PolicyRule("group", str(STAFF), Rights.of("Buffer.*"))],
        groups=groups,
    ))
    assert buf._grant_for(POOL[0]).enabled == frozenset()
    groups.group(STAFF).add(ALICE)  # joins the role -> grant appears
    assert "get" in buf._grant_for(POOL[0]).enabled
    groups.group(STAFF).remove(ALICE)  # leaves -> grant disappears
    assert buf._grant_for(POOL[0]).enabled == frozenset()


def test_distinct_credentials_do_not_share_entries():
    buf = Buffer(RES, ALICE, SecurityPolicy.allow_all())
    grant_alice = buf._grant_for(POOL[0])
    grant_eve = buf._grant_for(POOL[2])
    assert buf.grant_cache_stats()["misses"] == 2
    # Eve holds Rights.all(), Alice only Buffer.*: decisions differ.
    assert grant_eve.enabled >= grant_alice.enabled


def test_flush_forces_redecision():
    buf = Buffer(RES, ALICE, SecurityPolicy.allow_all())
    buf._grant_for(POOL[0])
    buf.flush_grant_cache()
    buf._grant_for(POOL[0])
    stats = buf.grant_cache_stats()
    assert stats["misses"] == 2 and stats["hits"] == 0


def test_quota_lookup_is_exact_after_caching():
    """ProxyGrant.quota_for keeps tuple semantics behind the O(1) map."""
    policy = SecurityPolicy(rules=[
        PolicyRule("any", "*", Rights.of("Buffer.*", quotas={"Buffer.put": 5})),
    ])
    buf = Buffer(RES, ALICE, policy)
    grant = buf._grant_for(POOL[0])
    assert grant.quota_for("put") == 5
    assert grant.quota_for("get") is None
    assert grant.quota_for("nonexistent") is None

"""Delegator-endorsement policy rules (section 5.2's "additional privileges")."""

from __future__ import annotations

import pytest

from repro.apps.marketplace import QuoteService
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.crypto.keys import KeyPair
from repro.naming.urn import URN
from repro.util.rng import make_rng

SHOP = URN.parse("urn:resource:market.org/shop")
OWNER = URN.parse("urn:principal:market.org/merchant")
PARTNER = URN.parse("urn:server:partner.org/broker")


def make_shop(policy):
    return QuoteService(SHOP, OWNER, policy,
                        catalog={"camera": (100.0, 5)})


@pytest.fixture()
def partner_identity(env):
    keys = KeyPair.generate(make_rng(55, "partner"), bits=512)
    cert = env.ca.issue(str(PARTNER), keys.public)
    return keys, cert


def endorsement_policy():
    return SecurityPolicy(rules=[
        # everyone gets quotes
        PolicyRule("any", "*", Rights.of("QuoteService.quote")),
        # but only partner-endorsed agents may buy
        PolicyRule("delegator", str(PARTNER), Rights.of("QuoteService.buy")),
    ])


def test_unendorsed_agent_cannot_buy(env):
    shop = make_shop(endorsement_policy())
    creds = env.credentials(Rights.all())
    grant = shop.policy.decide(shop, creds)
    assert "quote" in grant.enabled
    assert "buy" not in grant.enabled


def test_endorsed_agent_gains_the_server_side_offer(env, partner_identity):
    keys, cert = partner_identity
    shop = make_shop(endorsement_policy())
    creds = env.credentials(Rights.all()).extend(
        delegator=PARTNER,
        delegator_keys=keys,
        delegator_certificate=cert,
        restriction=Rights.all(),  # pure endorsement: no attenuation
        now=env.clock.now(),
    )
    grant = shop.policy.decide(shop, creds)
    assert {"quote", "buy"} <= set(grant.enabled)


def test_endorsement_cannot_exceed_owner_grant(env, partner_identity):
    """The owner side still gates: endorsement widens only the offer."""
    keys, cert = partner_identity
    shop = make_shop(endorsement_policy())
    creds = env.credentials(Rights.of("QuoteService.quote")).extend(
        delegator=PARTNER,
        delegator_keys=keys,
        delegator_certificate=cert,
        restriction=Rights.all(),
        now=env.clock.now(),
    )
    grant = shop.policy.decide(shop, creds)
    assert "buy" not in grant.enabled  # owner never granted buy
    assert "quote" in grant.enabled


def test_wrong_endorser_does_not_match(env):
    stranger = URN.parse("urn:server:stranger.org/s")
    keys = KeyPair.generate(make_rng(56, "stranger"), bits=512)
    cert = env.ca.issue(str(stranger), keys.public)
    shop = make_shop(endorsement_policy())
    creds = env.credentials(Rights.all()).extend(
        delegator=stranger,
        delegator_keys=keys,
        delegator_certificate=cert,
        restriction=Rights.all(),
        now=env.clock.now(),
    )
    grant = shop.policy.decide(shop, creds)
    assert "buy" not in grant.enabled


def test_endorsement_travels_with_forwarding_server():
    """End to end: a forwarding server's delegation link unlocks `buy`."""
    from repro.agents.agent import Agent, register_trusted_agent_class
    from repro.server.testbed import Testbed

    @register_trusted_agent_class
    class EndorsedBuyer(Agent):
        def __init__(self) -> None:
            self.path = []
            self.shop = ""

        def run(self):
            if self.path:
                nxt = self.path.pop(0)
                self.go(nxt, "run")
            shop = self.host.get_resource(self.shop)
            paid = shop.buy("camera")
            self.host.report_home({"paid": paid})
            self.complete()

    bed = Testbed(3)
    broker, market = bed.servers[1], bed.servers[2]
    # The broker endorses (without attenuating) everything it forwards.
    broker.forward_restriction = Rights.all()
    policy = SecurityPolicy(rules=[
        PolicyRule("any", "*", Rights.of("QuoteService.quote")),
        PolicyRule("delegator", broker.name, Rights.of("QuoteService.buy")),
    ])
    shop_name = URN.parse("urn:resource:market.net/shop")
    shop = QuoteService(shop_name, OWNER, policy,
                        catalog={"camera": (100.0, 5)})
    market.install_resource(shop)

    via_broker = EndorsedBuyer()
    via_broker.path = [broker.name, market.name]
    via_broker.shop = str(shop_name)
    bed.launch(via_broker, Rights.all(), agent_local="via-broker")

    direct = EndorsedBuyer()
    direct.path = [market.name]
    direct.shop = str(shop_name)
    direct_image = bed.launch(direct, Rights.all(), agent_local="direct")

    bed.run()
    # The broker-routed agent bought; the direct one was denied.
    paid = [r["payload"]["paid"] for r in bed.home.reports
            if "paid" in r.get("payload", {})]
    assert paid == [100.0]
    assert market.resident_status(direct_image.name)["status"] == "terminated"
"""Meter settlement on revocation: in-flight time is billed, then frozen.

Section 5.5's elapsed-time accounting has a containment corner case: an
agent blocked *inside* a time-metered call when its grant is revoked
(lease sweep, runaway kill, explicit ``revoke_for``).  The proxy's
``finally`` block would normally bill the whole call when it eventually
returns — but by then the grant is gone and the agent may be too.  The
sweep rule: revocation charges the partial elapsed time up to the
revocation instant and finalizes the meter, so the eventual in-flight
completion neither double-bills nor accrues unowned charges.
"""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.buffer import Buffer
from repro.core.accounting import Tariff
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import ProxyRevokedError, QuotaExceededError
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group
from repro.server.testbed import Testbed

PIPE = "urn:resource:site0.net/swept-pipe"
RATE = 2.0

OUTCOMES: dict[str, object] = {}


@pytest.fixture(autouse=True)
def _reset_outcomes():
    OUTCOMES.clear()
    yield


def metered_pipe(bed: Testbed) -> Buffer:
    policy = SecurityPolicy(
        rules=[PolicyRule("any", "*", Rights.of("Buffer.*"), metered=True,
                          confine=False)]
    )
    return Buffer(URN.parse(PIPE), URN.parse("urn:principal:site0.net/o"),
                  policy, kernel=bed.kernel,
                  tariff=Tariff.of({}, per_second=RATE))


@register_trusted_agent_class
class SweptConsumer(Agent):
    def run(self):
        pipe = self.host.get_resource(PIPE)
        item = pipe.get()  # blocks until the producer shows up at t=10
        OUTCOMES["item"] = item
        try:
            pipe.size()  # the grant died at t=5, mid-flight
        except ProxyRevokedError:
            OUTCOMES["next_call"] = "denied"
        self.complete()


@register_trusted_agent_class
class TardyProducer(Agent):
    def run(self):
        self.host.sleep(10.0)
        pipe = self.host.get_resource(PIPE)
        pipe.put("finally")
        self.complete()


def test_revocation_bills_partial_inflight_time_and_freezes_the_meter():
    bed = Testbed(1)
    pipe = metered_pipe(bed)
    bed.home.install_resource(pipe)
    consumer = bed.launch(SweptConsumer(), Rights.all(),
                          agent_local="consumer")
    bed.launch(TardyProducer(), Rights.all(), agent_local="producer")

    def revoke_consumer():
        record = bed.home.domain_db.by_agent(consumer.name)
        with enter_group(bed.home.server_domain.thread_group):
            assert pipe.revoke_for(record.domain.domain_id) == 1

    # t=5: server revokes while the consumer is parked inside get().
    bed.kernel.schedule_at(5.0, revoke_consumer)
    bed.run()

    # The in-flight call itself still completes (the pre-check ran at
    # t=0); only *new* calls see the revocation.
    assert OUTCOMES["item"] == "finally"
    assert OUTCOMES["next_call"] == "denied"

    record = bed.home.domain_db.by_agent(consumer.name)
    proxy = record.bindings[0].proxy
    assert proxy.proxy_info()["revoked"] is True
    # Billed exactly the 5 seconds used before the sweep — not the full
    # 10-second occupancy, and not 15 (sweep + finally double-charge).
    assert record.charges == pytest.approx(5.0 * RATE)
    report = proxy.usage_report()
    assert report.time_charges == pytest.approx(5.0 * RATE)
    assert proxy._meter.finalized is True


@register_trusted_agent_class
class QuotaGreedy(Agent):
    def run(self):
        proxy = self.host.get_resource(PIPE)
        try:
            while True:
                proxy.get()
        except QuotaExceededError as exc:
            OUTCOMES["context"] = dict(exc.context)
        self.complete()


def test_quota_error_carries_structured_context():
    bed = Testbed(1)
    policy = SecurityPolicy(
        rules=[PolicyRule(
            "any", "*",
            Rights.of("Buffer.*", quotas={"Buffer.get": 1}),
            metered=True, confine=False,
        )]
    )
    pipe = Buffer(URN.parse(PIPE), URN.parse("urn:principal:site0.net/o"),
                  policy, kernel=bed.kernel)
    pipe.put("one")
    pipe.put("two")
    bed.home.install_resource(pipe)
    bed.launch(QuotaGreedy(), Rights.all(), agent_local="greedy")
    bed.run()
    context = OUTCOMES["context"]
    assert context["method"] == "get"
    assert context["limit"] == 1
    assert context["resource"] == "Buffer"

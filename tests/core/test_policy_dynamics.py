"""Dynamic policy modification (section 5.1).

"The security policies of such resources can be dynamically modified by
their owners."  Semantics pinned here: a policy swap affects *future*
grants; proxies already issued keep their materialized enabled-set until
explicitly revoked (which is what `revoke_all` is for).
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import AccessDeniedError, MethodDisabledError
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group

RES = URN.parse("urn:resource:store.com/buf")
OWNER = URN.parse("urn:principal:store.com/admin")


def open_policy():
    return SecurityPolicy.allow_all(confine=False)


def locked_policy():
    return SecurityPolicy(
        rules=[PolicyRule("any", "*", Rights.of("Buffer.size"), confine=False)]
    )


def test_policy_swap_affects_future_grants_only(env):
    buf = Buffer(RES, OWNER, open_policy(), capacity=4)
    early = env.agent_domain(Rights.all())
    early_proxy = buf.get_proxy(early.credentials, env.context(early))
    buf.set_policy(locked_policy())
    late = env.agent_domain(Rights.all())
    late_proxy = buf.get_proxy(late.credentials, env.context(late))
    # The early proxy keeps its wide grant...
    early_proxy.put("still allowed")
    # ...the late one gets the narrowed offer.
    assert late_proxy.size() == 1
    with pytest.raises(MethodDisabledError):
        late_proxy.put("no")


def test_lockdown_is_swap_plus_revoke(env):
    """The full §5.1+§5.5 move: tighten policy AND cut existing grants."""
    buf = Buffer(RES, OWNER, open_policy(), capacity=4)
    domain = env.agent_domain(Rights.all())
    proxy = buf.get_proxy(domain.credentials, env.context(domain))
    proxy.put("before lockdown")
    buf.set_policy(SecurityPolicy.deny_all())
    with enter_group(env.server_domain.thread_group):
        buf.revoke_all()
    from repro.errors import ProxyRevokedError

    with pytest.raises(ProxyRevokedError):
        proxy.put("after lockdown")
    newcomer = env.agent_domain(Rights.all())
    with pytest.raises(AccessDeniedError):
        buf.get_proxy(newcomer.credentials, env.context(newcomer))


def test_module_demo_runs():
    """`python -m repro` is the install smoke test; keep it green."""
    result = subprocess.run(
        [sys.executable, "-m", "repro"], capture_output=True, text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "everything working" in result.stdout
    assert "'it works'" in result.stdout

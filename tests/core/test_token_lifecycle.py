"""Capability-token lifecycle: mint, redeem, revoke-by-epoch, re-mint.

The token is the sparse access matrix as a MAC-signed ticket (section
5.5 meets the classic CAPABILITY pattern): minted at ``get_proxy``,
carried across migration, redeemed in O(1) without a policy consult.
These tests pin the security boundary around that fast path:

* theft (presentation by a non-grantee) fails closed,
* tampering (MAC mismatch, non-canonical wire form) is rejected outright,
* an epoch bump revokes every outstanding token in one increment,
* staleness is *graceful* when policy still grants (transparent
  re-mint) and *fail-closed* when it no longer does.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.core.token import (
    CapabilityToken,
    EpochRegistry,
    TokenAuthority,
    default_epoch_registry,
    default_token_authority,
    interface_digest,
    mask_of,
    methods_of,
)
from repro.credentials.rights import Rights
from repro.errors import (
    CapabilityConfinementError,
    MethodDisabledError,
    ProxyRevokedError,
    TokenInvalidError,
)
from repro.naming.urn import URN

RES = URN.parse("urn:resource:store.com/buf")
RES2 = URN.parse("urn:resource:store.com/buf2")
OWNER = URN.parse("urn:principal:store.com/admin")


def open_policy() -> SecurityPolicy:
    return SecurityPolicy.allow_all(confine=False)


def make_proxy(env, *, policy=None, rights=None, name=RES, **buffer_kw):
    buf = Buffer(name, OWNER, policy or open_policy(), **buffer_kw)
    domain = env.agent_domain(rights or Rights.all())
    proxy = buf.get_proxy(domain.credentials, env.context(domain))
    return buf, domain, proxy


class TestMinting:
    def test_unmetered_grant_carries_token(self, env):
        buf, domain, proxy = make_proxy(env)
        token = proxy.capability_token()
        assert token is not None
        assert token.grantee == str(domain.credentials.agent)
        assert token.resource == str(RES)
        assert token.resource_kind == "Buffer"
        assert token.iface_digest == interface_digest(Buffer)
        assert methods_of(Buffer, token.mask) == proxy.proxy_info()["enabled"]

    def test_metered_grant_has_no_token(self, env):
        policy = SecurityPolicy(
            rules=[PolicyRule("any", "*", Rights.all(), metered=True,
                              confine=False)]
        )
        buf, _, proxy = make_proxy(env, policy=policy)
        assert proxy.capability_token() is None
        proxy.put("still works")  # the slow path is unaffected
        assert proxy.get() == "still works"

    def test_mask_reflects_selective_disabling(self, env):
        _, _, proxy = make_proxy(
            env, rights=Rights.of("Buffer.get", "Buffer.size")
        )
        token = proxy.capability_token()
        assert token.permits(mask_of(Buffer, ["get"]))
        assert not token.permits(mask_of(Buffer, ["put"]))

    def test_wire_roundtrip_is_lossless(self, env):
        _, _, proxy = make_proxy(env)
        token = proxy.capability_token()
        assert CapabilityToken.from_wire(token.to_wire()) == token


class TestWireRejection:
    def test_junk_rejected(self):
        with pytest.raises(TokenInvalidError):
            CapabilityToken.from_wire(b"not a token at all" + b"x" * 32)

    def test_truncated_rejected(self):
        with pytest.raises(TokenInvalidError):
            CapabilityToken.from_wire(b"short")

    def test_wrong_version_rejected(self, env):
        _, _, proxy = make_proxy(env)
        wire = proxy.capability_token().to_wire()
        with pytest.raises(TokenInvalidError, match="version"):
            CapabilityToken.from_wire(b"cap9" + wire[4:])

    def test_non_canonical_rejected(self, env):
        _, _, proxy = make_proxy(env)
        token = proxy.capability_token()
        # Upper-case hex re-parses to the same mask but re-encodes
        # differently — the MAC input would de-sync.
        packed = token.packed().replace(
            format(token.mask, "x").encode(), format(token.mask, "X").encode(), 1
        )
        if packed != token.packed():  # mask with no a-f digit: skip silently
            with pytest.raises(TokenInvalidError, match="canonical"):
                CapabilityToken.from_wire(packed + token.tag)


class TestRedemption:
    def test_redeem_fast_path_consults_no_policy(self, env):
        buf, domain, proxy = make_proxy(env)
        token = proxy.capability_token()
        cache_before = dict(buf.grant_cache_stats())
        minted_before = default_token_authority().stats["minted"]
        redeemed = buf.redeem_token(
            token, domain.credentials, env.context(domain)
        )
        assert buf.grant_cache_stats() == cache_before  # no decision ran
        assert default_token_authority().stats["minted"] == minted_before
        assert redeemed.capability_token() == token
        redeemed.put("via token")
        assert redeemed.get() == "via token"

    def test_redeem_accepts_wire_bytes_via_attributes(self, env):
        # The proxy manufactured from a parsed wire token behaves
        # identically to one from the in-memory token object.
        buf, domain, proxy = make_proxy(env)
        parsed = CapabilityToken.from_wire(proxy.capability_token().to_wire())
        redeemed = buf.redeem_token(parsed, domain.credentials,
                                    env.context(domain))
        assert redeemed.proxy_info()["enabled"] == proxy.proxy_info()["enabled"]

    def test_theft_fails_closed(self, env):
        buf, _, proxy = make_proxy(env)
        token = proxy.capability_token()
        thief = env.agent_domain(Rights.all())
        with pytest.raises(CapabilityConfinementError, match="granted to"):
            buf.redeem_token(token, thief.credentials, env.context(thief))

    def test_tampered_tag_rejected(self, env):
        buf, domain, proxy = make_proxy(env)
        token = proxy.capability_token()
        bad = dataclasses.replace(
            token, tag=bytes([token.tag[0] ^ 1]) + token.tag[1:]
        )
        with pytest.raises(TokenInvalidError, match="authentication"):
            buf.redeem_token(bad, domain.credentials, env.context(domain))

    def test_widened_mask_rejected(self, env):
        buf, domain, proxy = make_proxy(
            env, rights=Rights.of("Buffer.get", "Buffer.size")
        )
        token = proxy.capability_token()
        forged = dataclasses.replace(token, mask=mask_of(Buffer, ["put"]))
        with pytest.raises(TokenInvalidError):
            buf.redeem_token(forged, domain.credentials, env.context(domain))

    def test_wrong_resource_falls_back_to_policy(self, env):
        buf1, domain, proxy = make_proxy(env)
        buf2 = Buffer(RES2, OWNER, open_policy())
        token = proxy.capability_token()
        redeemed = buf2.redeem_token(
            token, domain.credentials, env.context(domain)
        )
        # Full authorization ran against buf2; the proxy is buf2's.
        assert redeemed.resource_name() == RES2
        assert redeemed.capability_token().resource == str(RES2)

    def test_wrong_interface_digest_falls_back(self, env):
        buf, domain, proxy = make_proxy(env)
        good = proxy.capability_token()
        authority = default_token_authority()
        stale_iface = authority.mint(
            grantee=good.grantee, resource=good.resource,
            resource_kind=good.resource_kind, iface_digest="0" * 16,
            mask=good.mask, ring=good.ring, confine=good.confine,
            lease=good.lease, now=env.clock.now(),
        )
        cache_before = buf.grant_cache_stats()["misses"]
        redeemed = buf.redeem_token(
            stale_iface, domain.credentials, env.context(domain)
        )
        assert redeemed.capability_token().iface_digest == good.iface_digest
        assert buf.grant_cache_stats()["misses"] >= cache_before

    def test_set_policy_stales_tokens_for_redemption(self, env):
        buf, domain, proxy = make_proxy(env)
        token = proxy.capability_token()
        buf.set_policy(SecurityPolicy(
            rules=[PolicyRule("any", "*",
                              Rights.of("Buffer.get", "Buffer.size"),
                              confine=False)]
        ))
        redeemed = buf.redeem_token(
            token, domain.credentials, env.context(domain)
        )
        # The resource-epoch bump forced a re-decide under the new policy.
        assert "put" not in redeemed.proxy_info()["enabled"]
        with pytest.raises(MethodDisabledError):
            redeemed.put("x")


class TestEpochRevocation:
    def test_holder_bump_with_unchanged_policy_re_mints(self, env):
        buf, domain, proxy = make_proxy(env)
        old = proxy.capability_token()
        default_epoch_registry().bump_holder(old.grantee)
        proxy.put("survives")  # transparent refresh, not an error
        fresh = proxy.capability_token()
        assert fresh.holder_epoch == old.holder_epoch + 1
        assert fresh.mask == old.mask

    def test_holder_bump_with_revoked_policy_fails_closed(self, env):
        buf, domain, proxy = make_proxy(env)
        token = proxy.capability_token()
        buf.set_policy(SecurityPolicy.deny_all())
        default_epoch_registry().bump_holder(token.grantee)
        with pytest.raises(ProxyRevokedError, match="revoked out from under"):
            proxy.put("x")
        # Fail-closed is sticky: the proxy is now plain revoked.
        with pytest.raises(ProxyRevokedError):
            proxy.size()

    def test_refresh_to_metered_grant_fails_closed(self, env):
        buf, domain, proxy = make_proxy(env)
        token = proxy.capability_token()
        buf.set_policy(SecurityPolicy(
            rules=[PolicyRule("any", "*", Rights.all(), metered=True,
                              confine=False)]
        ))
        default_epoch_registry().bump_holder(token.grantee)
        # A meter cannot be conjured mid-grant: re-bind through get_proxy.
        with pytest.raises(ProxyRevokedError):
            proxy.put("x")

    def test_revoke_for_stales_redeemed_copies(self, env):
        from repro.sandbox.threadgroup import enter_group

        buf, domain, proxy = make_proxy(env)
        token = proxy.capability_token()
        with enter_group(env.server_domain.thread_group):
            buf.revoke_for(domain.domain_id)
        authority = default_token_authority()
        assert not authority.is_fresh(token, env.clock.now())

    def test_revoke_all_stales_via_resource_epoch(self, env):
        from repro.sandbox.threadgroup import enter_group

        buf, domain, proxy = make_proxy(env)
        token = proxy.capability_token()
        with enter_group(env.server_domain.thread_group):
            buf.revoke_all()
        assert not default_token_authority().is_fresh(token, env.clock.now())

    def test_ttl_expiry_re_mints_transparently(self, env):
        buf, domain, proxy = make_proxy(env)
        old = proxy.capability_token()
        authority = default_token_authority()
        env.clock.advance(authority.ttl + 1.0)
        proxy.put("after ttl")
        fresh = proxy.capability_token()
        assert fresh is not old
        assert fresh.expires_at > old.expires_at
        assert proxy.get() == "after ttl"


class TestAuthority:
    def test_warm_validation_skips_the_mac(self):
        registry = EpochRegistry()
        authority = TokenAuthority(b"k" * 32, registry=registry)
        token = authority.mint(
            grantee="urn:agent:x/a", resource="urn:resource:x/r",
            resource_kind="Buffer", iface_digest="d" * 16, mask=3,
            ring=1, confine=False, lease=None, now=0.0,
        )
        authority.authenticate(token)
        assert authority.stats["validate_warm"] == 1  # mint pre-warmed it
        assert authority.stats["validate_cold"] == 0

    def test_cold_validation_verifies_and_caches(self):
        registry = EpochRegistry()
        minter = TokenAuthority(b"k" * 32, registry=registry)
        checker = TokenAuthority(b"k" * 32, registry=registry)  # same key
        token = minter.mint(
            grantee="urn:agent:x/a", resource="urn:resource:x/r",
            resource_kind="Buffer", iface_digest="d" * 16, mask=3,
            ring=1, confine=False, lease=None, now=0.0,
        )
        checker.authenticate(token)
        checker.authenticate(token)
        assert checker.stats["validate_cold"] == 1
        assert checker.stats["validate_warm"] == 1

    def test_foreign_key_rejected(self):
        registry = EpochRegistry()
        minter = TokenAuthority(b"k" * 32, registry=registry)
        other = TokenAuthority(b"j" * 32, registry=registry)
        token = minter.mint(
            grantee="urn:agent:x/a", resource="urn:resource:x/r",
            resource_kind="Buffer", iface_digest="d" * 16, mask=3,
            ring=1, confine=False, lease=None, now=0.0,
        )
        with pytest.raises(TokenInvalidError):
            other.authenticate(token)
        assert other.stats["rejected"] == 1

    def test_is_fresh_tracks_both_epochs_and_ttl(self):
        registry = EpochRegistry()
        authority = TokenAuthority(b"k" * 32, ttl=100.0, registry=registry)
        token = authority.mint(
            grantee="urn:agent:x/a", resource="urn:resource:x/r",
            resource_kind="Buffer", iface_digest="d" * 16, mask=3,
            ring=1, confine=False, lease=None, now=0.0,
        )
        assert authority.is_fresh(token, 50.0)
        registry.bump_holder("urn:agent:x/a")
        assert not authority.is_fresh(token, 50.0)
        fresh = authority.mint(
            grantee="urn:agent:x/a", resource="urn:resource:x/r",
            resource_kind="Buffer", iface_digest="d" * 16, mask=3,
            ring=1, confine=False, lease=None, now=0.0,
        )
        assert authority.is_fresh(fresh, 50.0)
        registry.bump_resource("urn:resource:x/r")
        assert not authority.is_fresh(fresh, 50.0)
        remint = authority.mint(
            grantee="urn:agent:x/a", resource="urn:resource:x/r",
            resource_kind="Buffer", iface_digest="d" * 16, mask=3,
            ring=1, confine=False, lease=None, now=0.0,
        )
        assert not authority.is_fresh(remint, 101.0)  # past the ttl

    def test_cell_cap_eviction_fails_stale_not_open(self):
        registry = EpochRegistry()
        registry._CELL_CAP = 8
        first = registry.holder_cell("holder-0")
        first.value = 7
        for i in range(1, 9):
            registry.holder_cell(f"holder-{i}")
        # The oldest cells were evicted; a re-fetch is a fresh zero cell,
        # so any token minted under the old value reads as stale.
        refetched = registry.holder_cell("holder-0")
        assert refetched is not first
        assert refetched.value == 0

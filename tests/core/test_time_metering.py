"""Elapsed-time billing measured against the virtual clock.

Section 5.5's second accounting mode: "metering the elapsed time for
method execution and then basing the charges on it."  A blocking buffer
under the simulation kernel makes the elapsed time *real* (virtual) time:
a consumer that blocks in ``get`` until a producer shows up accrues
charges for exactly the time it occupied the resource.
"""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.buffer import Buffer
from repro.core.accounting import Tariff
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.server.testbed import Testbed

PIPE = "urn:resource:site0.net/timed-pipe"
RATE = 2.0  # currency units per virtual second


@register_trusted_agent_class
class BlockedConsumer(Agent):
    def run(self):
        pipe = self.host.get_resource(PIPE)
        item = pipe.get()  # blocks ~5s of virtual time
        self.complete({"item": item})


@register_trusted_agent_class
class LateProducer(Agent):
    def run(self):
        self.host.sleep(5.0)
        pipe = self.host.get_resource(PIPE)
        pipe.put("finally")
        self.complete()


def test_blocking_time_is_billed():
    bed = Testbed(1)
    policy = SecurityPolicy(
        rules=[PolicyRule("any", "*", Rights.of("Buffer.*"), metered=True,
                          confine=False)]
    )
    pipe = Buffer(URN.parse(PIPE), URN.parse("urn:principal:site0.net/o"),
                  policy, kernel=bed.kernel,
                  tariff=Tariff.of({}, per_second=RATE))
    bed.home.install_resource(pipe)
    consumer = bed.launch(BlockedConsumer(), Rights.all(),
                          agent_local="consumer")
    bed.launch(LateProducer(), Rights.all(), agent_local="producer")
    bed.run()
    consumer_record = bed.home.domain_db.by_agent(consumer.name)
    # The consumer blocked ~5 virtual seconds inside get() at 2.0/s.
    assert consumer_record.charges == pytest.approx(5.0 * RATE, rel=0.05)


def test_instant_calls_bill_nothing():
    bed = Testbed(1)
    policy = SecurityPolicy(
        rules=[PolicyRule("any", "*", Rights.of("Buffer.*"), metered=True,
                          confine=False)]
    )
    pipe = Buffer(URN.parse(PIPE), URN.parse("urn:principal:site0.net/o"),
                  policy, kernel=bed.kernel,
                  tariff=Tariff.of({}, per_second=RATE))
    pipe.put("ready")  # direct server-side fill; no waiting needed
    bed.home.install_resource(pipe)
    consumer = bed.launch(BlockedConsumer(), Rights.all(),
                          agent_local="instant")
    bed.run()
    record = bed.home.domain_db.by_agent(consumer.name)
    assert record.charges == 0.0  # zero virtual time inside the call

"""Tests for the resource registry and the domain database."""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.core.domain_db import DomainDatabase
from repro.core.policy import SecurityPolicy
from repro.core.registry import ResourceRegistry
from repro.core.resource import ResourceImpl
from repro.credentials.rights import Rights
from repro.errors import (
    DuplicateNameError,
    PrivilegeError,
    SecurityException,
    UnknownNameError,
)
from repro.naming.urn import URN
from repro.sandbox.security_manager import SecurityManager
from repro.sandbox.threadgroup import enter_group

RES = URN.parse("urn:resource:store.com/buf")
OWNER = URN.parse("urn:principal:store.com/admin")


@pytest.fixture()
def registry(env):
    secman = SecurityManager(env.server_domain, env.audit)
    return ResourceRegistry(secman, env.clock)


def make_buffer(name=RES):
    return Buffer(name, OWNER, SecurityPolicy.allow_all())


class TestRegistry:
    def test_server_registers_and_lookup(self, env, registry):
        buf = make_buffer()
        with enter_group(env.server_domain.thread_group):
            registry.register(buf)
        assert registry.lookup(RES) is buf
        assert RES in registry
        assert registry.names() == [RES]
        assert registry.entry(RES).owner_domain == "server"

    def test_duplicate_rejected(self, env, registry):
        with enter_group(env.server_domain.thread_group):
            registry.register(make_buffer())
            with pytest.raises(DuplicateNameError):
                registry.register(make_buffer())

    def test_unknown_lookup(self, registry):
        with pytest.raises(UnknownNameError):
            registry.lookup(RES)

    def test_unmanaged_registration_denied(self, registry):
        with pytest.raises(PrivilegeError):
            registry.register(make_buffer())

    def test_agent_needs_system_right(self, env, registry):
        privileged = env.agent_domain(Rights.of("system.resource_register"))
        plain = env.agent_domain(Rights.of("Buffer.*"))
        other = URN.parse("urn:resource:store.com/buf2")
        with enter_group(privileged.thread_group):
            registry.register(make_buffer())  # allowed: installer agent
        with enter_group(plain.thread_group):
            with pytest.raises(PrivilegeError):
                registry.register(make_buffer(other))

    def test_non_access_protocol_resource_rejected(self, env, registry):
        class Naked(ResourceImpl):
            pass

        with enter_group(env.server_domain.thread_group):
            with pytest.raises(SecurityException, match="AccessProtocol"):
                registry.register(Naked(RES, OWNER))

    def test_unregister_by_owner_domain(self, env, registry):
        installer = env.agent_domain(Rights.of("system.resource_register"))
        with enter_group(installer.thread_group):
            registry.register(make_buffer())
            registry.unregister(RES)
        assert RES not in registry

    def test_unregister_by_server_always_allowed(self, env, registry):
        installer = env.agent_domain(Rights.of("system.resource_register"))
        with enter_group(installer.thread_group):
            registry.register(make_buffer())
        with enter_group(env.server_domain.thread_group):
            registry.unregister(RES)

    def test_unregister_by_stranger_denied(self, env, registry):
        installer = env.agent_domain(Rights.of("system.resource_register"))
        stranger = env.agent_domain(Rights.all())
        with enter_group(installer.thread_group):
            registry.register(make_buffer())
        with enter_group(stranger.thread_group):
            with pytest.raises(PrivilegeError, match="may not unregister"):
                registry.unregister(RES)
        assert RES in registry


class TestDomainDatabase:
    def admit(self, env, db, domain):
        with enter_group(env.server_domain.thread_group):
            return db.admit(domain, domain.credentials, "urn:server:umn.edu/home")

    def test_admit_and_query(self, env):
        db = DomainDatabase(env.clock)
        domain = env.agent_domain(Rights.all())
        record = self.admit(env, db, domain)
        assert db.get(domain.domain_id) is record
        assert db.by_agent(record.agent) is record
        assert record.status == "running"
        assert record.owner == env.owner
        assert len(db) == 1
        assert domain.domain_id in db

    def test_writes_denied_outside_server(self, env):
        db = DomainDatabase(env.clock)
        domain = env.agent_domain(Rights.all())
        with pytest.raises(PrivilegeError):
            db.admit(domain, domain.credentials, "home")
        with enter_group(domain.thread_group):
            with pytest.raises(PrivilegeError):
                db.admit(domain, domain.credentials, "home")

    def test_privileged_block_allows_writes(self, env):
        db = DomainDatabase(env.clock)
        domain = env.agent_domain(Rights.all())
        with db.privileged():
            db.admit(domain, domain.credentials, "home")
        assert len(db) == 1

    def test_status_transitions(self, env):
        db = DomainDatabase(env.clock)
        domain = env.agent_domain(Rights.all())
        self.admit(env, db, domain)
        with db.privileged():
            db.set_status(domain.domain_id, "departed")
            assert db.residents() == []
            with pytest.raises(ValueError):
                db.set_status(domain.domain_id, "abducted")

    def test_charges_accumulate(self, env):
        db = DomainDatabase(env.clock)
        domain = env.agent_domain(Rights.all())
        self.admit(env, db, domain)
        with db.privileged():
            db.add_charge(domain.domain_id, 2.5)
            db.add_charge(domain.domain_id, 1.0)
            with pytest.raises(ValueError):
                db.add_charge(domain.domain_id, -1.0)
        assert db.get(domain.domain_id).charges == 3.5

    def test_remove(self, env):
        db = DomainDatabase(env.clock)
        domain = env.agent_domain(Rights.all())
        self.admit(env, db, domain)
        with db.privileged():
            db.remove(domain.domain_id)
            with pytest.raises(UnknownNameError):
                db.remove(domain.domain_id)
        assert len(db) == 0

    def test_unknown_queries(self, env):
        db = DomainDatabase(env.clock)
        with pytest.raises(UnknownNameError):
            db.get("ghost")
        with pytest.raises(UnknownNameError):
            db.by_agent(URN.parse("urn:agent:x.com/ghost"))

"""Tests for the FileStore resource, including traversal defences."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.filestore import FileStore
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import SecurityException, UnknownNameError
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group

OWNER = URN.parse("urn:principal:host.net/admin")
NAME = URN.parse("urn:resource:host.net/exports")


def make_store(**kw):
    return FileStore(NAME, OWNER, SecurityPolicy.allow_all(confine=False), **kw)


class TestBasics:
    def test_read_write_roundtrip(self):
        store = make_store()
        store.write("docs/readme.txt", "hello")
        assert store.read("docs/readme.txt") == "hello"
        assert store.exists("docs/readme.txt")
        assert not store.exists("docs/other.txt")

    def test_initial_contents(self):
        store = make_store(initial={"a/b.txt": "x", "c.txt": "y"})
        assert store.read("a/b.txt") == "x"
        assert store.store_stats() == {"files": 2, "bytes": 2}

    def test_missing_file(self):
        with pytest.raises(UnknownNameError):
            make_store().read("ghost.txt")

    def test_delete(self):
        store = make_store(initial={"a.txt": "1"})
        assert store.delete("a.txt")
        assert not store.delete("a.txt")

    def test_list_dir(self):
        store = make_store(initial={
            "docs/a.txt": "", "docs/sub/b.txt": "", "top.txt": "",
        })
        assert store.list_dir() == ["docs", "top.txt"]
        assert store.list_dir("docs") == ["a.txt", "sub"]
        assert store.list_dir("docs/sub") == ["b.txt"]
        assert store.list_dir("nowhere") == []

    def test_overwrite(self):
        store = make_store()
        store.write("f", "one")
        store.write("f", "two")
        assert store.read("f") == "two"
        assert store.store_stats()["files"] == 1


class TestTraversalDefence:
    @pytest.mark.parametrize(
        "path",
        ["/etc/passwd", "../outside", "a/../../outside", "..", ".",
         "a\\b", "a\x00b", "", 42],
    )
    def test_hostile_paths_rejected(self, path):
        store = make_store(initial={"safe.txt": "x"})
        with pytest.raises(SecurityException):
            store.read(path)
        with pytest.raises(SecurityException):
            store.write(path, "data")

    def test_normalization_is_consistent(self):
        store = make_store()
        store.write("a/./b.txt", "via dot")
        assert store.read("a/b.txt") == "via dot"
        store.write("a/c/../b.txt", "via updir inside")
        assert store.read("a/b.txt") == "via updir inside"

    @settings(max_examples=100, deadline=None)
    @given(st.text(min_size=1, max_size=30))
    def test_property_no_path_reads_outside(self, path):
        """Whatever the path, read either raises or hits a stored file."""
        store = make_store(initial={"only.txt": "content"})
        try:
            result = store.read(path)
        except (SecurityException, UnknownNameError):
            return
        assert result == "content"


class TestResourceLimits:
    def test_file_size_limit(self):
        store = make_store(max_file_bytes=10)
        with pytest.raises(SecurityException, match="byte limit"):
            store.write("big.txt", "x" * 11)

    def test_file_count_limit(self):
        store = make_store(max_files=2)
        store.write("a", "")
        store.write("b", "")
        with pytest.raises(SecurityException, match="full"):
            store.write("c", "")
        store.write("a", "overwrite still fine")

    def test_non_string_content(self):
        with pytest.raises(SecurityException):
            make_store().write("f", b"bytes")


class TestThroughProxies:
    def test_read_only_grant(self, env):
        policy = SecurityPolicy(
            rules=[PolicyRule("any", "*",
                              Rights.of("FileStore.read", "FileStore.exists",
                                        "FileStore.list_dir"))]
        )
        store = FileStore(NAME, OWNER, policy, initial={"data.txt": "secret"})
        domain = env.agent_domain(Rights.all())
        proxy = store.get_proxy(domain.credentials, env.context(domain))
        with enter_group(domain.thread_group):
            assert proxy.read("data.txt") == "secret"
            from repro.errors import MethodDisabledError

            with pytest.raises(MethodDisabledError):
                proxy.write("data.txt", "defaced")
            with pytest.raises(MethodDisabledError):
                proxy.delete("data.txt")
        assert store.read("data.txt") == "secret"

    def test_dropbox_grant_write_without_read(self, env):
        policy = SecurityPolicy(
            rules=[PolicyRule("any", "*", Rights.of("FileStore.write"))]
        )
        store = FileStore(NAME, OWNER, policy)
        domain = env.agent_domain(Rights.all())
        proxy = store.get_proxy(domain.credentials, env.context(domain))
        with enter_group(domain.thread_group):
            proxy.write("inbox/report.txt", "submitted")
            from repro.errors import MethodDisabledError

            with pytest.raises(MethodDisabledError):
                proxy.read("inbox/report.txt")
        assert store.read("inbox/report.txt") == "submitted"

"""Tests for the ready-made application resources."""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer, BufferEmpty, BufferFull
from repro.apps.database import QueryStore
from repro.apps.marketplace import OutOfStock, QuoteService
from repro.core.policy import SecurityPolicy
from repro.core.resource import exported_methods
from repro.errors import UnknownNameError
from repro.naming.urn import URN
from repro.sim.kernel import Kernel
from repro.sim.threads import SimThread

OWNER = URN.parse("urn:principal:store.com/admin")


def urn(local):
    return URN.parse(f"urn:resource:store.com/{local}")


class TestBufferDirectMode:
    def test_fifo(self):
        buf = Buffer(urn("b1"), OWNER, SecurityPolicy.allow_all())
        buf.put(1)
        buf.put(2)
        assert buf.get() == 1
        assert buf.get() == 2

    def test_empty_raises(self):
        buf = Buffer(urn("b2"), OWNER, SecurityPolicy.allow_all())
        with pytest.raises(BufferEmpty):
            buf.get()

    def test_full_raises(self):
        buf = Buffer(urn("b3"), OWNER, SecurityPolicy.allow_all(), capacity=1)
        buf.put("only")
        with pytest.raises(BufferFull):
            buf.put("overflow")

    def test_try_variants(self):
        buf = Buffer(urn("b4"), OWNER, SecurityPolicy.allow_all(), capacity=1)
        assert buf.try_put("a")
        assert not buf.try_put("b")
        assert buf.try_get() == (True, "a")
        assert buf.try_get() == (False, None)

    def test_size_and_capacity(self):
        buf = Buffer(urn("b5"), OWNER, SecurityPolicy.allow_all(), capacity=3)
        assert buf.size() == 0 and buf.buffer_capacity() == 3
        buf.put(1)
        assert buf.size() == 1

    def test_interface_exports(self):
        assert {"put", "get", "try_put", "try_get", "size"} <= set(
            exported_methods(Buffer)
        )


class TestBufferSimMode:
    def test_blocking_producer_consumer(self):
        kernel = Kernel()
        buf = Buffer(urn("b6"), OWNER, SecurityPolicy.allow_all(),
                     capacity=2, kernel=kernel)
        got: list[int] = []

        def producer():
            for i in range(5):
                buf.put(i)

        def consumer():
            kernel.current_thread().sleep(1.0)
            while len(got) < 5:
                got.append(buf.get())

        SimThread(kernel, producer, "p").start()
        SimThread(kernel, consumer, "c").start()
        kernel.run()
        assert got == [0, 1, 2, 3, 4]


class TestQueryStore:
    @pytest.fixture()
    def store(self):
        return QueryStore(
            urn("db"), OWNER, SecurityPolicy.allow_all(),
            initial={"item-1": 10, "item-2": 20, "other-9": 90},
        )

    def test_lookup(self, store):
        assert store.lookup("item-1") == 10
        with pytest.raises(UnknownNameError):
            store.lookup("ghost")

    def test_query_glob(self, store):
        assert store.query("item-*") == [("item-1", 10), ("item-2", 20)]
        assert store.query("*") == [("item-1", 10), ("item-2", 20), ("other-9", 90)]
        assert store.query("nope-*") == []

    def test_contains(self, store):
        assert store.contains("item-1")
        assert not store.contains("ghost")

    def test_insert_delete(self, store):
        store.insert("new", 5)
        assert store.lookup("new") == 5
        assert store.delete("new")
        assert not store.delete("new")

    def test_stats(self, store):
        store.lookup("item-1")
        store.query("*")
        store.insert("x", 1)
        stats = store.stats()
        assert stats["records"] == 4
        assert stats["reads"] == 2
        assert stats["writes"] == 1


class TestQuoteService:
    @pytest.fixture()
    def shop(self):
        return QuoteService(
            urn("shop"), OWNER, SecurityPolicy.allow_all(),
            catalog={"widget": (9.99, 2), "gadget": (25.0, 0)},
        )

    def test_quote_and_stock(self, shop):
        assert shop.quote("widget") == 9.99
        assert shop.in_stock("widget")
        assert not shop.in_stock("gadget")
        assert shop.list_items() == ["gadget", "widget"]

    def test_unknown_item(self, shop):
        with pytest.raises(UnknownNameError):
            shop.quote("unobtainium")

    def test_buy_decrements_stock(self, shop):
        assert shop.buy("widget") == 9.99
        assert shop.buy("widget") == 9.99
        with pytest.raises(OutOfStock):
            shop.buy("widget")

    def test_buy_out_of_stock(self, shop):
        with pytest.raises(OutOfStock):
            shop.buy("gadget")

    def test_restock_and_reprice(self, shop):
        shop.restock("gadget", 5, price=19.99)
        assert shop.in_stock("gadget")
        assert shop.quote("gadget") == 19.99
        shop.restock("brand-new", 1, price=3.0)
        assert shop.quote("brand-new") == 3.0
        with pytest.raises(ValueError):
            shop.restock("widget", -1)

    def test_sales_report(self, shop):
        shop.buy("widget")
        shop.buy("widget")
        assert shop.sales_report() == {"widget": pytest.approx(19.98)}

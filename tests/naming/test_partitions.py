"""Seeded partition suite: the replicated directory under adversity.

CI replays this file under several ``REPRO_STRESS_SEED`` values (see the
``naming-partitions`` job); every assertion here is an *invariant* that
must hold for any seed, not a golden trace.  The conservation oracle is
:class:`~repro.naming.replicated.DirectoryOracle`: every successfully
committed registration must be resolvable somewhere after the fault
window heals and anti-entropy has run, and the replica groups must
converge (no divergences).
"""

from __future__ import annotations

import pytest

from repro.errors import NetworkError, ReproError
from repro.naming.urn import URN
from repro.sim.threads import SimThread


def partition_groups(w, shard):
    """(majority of ``shard``'s replicas, everyone else they talk to)."""
    cut = list(w.ns_ring.replicas(shard)[:2])
    rest = [s.name for s in w.servers] + [w.ns_ring.replicas(shard)[2]]
    return cut, rest


def fault_kinds(w):
    return [kind for _, kind, _ in w.faults().log]


def assert_conserved(w, names):
    """Post-heal conservation: committed => resolvable and replicated."""
    for name in names:
        assert w.name_service.contains(name), f"{name} lost"
        assert w.name_service.replicas_holding(name) == 3, f"{name} thin"
    assert w.name_service.divergences() == []


# -- the schedule API --------------------------------------------------------


def test_named_partition_validation(world):
    w = world(1)
    faults = w.faults()
    a, b = w.servers[0].name, w.ns_ring.nodes()[0]
    assert faults.named_partition("win", [a], [b], at=1.0) == 1
    with pytest.raises(ValueError, match="already scheduled"):
        faults.named_partition("win", [a], [b], at=2.0)
    # Healing a partition that was never scheduled is a logged no-op,
    # not an error (idempotent heals: recovery orchestration may issue
    # belt-and-braces heals without tracking which fired).
    faults.heal_partition("nope", at=2.0)
    assert any(
        kind == "partition_heal_noop:nope" for _, kind, _ in faults.log
    )
    with pytest.raises(ValueError, match="after the partition"):
        faults.named_partition("w2", [a], [b], at=5.0, heal_at=5.0)


# -- partition window --------------------------------------------------------


def test_partition_begins_heals_and_degrades_reads(world):
    w = world(2, ns_anti_entropy=5.0)
    shard = w.ns_ring.shard_ids()[0]
    cut, rest = partition_groups(w, shard)
    links = w.faults().named_partition(
        "exp", cut, rest, at=10.0, heal_at=30.0
    )
    assert links == len(cut) * len(rest)
    client = w.home.name_service
    name = next(
        n for n in (URN.parse(f"urn:agent:x.net/pw{i}") for i in range(64))
        if w.ns_ring.shard_for(n) == shard
    )
    observed = {}

    def driver():
        thread = w.kernel.current_thread()
        client.register(name, w.home.name)
        thread.sleep(15.0)  # t=15+: mid-window
        observed["window"] = dict(client.lookup(name).attributes)
        thread.sleep(25.0)  # t=40+: healed, breakers recovered
        observed["healed"] = dict(client.lookup(name).attributes)

    SimThread(w.kernel, driver, "driver").start()
    w.run(until=90.0)
    kinds = fault_kinds(w)
    assert "partition_begin:exp" in kinds
    assert "partition_heal:exp" in kinds
    # Mid-window: only the minority replica answers — stale-but-flagged.
    assert observed["window"]["ns.stale"] is True
    assert observed["window"]["ns.replies"] == 1
    # Post-heal: a clean quorum read again.
    assert "ns.stale" not in observed["healed"]
    assert_conserved(w, [name])


def test_partition_window_conserves_every_committed_registration(world):
    w = world(2, ns_anti_entropy=5.0)
    shard = w.ns_ring.shard_ids()[0]
    cut, rest = partition_groups(w, shard)
    w.faults().named_partition("maj", cut, rest, at=15.0, heal_at=35.0)
    client = w.home.name_service
    committed, refused = [], []

    def driver():
        thread = w.kernel.current_thread()
        for i in range(30):
            name = URN.parse(f"urn:agent:x.net/cw{i}")
            try:
                client.register(name, w.home.name)
                committed.append(name)
            except (NetworkError, ReproError):
                refused.append(name)
            thread.sleep(2.0)

    SimThread(w.kernel, driver, "driver").start()
    w.run(until=150.0)
    # Commits happened, and refusals only ever hit the partitioned shard
    # (the healthy shard's quorum was never interrupted).
    assert committed
    assert all(w.ns_ring.shard_for(n) == shard for n in refused)
    # No name was both refused to the caller and silently committed: a
    # refused register never reached a write quorum, so it must not
    # resolve afterwards either.
    for name in refused:
        assert not w.name_service.contains(name)
    assert_conserved(w, committed)


# -- replica crash window ----------------------------------------------------


def test_replica_crash_window_keeps_the_directory_available(world):
    w = world(2, ns_anti_entropy=5.0)
    shard = w.ns_ring.shard_ids()[0]
    victim = w.ns_host(w.ns_ring.replicas(shard)[0])
    w.faults().crash(victim, 10.0, restart_at=40.0)
    client = w.home.name_service
    committed, failed = [], []

    def driver():
        thread = w.kernel.current_thread()
        for i in range(20):
            name = URN.parse(f"urn:agent:x.net/kw{i}")
            try:
                client.register(name, w.home.name)
                committed.append(name)
            except (NetworkError, ReproError) as exc:
                failed.append((name, exc))
            thread.sleep(3.0)

    SimThread(w.kernel, driver, "driver").start()
    w.run(until=150.0)
    # One crashed replica of three never costs write availability.
    assert failed == []
    assert len(committed) == 20
    assert victim.stats["crashes"] == 1
    assert victim.stats["restarts"] == 1
    kinds = fault_kinds(w)
    assert "crashes" in kinds and "restarts" in kinds
    # Writes committed during the outage reached the victim afterwards
    # (hinted handoff delivered by sweeps, or the catch-up digest pull).
    assert_conserved(w, committed)


# -- loss burst --------------------------------------------------------------


def test_loss_burst_degrades_to_hints_then_repairs(world):
    w = world(2, ns_anti_entropy=5.0)
    shard = w.ns_ring.shard_ids()[0]
    lossy = w.ns_ring.replicas(shard)[1]
    for server in w.servers:
        w.faults().loss_burst(
            server.name, lossy, at=10.0, duration=20.0, loss_rate=0.3
        )
    client = w.home.name_service
    committed, failed = [], []

    def driver():
        thread = w.kernel.current_thread()
        for i in range(12):
            name = URN.parse(f"urn:agent:x.net/lw{i}")
            try:
                client.register(name, w.home.name)
                committed.append(name)
            except (NetworkError, ReproError) as exc:
                failed.append((name, exc))
            # Earlier names stay resolvable right through the burst: the
            # two clean replicas always form a read quorum.
            if committed:
                looked = client.lookup(committed[0])
                assert looked.location == w.home.name
            thread.sleep(2.0)

    SimThread(w.kernel, driver, "driver").start()
    w.run(until=150.0)
    kinds = fault_kinds(w)
    assert "loss_burst_begin" in kinds and "loss_burst_end" in kinds
    assert failed == []
    assert len(committed) == 12
    assert_conserved(w, committed)

"""NameService thread-safety under real concurrency."""

from __future__ import annotations

import threading

from repro.naming.registry import NameService
from repro.naming.urn import URN


def test_concurrent_registrations_no_corruption():
    ns = NameService()
    n_threads, per_thread = 8, 100
    tokens: dict[str, str] = {}
    lock = threading.Lock()
    barrier = threading.Barrier(n_threads)

    def worker(base: int) -> None:
        barrier.wait()
        local = {}
        for i in range(per_thread):
            name = URN.parse(f"urn:agent:x.net/t{base}-{i}")
            local[str(name)] = ns.register(name, f"server-{base}")
        with lock:
            tokens.update(local)

    threads = [threading.Thread(target=worker, args=(b,)) for b in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(ns) == n_threads * per_thread
    assert len(set(tokens.values())) == len(tokens)  # tokens unique
    # Every registration is intact and owner-token-updatable.
    for name_str, token in tokens.items():
        name = URN.parse(name_str)
        ns.relocate(name, token, "relocated")
        assert ns.lookup(name).location == "relocated"


def test_lookup_does_not_alias_registry_state():
    """A looked-up record must be a snapshot: mutating its attributes
    dict must neither edit the registry behind the lock nor see later
    registry-side updates (the lock-discipline hole the audit found)."""
    ns = NameService()
    name = URN.parse("urn:agent:x.net/aliased")
    ns.register(name, "here", {"k": 1})
    record = ns.lookup(name)
    record.attributes["k"] = 999
    record.attributes["evil"] = True
    assert ns.lookup(name).attributes == {"k": 1}
    # Two lookups never share a dict either.
    assert ns.lookup(name).attributes is not ns.lookup(name).attributes


def test_concurrent_mixed_mutation_keeps_records_and_owners_aligned():
    """Register/relocate/unregister churn from many threads: ``_records``
    and ``_owners`` must stay keyed identically (the invariant the lock
    protects), and every surviving name must still be owner-updatable."""
    ns = NameService()
    n_threads, cycles = 6, 50
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []

    def churn(base: int) -> None:
        barrier.wait()
        try:
            for i in range(cycles):
                name = URN.parse(f"urn:agent:x.net/churn{base}-{i % 5}")
                try:
                    token = ns.register(name, f"server-{base}")
                except Exception:
                    continue  # another cycle of this thread owns it
                ns.relocate(name, token, f"moved-{base}-{i}")
                ns.lookup(name)
                if i % 2:
                    ns.unregister(name, token)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=churn, args=(b,))
               for b in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    with ns._lock:
        assert set(ns._records) == set(ns._owners)
        survivors = dict(ns._owners)
    assert len(ns) == len(survivors)
    for name, token in survivors.items():
        ns.relocate(name, token, "final")
        assert ns.lookup(name).location == "final"


def test_concurrent_relocations_last_writer_wins_consistently():
    ns = NameService()
    name = URN.parse("urn:agent:x.net/contended")
    token = ns.register(name, "start")
    barrier = threading.Barrier(4)

    def mover(dest: str) -> None:
        barrier.wait()
        for _ in range(200):
            ns.relocate(name, token, dest)

    threads = [threading.Thread(target=mover, args=(f"loc-{i}",))
               for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # No torn state: the final location is one of the writers' values.
    assert ns.lookup(name).location in {f"loc-{i}" for i in range(4)}

"""NameService thread-safety under real concurrency."""

from __future__ import annotations

import threading

from repro.naming.registry import NameService
from repro.naming.urn import URN


def test_concurrent_registrations_no_corruption():
    ns = NameService()
    n_threads, per_thread = 8, 100
    tokens: dict[str, str] = {}
    lock = threading.Lock()
    barrier = threading.Barrier(n_threads)

    def worker(base: int) -> None:
        barrier.wait()
        local = {}
        for i in range(per_thread):
            name = URN.parse(f"urn:agent:x.net/t{base}-{i}")
            local[str(name)] = ns.register(name, f"server-{base}")
        with lock:
            tokens.update(local)

    threads = [threading.Thread(target=worker, args=(b,)) for b in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(ns) == n_threads * per_thread
    assert len(set(tokens.values())) == len(tokens)  # tokens unique
    # Every registration is intact and owner-token-updatable.
    for name_str, token in tokens.items():
        name = URN.parse(name_str)
        ns.relocate(name, token, "relocated")
        assert ns.lookup(name).location == "relocated"


def test_concurrent_relocations_last_writer_wins_consistently():
    ns = NameService()
    name = URN.parse("urn:agent:x.net/contended")
    token = ns.register(name, "start")
    barrier = threading.Barrier(4)

    def mover(dest: str) -> None:
        barrier.wait()
        for _ in range(200):
            ns.relocate(name, token, dest)

    threads = [threading.Thread(target=mover, args=(f"loc-{i}",))
               for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # No torn state: the final location is one of the writers' values.
    assert ns.lookup(name).location in {f"loc-{i}" for i in range(4)}

"""Tests for the name service."""

from __future__ import annotations

import pytest

from repro.errors import DuplicateNameError, NamingError, UnknownNameError
from repro.naming.registry import NameService
from repro.naming.urn import URN

AGENT = URN.parse("urn:agent:umn.edu/shopper")
SERVER_A = "urn:server:umn.edu/a"
SERVER_B = "urn:server:store.com/b"


@pytest.fixture()
def ns() -> NameService:
    return NameService()


def test_register_and_lookup(ns):
    ns.register(AGENT, SERVER_A, {"owner": "anand"})
    rec = ns.lookup(AGENT)
    assert rec.location == SERVER_A
    assert rec.attributes == {"owner": "anand"}
    assert ns.contains(AGENT)
    assert len(ns) == 1


def test_duplicate_registration_rejected(ns):
    ns.register(AGENT, SERVER_A)
    with pytest.raises(DuplicateNameError):
        ns.register(AGENT, SERVER_B)


def test_unknown_lookup(ns):
    with pytest.raises(UnknownNameError):
        ns.lookup(AGENT)


def test_non_urn_rejected(ns):
    with pytest.raises(NamingError):
        ns.register("urn:agent:a/b", SERVER_A)  # type: ignore[arg-type]


def test_relocate_with_valid_token(ns):
    token = ns.register(AGENT, SERVER_A)
    ns.relocate(AGENT, token, SERVER_B)
    assert ns.lookup(AGENT).location == SERVER_B


def test_relocate_with_bad_token_rejected(ns):
    ns.register(AGENT, SERVER_A)
    with pytest.raises(NamingError, match="bad owner token"):
        ns.relocate(AGENT, "nstoken-999", SERVER_B)
    assert ns.lookup(AGENT).location == SERVER_A


def test_unregister(ns):
    token = ns.register(AGENT, SERVER_A)
    ns.unregister(AGENT, token)
    assert not ns.contains(AGENT)
    with pytest.raises(UnknownNameError):
        ns.unregister(AGENT, token)


def test_unregister_bad_token_rejected(ns):
    ns.register(AGENT, SERVER_A)
    with pytest.raises(NamingError):
        ns.unregister(AGENT, "wrong")


def test_names_filtered_by_kind(ns):
    server = URN.parse("urn:server:umn.edu/a")
    ns.register(AGENT, SERVER_A)
    ns.register(server, SERVER_A)
    assert set(ns.names()) == {AGENT, server}
    assert ns.names(kind="agent") == [AGENT]
    assert ns.names(kind="server") == [server]


def test_tokens_are_unique(ns):
    other = URN.parse("urn:agent:umn.edu/other")
    t1 = ns.register(AGENT, SERVER_A)
    t2 = ns.register(other, SERVER_A)
    assert t1 != t2

"""The consistent-hash ring: deterministic placement of names on shards."""

from __future__ import annotations

import pytest

from repro.errors import NamingError
from repro.naming.shard import HashRing, bucket_of, stable_hash
from repro.naming.urn import URN

THREE_SHARDS = {
    "alpha": ("node-a1", "node-a2", "node-a3"),
    "beta": ("node-b1", "node-b2", "node-b3"),
    "gamma": ("node-c1", "node-c2", "node-c3"),
}


def names(n: int) -> list[str]:
    return [f"urn:agent:x.net/agent-{i}" for i in range(n)]


# -- the hash primitives -----------------------------------------------------


def test_stable_hash_is_stable_and_64_bit():
    assert stable_hash("hello") == stable_hash("hello")
    assert stable_hash("hello") != stable_hash("hello!")
    for text in names(50):
        assert 0 <= stable_hash(text) < (1 << 64)


def test_bucket_of_partitions_deterministically():
    for text in names(50):
        bucket = bucket_of(text, 16)
        assert 0 <= bucket < 16
        assert bucket_of(text, 16) == bucket  # stable across calls
    with pytest.raises(NamingError):
        bucket_of("x", 0)


def test_bucket_of_is_not_the_ring_hash():
    # Digest bucketing is a *different* projection than ring placement:
    # reusing the ring hash would correlate shard and bucket.
    assert any(
        bucket_of(t, 16) != stable_hash(t) % 16 for t in names(50)
    )


# -- ring construction -------------------------------------------------------


def test_ring_rejects_degenerate_configuration():
    with pytest.raises(NamingError):
        HashRing({})
    with pytest.raises(NamingError):
        HashRing({"s": ()})
    with pytest.raises(NamingError):
        HashRing({"s": ("n1", "n1")})
    with pytest.raises(NamingError):
        HashRing({"s": ("n1",)}, points_per_shard=0)


def test_ring_introspection():
    ring = HashRing(THREE_SHARDS)
    assert len(ring) == 3
    assert ring.shard_ids() == ("alpha", "beta", "gamma")
    assert ring.replicas("beta") == ("node-b1", "node-b2", "node-b3")
    assert ring.shards_of("node-b2") == ("beta",)
    assert ring.shards_of("stranger") == ()
    assert set(ring.nodes()) == {
        node for group in THREE_SHARDS.values() for node in group
    }
    with pytest.raises(NamingError):
        ring.replicas("nope")


def test_replica_preference_order_is_preserved():
    ring = HashRing({"s": ("z-last", "a-first", "m-mid")})
    assert ring.replicas("s") == ("z-last", "a-first", "m-mid")
    assert ring.replicas_for("anything") == ("z-last", "a-first", "m-mid")


# -- placement ---------------------------------------------------------------


def test_placement_is_deterministic_across_ring_instances():
    one, two = HashRing(THREE_SHARDS), HashRing(dict(THREE_SHARDS))
    for name in names(200):
        assert one.shard_for(name) == two.shard_for(name)
        assert one.replicas_for(name) == two.replicas_for(name)


def test_placement_accepts_urns():
    ring = HashRing(THREE_SHARDS)
    name = URN.parse("urn:agent:x.net/by-urn")
    assert ring.shard_for(name) == ring.shard_for(str(name))


def test_placement_spreads_names_over_shards():
    ring = HashRing(THREE_SHARDS)
    counts = {shard: 0 for shard in ring.shard_ids()}
    for name in names(600):
        counts[ring.shard_for(name)] += 1
    # Loose balance: every shard gets real load, none dominates.
    for shard, count in counts.items():
        assert count > 60, f"shard {shard} starved: {counts}"
        assert count < 400, f"shard {shard} dominates: {counts}"


def test_adding_a_shard_only_moves_names_to_the_new_shard():
    before = HashRing(THREE_SHARDS)
    after = HashRing({**THREE_SHARDS, "delta": ("node-d1",)})
    moved = 0
    for name in names(600):
        old, new = before.shard_for(name), after.shard_for(name)
        if old != new:
            assert new == "delta"  # the consistent-hashing contract
            moved += 1
    # The new shard took ~1/4 of the space — some names moved, most stayed.
    assert 0 < moved < 300

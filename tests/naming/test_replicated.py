"""The replicated directory: versioned records, quorums, repair, failover."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.credentials.rights import Rights
from repro.errors import (
    DuplicateNameError,
    NamingError,
    NetworkError,
    ReproError,
    UnknownNameError,
)
from repro.naming.replicated import (
    SHARD_APP_KIND,
    ReplicatedNameClient,
    ShardStore,
    VersionedRecord,
)
from repro.naming.shard import stable_hash
from repro.naming.urn import URN
from repro.server.testbed import Testbed
from repro.sim.threads import SimThread
from repro.util.serialization import decode, encode


def record(name="urn:agent:x.net/r", *, location="here", token="t-1",
           epoch=1, seq=1, tombstone=False, stamped=0.0, **attributes):
    return VersionedRecord(
        name=URN.parse(name) if isinstance(name, str) else name,
        location=location,
        attributes=attributes,
        token=token,
        epoch=epoch,
        seq=seq,
        tombstone=tombstone,
        stamped=stamped,
    )


# -- versioned records -------------------------------------------------------


def test_record_validation():
    with pytest.raises(NamingError):
        record(epoch=0)
    with pytest.raises(NamingError):
        record(seq=0)
    with pytest.raises(NamingError):
        record(token="")
    with pytest.raises(NamingError):
        VersionedRecord(
            name="not-a-urn", location="x", attributes={},  # type: ignore[arg-type]
            token="t", epoch=1, seq=1,
        )


def test_record_version_total_order():
    assert record(epoch=2, seq=1).version > record(epoch=1, seq=9).version
    assert record(seq=2).version > record(seq=1).version
    # Same (epoch, seq): the token tiebreak is deterministic.
    a, b = record(token="t-a"), record(token="t-b")
    assert (a.version > b.version) != (b.version > a.version)


def test_record_canonical_erases_attribute_order():
    one = record(k1=1, k2=2)
    two = VersionedRecord(
        name=one.name, location=one.location, attributes={"k2": 2, "k1": 1},
        token=one.token, epoch=one.epoch, seq=one.seq,
    )
    assert one.canonical() == two.canonical()


def test_record_serialization_roundtrip():
    original = record(epoch=3, seq=7, tombstone=True, stamped=12.5, k="v")
    copy = decode(encode(original))
    assert isinstance(copy, VersionedRecord)
    assert copy.canonical() == original.canonical()


# -- the shard store ---------------------------------------------------------


def test_store_merge_is_version_ordered():
    store = ShardStore()
    assert store.merge(record(seq=2)) is True
    assert store.merge(record(seq=1)) is False  # older: ignored
    assert store.merge(record(seq=2)) is False  # equal: ignored
    assert store.merge(record(seq=3)) is True
    assert store.get(URN.parse("urn:agent:x.net/r")).seq == 3


def test_store_put_checked_owner_semantics():
    store = ShardStore()
    assert store.put_checked(record(seq=1)) is True
    # Same token: newer applies, retransmits are idempotent acks.
    assert store.put_checked(record(seq=2)) is True
    assert store.put_checked(record(seq=2)) is False
    assert store.put_checked(record(seq=1)) is False
    # Different token, same epoch: a racing registration is rejected...
    with pytest.raises(DuplicateNameError):
        store.put_checked(record(token="t-other", seq=1))
    # ...and a forged update token is refused outright.
    with pytest.raises(NamingError, match="bad owner token"):
        store.put_checked(record(token="t-other", seq=3))
    # A later epoch is a committed re-registration: accepted.
    assert store.put_checked(record(token="t-other", epoch=2, seq=1)) is True
    assert store.get(URN.parse("urn:agent:x.net/r")).token == "t-other"


def test_store_len_and_names_skip_tombstones():
    store = ShardStore()
    store.merge(record("urn:agent:x.net/live"))
    store.merge(record("urn:agent:x.net/dead", tombstone=True))
    assert len(store) == 1
    assert store.names() == [URN.parse("urn:agent:x.net/live")]
    assert len(store.records()) == 2  # tombstones still replicate


def test_store_digests_agree_independent_of_insertion_order():
    records = [record(f"urn:agent:x.net/d{i}", seq=i + 1) for i in range(20)]
    one, two = ShardStore(), ShardStore()
    for r in records:
        one.merge(r)
    for r in reversed(records):
        two.merge(r)
    assert one.digests(8) == two.digests(8)
    two.merge(record("urn:agent:x.net/d3", seq=99))
    assert one.digests(8) != two.digests(8)


# -- world plumbing ----------------------------------------------------------


@register_trusted_agent_class
class ReplicatedHopper(Agent):
    def __init__(self) -> None:
        self.dest = ""

    def run(self):
        if self.dest and self.host.server_name() != self.dest:
            dest, self.dest = self.dest, ""
            self.go(dest, "run")
        self.complete()


def make_bed(**kw):
    kw.setdefault("ns_timeout", 2.0)
    return Testbed(2, replicated_name_service=True, **kw)


def drive(bed, body, *, until=None):
    """Run ``body`` on a simulated thread and drain the world."""
    SimThread(bed.kernel, body, "ns-test-client").start()
    bed.run(until=until)


def isolate(bed, node):
    """Cut every link the directory node has (full isolation)."""
    for server in bed.servers:
        bed.network.set_link_state(node, server.name, False)
    for peer in bed.ns_host(node).peers:
        bed.network.set_link_state(node, peer, False)


# -- testbed wiring ----------------------------------------------------------


def test_testbed_builds_the_replica_topology():
    bed = make_bed()
    assert len(bed.ns_ring) == 2  # two shards...
    assert len(bed.ns_hosts) == 6  # ...of three replicas each
    for node, host in bed.ns_hosts.items():
        assert host.name == node
        assert len(host.peers) == 2
        for server in bed.servers:
            assert bed.network.has_link(node, server.name)
        for peer in host.peers:
            assert bed.network.has_link(node, peer)
    with pytest.raises(ReproError):
        bed.ns_host("urn:server:registry.net/nope")


def test_remote_and_replicated_modes_are_exclusive():
    with pytest.raises(ValueError):
        Testbed(1, remote_name_service=True, replicated_name_service=True)


def test_client_quorum_validation():
    bed = make_bed()
    with pytest.raises(NamingError, match="majority"):
        ReplicatedNameClient(
            bed.home.secure, bed.ns_ring, write_quorum=1, read_quorum=3
        )
    with pytest.raises(NamingError, match="R \\+ W"):
        ReplicatedNameClient(bed.home.secure, bed.ns_ring, read_quorum=1)
    with pytest.raises(NamingError, match="out of range"):
        ReplicatedNameClient(bed.home.secure, bed.ns_ring, write_quorum=4)


# -- the client, happy path --------------------------------------------------


def test_client_roundtrip_and_replication():
    bed = make_bed()
    client = bed.home.name_service
    name = URN.parse("urn:agent:x.net/round")
    results = {}

    def body():
        token = client.register(name, bed.home.name, {"k": 1})
        results["contains"] = client.contains(name)
        looked = client.lookup(name)
        results["record"] = (looked.location, looked.attributes)
        client.relocate(name, token, bed.servers[1].name)
        results["moved"] = client.lookup(name).location
        client.unregister(name, token)
        results["gone"] = client.contains(name)

    drive(bed, body)
    assert results["contains"] is True
    assert results["record"] == (bed.home.name, {"k": 1})
    assert results["moved"] == bed.servers[1].name
    assert results["gone"] is False
    # The write reached every replica of the shard, not just the quorum.
    for node in bed.ns_ring.replicas_for(name):
        held = bed.ns_host(node).store.get(name)
        assert held is not None and held.tombstone


def test_client_error_surface():
    bed = make_bed()
    client = bed.home.name_service
    name = URN.parse("urn:agent:x.net/errs")
    outcomes = {}

    def body():
        try:
            client.lookup(URN.parse("urn:agent:x.net/ghost"))
        except UnknownNameError:
            outcomes["unknown"] = True
        token = client.register(name, bed.home.name)
        try:
            client.register(name, bed.home.name)
        except DuplicateNameError:
            outcomes["duplicate"] = True
        try:
            client.relocate(name, "bad-token", "anywhere")
        except NamingError as exc:
            outcomes["badtoken"] = "bad owner token" in str(exc)
        client.unregister(name, token)
        try:
            client.relocate(name, token, "anywhere")
        except UnknownNameError:
            outcomes["tombstoned"] = True

    drive(bed, body)
    assert outcomes == {
        "unknown": True, "duplicate": True, "badtoken": True,
        "tombstoned": True,
    }


def test_reregistration_starts_a_new_epoch():
    bed = make_bed()
    client = bed.home.name_service
    name = URN.parse("urn:agent:x.net/phoenix")

    def body():
        token = client.register(name, bed.home.name)
        client.unregister(name, token)
        client.register(name, bed.servers[1].name)

    drive(bed, body)
    for node in bed.ns_ring.replicas_for(name):
        held = bed.ns_host(node).store.get(name)
        assert held.epoch == 2 and held.seq == 1 and not held.tombstone


def test_shard_ops_reject_misdirected_and_unauthorized_requests():
    bed = make_bed()
    ring = bed.ns_ring
    shard_a, shard_b = ring.shard_ids()
    # A name owned by shard B, pushed at a replica of shard A.
    name = next(
        n for n in (URN.parse(f"urn:agent:x.net/m{i}") for i in range(64))
        if ring.shard_for(n) == shard_b
    )
    node_a = ring.replicas(shard_a)[0]
    outcomes = {}

    def body():
        channel = bed.home.secure.connect(node_a, timeout=2.0)

        def ask(request):
            return decode(channel.call(
                SHARD_APP_KIND, encode(request), timeout=2.0
            ))

        rec = record(name, token="t-x")
        outcomes["misdirected"] = ask({"op": "put", "record": rec})
        # "repair" skips token checks, so it is peers-only: a client
        # (even a well-formed one) must be refused.
        good = record(
            next(n for n in (URN.parse(f"urn:agent:x.net/m{i}")
                             for i in range(64))
                 if ring.shard_for(n) == shard_a),
            token="t-x",
        )
        outcomes["repair"] = ask({"op": "repair", "record": good})
        outcomes["unknown_op"] = ask({"op": "frobnicate"})

    drive(bed, body)
    assert "belongs to shard" in outcomes["misdirected"]["error"]
    assert "restricted to ring peers" in outcomes["repair"]["error"]
    assert "unknown shard op" in outcomes["unknown_op"]["error"]
    assert all(reply["kind"] == "naming" for reply in outcomes.values())


# -- failover ----------------------------------------------------------------


def test_crash_hint_restart_convergence():
    bed = make_bed()
    client = bed.home.name_service
    name = URN.parse("urn:agent:x.net/healing")
    victim = bed.ns_host(bed.ns_ring.replicas_for(name)[2])
    victim.crash()
    assert victim.is_crashed

    def register():
        client.register(name, bed.home.name)

    drive(bed, register)
    # Two of three acked; the third got a hint parked with a live peer.
    assert bed.name_service.replicas_holding(name) == 2
    assert client.stats["hints_sent"] == 1
    assert name in bed.name_service.names()  # oracle still resolves it

    victim.restart()

    def reconcile():
        for host in bed.ns_hosts.values():
            host.anti_entropy_round()

    drive(bed, reconcile)
    assert bed.name_service.replicas_holding(name) == 3
    assert bed.name_service.divergences() == []


def test_read_repair_refreshes_a_lagging_replica():
    bed = make_bed()
    client = bed.home.name_service
    name = URN.parse("urn:agent:x.net/lagging")
    token = {}

    def register():
        token["t"] = client.register(name, bed.home.name)

    drive(bed, register)
    victim = bed.ns_host(bed.ns_ring.replicas_for(name)[1])
    victim.crash()

    def relocate():
        client.relocate(name, token["t"], bed.servers[1].name)

    drive(bed, relocate)
    assert victim.store.get(name).seq == 1  # missed the update
    victim.restart()

    def lookup():
        client.lookup(name)

    drive(bed, lookup)
    assert client.stats["read_repairs"] >= 1
    assert victim.store.get(name).seq == 2
    assert victim.store.get(name).location == bed.servers[1].name


def test_degraded_reads_are_flagged_stale_and_bounded():
    bed = make_bed()
    client = bed.home.name_service
    name = URN.parse("urn:agent:x.net/staleish")
    outcomes = {}

    def body():
        client.register(name, bed.home.name)
        # Majority of the shard fully isolated: no read quorum possible.
        for node in bed.ns_ring.replicas_for(name)[:2]:
            isolate(bed, node)
        looked = client.lookup(name)
        outcomes["stale"] = looked.attributes.get("ns.stale")
        outcomes["replies"] = looked.attributes.get("ns.replies")
        outcomes["age"] = looked.attributes.get("ns.age")
        outcomes["location"] = looked.location
        # ...and writes correctly refuse (no quorum to commit against).
        try:
            client.register(URN.parse(str(name) + "2"), bed.home.name)
        except (NetworkError, DuplicateNameError) as exc:
            outcomes["write"] = type(exc).__name__

    drive(bed, body)
    assert outcomes["stale"] is True
    assert outcomes["replies"] == 1
    assert outcomes["age"] >= 0.0
    assert outcomes["location"] == bed.home.name
    # The sibling name may land on the healthy shard; either it registers
    # (not our shard) or it refuses with NetworkError — never silently
    # half-commits.  When it shares the shard, it must refuse.
    sibling = URN.parse(str(name) + "2")
    if bed.ns_ring.shard_for(sibling) == bed.ns_ring.shard_for(name):
        assert outcomes["write"] == "NetworkError"
    assert client.stats["lookups_stale"] >= 1


def test_stale_read_limit_turns_staleness_into_unavailability():
    bed = make_bed(ns_stale_read_limit=5.0)
    client = bed.home.name_service
    name = URN.parse("urn:agent:x.net/bounded")
    outcomes = {}

    def body():
        client.register(name, bed.home.name)
        for node in bed.ns_ring.replicas_for(name)[:2]:
            isolate(bed, node)
        thread = bed.kernel.current_thread()
        thread.sleep(30.0)  # well past the staleness bound
        try:
            client.lookup(name)
        except NetworkError as exc:
            outcomes["refused"] = "exceeds bound" in str(exc)

    drive(bed, body)
    assert outcomes["refused"] is True
    assert client.stats["lookups_too_stale"] == 1


def test_no_replica_reachable_is_unavailability_not_unknown():
    bed = make_bed()
    client = bed.home.name_service
    name = URN.parse("urn:agent:x.net/dark")
    outcomes = {}

    def body():
        client.register(name, bed.home.name)
        for node in bed.ns_ring.replicas_for(name):
            isolate(bed, node)
        try:
            client.lookup(name)
        except NetworkError:
            outcomes["lookup"] = "unavailable"
        except UnknownNameError:  # pragma: no cover - the bug this guards
            outcomes["lookup"] = "unknown"

    drive(bed, body)
    assert outcomes["lookup"] == "unavailable"
    assert client.stats["lookups_unavailable"] == 1


# -- anti-entropy sweeps -----------------------------------------------------


def test_periodic_sweeps_run_phase_offset_and_stop_on_crash():
    bed = make_bed(ns_anti_entropy=5.0)
    delays = {
        node: 5.0 * (0.25 + 0.5 * (stable_hash("sweep:" + node) % 1024) / 1024)
        for node in bed.ns_hosts
    }
    # Phase offsets genuinely differ across nodes (no lockstep sweeps).
    assert len(set(round(d, 6) for d in delays.values())) > 1
    victim = next(iter(bed.ns_hosts.values()))
    victim.crash()
    bed.run(until=30.0)
    for node, host in bed.ns_hosts.items():
        if host is victim:
            assert host.stats["sweeps"] == 0
        else:
            assert host.stats["sweeps"] >= 3
    victim.restart()
    bed.run(until=40.0)
    assert victim.stats["sweeps"] >= 1  # catch-up round after restart


def test_sweep_convergence_without_explicit_rounds():
    bed = make_bed(ns_anti_entropy=5.0)
    client = bed.home.name_service
    name = URN.parse("urn:agent:x.net/swept")
    victim = bed.ns_host(bed.ns_ring.replicas_for(name)[0])
    victim.crash()

    def register():
        client.register(name, bed.home.name)

    SimThread(bed.kernel, register, "ns-test-client").start()
    bed.run(until=10.0)
    assert bed.name_service.replicas_holding(name) == 2
    victim.restart()
    bed.run(until=40.0)  # several sweep periods
    assert bed.name_service.replicas_holding(name) == 3
    assert bed.name_service.divergences() == []


# -- observability -----------------------------------------------------------


def test_quorum_handoff_and_repair_are_traced(world):
    w = world(2)
    client = w.home.name_service
    name = URN.parse("urn:agent:x.net/traced")
    victim = w.ns_host(w.ns_ring.replicas_for(name)[2])
    victim.crash()

    def body():
        client.register(name, w.home.name)
        client.lookup(name)
        victim.restart()
        for host in w.ns_hosts.values():
            host.anti_entropy_round()

    SimThread(w.kernel, body, "ns-test-client").start()
    w.run()
    spans = {span.name for span in w.tracer.finished}
    assert {"ns.quorum", "ns.handoff", "ns.repair"} <= spans
    quorum_ops = {
        span.attributes.get("op")
        for span in w.tracer.finished if span.name == "ns.quorum"
    }
    assert {"register", "lookup"} <= quorum_ops


# -- the oracle --------------------------------------------------------------


def test_oracle_is_a_nameservice_with_xray_vision():
    bed = make_bed()
    oracle = bed.name_service
    name = URN.parse("urn:agent:x.net/oracle")
    token = oracle.register(name, bed.home.name, {"k": 1})
    assert oracle.contains(name)
    assert oracle.lookup(name).location == bed.home.name
    assert oracle.replicas_holding(name) == 3
    assert name in oracle.names()
    assert len(oracle) == 1
    with pytest.raises(NamingError):
        oracle.relocate(name, "bad-token", "x")
    oracle.relocate(name, token, bed.servers[1].name)
    assert oracle.lookup(name).location == bed.servers[1].name
    assert oracle.divergences() == []
    # Hand-poke one replica ahead: the oracle reports the divergence.
    store = bed.ns_host(bed.ns_ring.replicas_for(name)[0]).store
    store.merge(record(name, token=token, seq=9, location="forked"))
    assert oracle.divergences() == [name]
    oracle.unregister(name, token)
    assert not oracle.contains(name)
    assert len(oracle) == 0


# -- agents on top -----------------------------------------------------------


def test_agent_migration_updates_the_replicated_directory():
    bed = make_bed(server_kwargs={"transfer_timeout": 5.0})
    mover = ReplicatedHopper()
    mover.dest = bed.servers[1].name
    image = bed.launch(mover, Rights.all(), agent_local="mover")
    bed.run()
    assert bed.servers[1].resident_status(image.name)["status"] == "completed"
    assert bed.locate(image.name) == bed.servers[1].name
    assert bed.servers[1].stats["ns_relocate_failed"] == 0
    # The launch registration and the arrival relocation agree everywhere.
    assert bed.name_service.replicas_holding(image.name) == 3
    assert bed.name_service.divergences() == []


def test_agent_migration_survives_a_crashed_replica():
    bed = make_bed(server_kwargs={"transfer_timeout": 10.0})
    mover = ReplicatedHopper()
    mover.dest = bed.servers[1].name
    image = bed.launch(mover, Rights.all(), agent_local="mover2")
    victim = bed.ns_host(bed.ns_ring.replicas_for(image.name)[0])
    victim.crash()
    bed.run()
    assert bed.servers[1].resident_status(image.name)["status"] == "completed"
    assert bed.locate(image.name) == bed.servers[1].name
    assert bed.servers[1].stats["ns_relocate_failed"] == 0

"""Tests for URN global names."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NamingError
from repro.naming.urn import URN
from repro.util.serialization import decode, encode


class TestParse:
    def test_basic(self):
        urn = URN.parse("urn:agent:umn.edu/anand/shopper-17")
        assert urn.kind == "agent"
        assert urn.authority == "umn.edu"
        assert urn.local == "anand/shopper-17"
        assert str(urn) == "urn:agent:umn.edu/anand/shopper-17"

    def test_case_normalization(self):
        urn = URN.parse("urn:Agent:UMN.EDU/Shopper")
        assert urn.kind == "agent"
        assert urn.authority == "umn.edu"
        assert urn.local == "Shopper"  # local part is case-preserving

    @pytest.mark.parametrize(
        "bad",
        [
            "not-a-urn",
            "urn:agent",
            "urn:agent:no-local-part",
            "urn::authority/x",
            "urn:agent:/x",
            "http:agent:a/x",
            "urn:agent:a/x y",  # space in local
            "urn:ag ent:a/x",
            "",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(NamingError):
            URN.parse(bad)

    def test_non_string_rejected(self):
        with pytest.raises(NamingError):
            URN.parse(12345)  # type: ignore[arg-type]


class TestConstruction:
    def test_make(self):
        urn = URN.make("Server", "Store.COM", "front-1")
        assert str(urn) == "urn:server:store.com/front-1"

    def test_child(self):
        parent = URN.parse("urn:agent:umn.edu/parent")
        child = parent.child("worker-0")
        assert str(child) == "urn:agent:umn.edu/parent/worker-0"

    def test_invalid_fields_rejected(self):
        with pytest.raises(NamingError):
            URN(kind="", authority="a.com", local="x")
        with pytest.raises(NamingError):
            URN(kind="agent", authority="a_com", local="x")
        with pytest.raises(NamingError):
            URN(kind="agent", authority="a.com", local="x//y")


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = URN.parse("urn:agent:umn.edu/x")
        b = URN.parse("urn:agent:umn.edu/x")
        c = URN.parse("urn:agent:umn.edu/y")
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_usable_as_dict_key(self):
        table = {URN.parse("urn:resource:s.com/buf"): 1}
        assert table[URN.parse("urn:resource:s.com/buf")] == 1

    def test_serialization_roundtrip(self):
        urn = URN.parse("urn:resource:store.com/quote-db")
        assert decode(encode(urn)) == urn

    @settings(max_examples=50, deadline=None)
    @given(
        st.sampled_from(["agent", "server", "resource", "principal"]),
        st.from_regex(r"[a-z0-9]([a-z0-9.-]{0,10}[a-z0-9])?", fullmatch=True),
        st.from_regex(r"[A-Za-z0-9._~-]{1,12}(/[A-Za-z0-9._~-]{1,8}){0,2}", fullmatch=True),
    )
    def test_property_parse_format_roundtrip(self, kind, authority, local):
        urn = URN.make(kind, authority, local)
        assert URN.parse(str(urn)) == urn

"""Naming fixtures: traced replicated-directory worlds.

``REPRO_STRESS_SEED`` reseeds the partition suite (CI replays it under
several seeds); set ``REPRO_NAMING_TRACE_DIR`` to a directory and every
*failing* scenario exports its flight-recorder trace there (JSONL +
Chrome ``about:tracing`` JSON) for upload as a CI artifact.
"""

from __future__ import annotations

import os
import pathlib
import re

import pytest

from repro.server.testbed import Testbed

TRACE_DIR = os.environ.get("REPRO_NAMING_TRACE_DIR", "")
STRESS_SEED = int(os.environ.get("REPRO_STRESS_SEED", "101"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    # Stash phase reports on the item so the ``world`` teardown can tell
    # whether the test body failed (and only then export traces).
    outcome = yield
    report = outcome.get_result()
    setattr(item, f"rep_{report.when}", report)


class World:
    """One traced replicated-registry testbed plus its flight recorder."""

    def __init__(self, n: int, **kw) -> None:
        kw.setdefault("seed", STRESS_SEED)
        kw.setdefault("replicated_name_service", True)
        # Short call timeouts: crashed replicas should cost seconds of
        # virtual time, not the secure-channel default.
        kw.setdefault("ns_timeout", 2.0)
        self.bed = Testbed(n, **kw)
        self.recorder = self.bed.start_tracing()

    def __getattr__(self, name):
        return getattr(self.bed, name)


@pytest.fixture
def world(request):
    """Factory for traced worlds; tracing is always torn down, and the
    trace is exported when the test failed and a trace dir is set."""
    worlds: list[World] = []

    def make(n: int, **kw) -> World:
        built = World(n, **kw)
        worlds.append(built)
        return built

    yield make
    report = getattr(request.node, "rep_call", None)
    failed = report is not None and report.failed
    for i, built in enumerate(worlds):
        built.bed.stop_tracing()
        if failed and TRACE_DIR:
            out = pathlib.Path(TRACE_DIR)
            out.mkdir(parents=True, exist_ok=True)
            safe = re.sub(r"[^\w.=-]+", "_", request.node.name)
            stem = out / (f"{safe}-{i}" if i else safe)
            built.recorder.export_jsonl(str(stem) + ".jsonl")
            built.recorder.export_chrome(str(stem) + ".json")

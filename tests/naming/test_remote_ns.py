"""The name service as a network service (remote registry)."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.credentials.rights import Rights
from repro.errors import (
    DuplicateNameError,
    NamingError,
    NetworkError,
    RetryExhaustedError,
    UnknownNameError,
)
from repro.naming.remote import RemoteNameService
from repro.naming.urn import URN
from repro.obs import runtime as _obs
from repro.server.testbed import Testbed
from repro.sim.threads import SimThread
from repro.util.retry import RetryPolicy


@register_trusted_agent_class
class RemoteNsHopper(Agent):
    def __init__(self) -> None:
        self.dest = ""

    def run(self):
        if self.dest and self.host.server_name() != self.dest:
            dest, self.dest = self.dest, ""
            self.go(dest, "run")
        self.host.sleep(5.0)  # stay resident long enough to be observed
        self.complete()


@register_trusted_agent_class
class Locator(Agent):
    """Asks the (remote) name service where another agent is."""

    def __init__(self) -> None:
        self.target = ""

    def run(self):
        self.host.sleep(1.0)  # let the mover finish moving
        self.host.report_home({"located": self.host.locate(self.target)})
        self.complete()


def make_bed(**kw):
    return Testbed(2, remote_name_service=True, **kw)


def test_registry_node_exists():
    bed = make_bed()
    assert bed.registry_node == "urn:server:registry.net/ns"
    assert isinstance(bed.home.name_service, RemoteNameService)


def test_stub_roundtrip_over_network():
    bed = make_bed()
    stub = bed.home.name_service
    results = {}

    def client():
        name = URN.parse("urn:agent:x.net/probe")
        token = stub.register(name, bed.home.name, {"k": 1})
        results["contains"] = stub.contains(name)
        record = stub.lookup(name)
        results["record"] = (str(record.name), record.location, record.attributes)
        stub.relocate(name, token, bed.servers[1].name)
        results["moved"] = stub.lookup(name).location
        stub.unregister(name, token)
        results["after"] = stub.contains(name)

    SimThread(bed.kernel, client, "client").start()
    bed.run()
    assert results["contains"] is True
    assert results["record"] == ("urn:agent:x.net/probe", bed.home.name, {"k": 1})
    assert results["moved"] == bed.servers[1].name
    assert results["after"] is False
    # The operations really crossed the wire to the registry node.
    assert bed.network.link(bed.home.name, bed.registry_node).stats["bytes"] > 0


def test_error_kinds_survive_the_wire():
    bed = make_bed()
    stub = bed.home.name_service
    outcomes = {}

    def client():
        name = URN.parse("urn:agent:x.net/dup")
        try:
            stub.lookup(URN.parse("urn:agent:x.net/ghost"))
        except UnknownNameError:
            outcomes["unknown"] = True
        stub.register(name, bed.home.name)
        try:
            stub.register(name, bed.home.name)
        except DuplicateNameError:
            outcomes["duplicate"] = True
        try:
            stub.relocate(name, "bad-token", "anywhere")
        except NamingError:
            outcomes["badtoken"] = True

    SimThread(bed.kernel, client, "client").start()
    bed.run()
    assert outcomes == {"unknown": True, "duplicate": True, "badtoken": True}


def test_error_kind_mapping_covers_every_kind():
    """`_ERROR_KINDS` round-trip at the protocol layer: each server-side
    kind string reconstructs the matching client-side exception, and an
    unknown kind (or an unknown op) degrades to plain NamingError."""
    from repro.naming.remote import _ERROR_KINDS

    assert _ERROR_KINDS == {
        "unknown": UnknownNameError,
        "duplicate": DuplicateNameError,
        "naming": NamingError,
    }
    bed = make_bed()
    stub = bed.home.name_service
    outcomes = {}

    def client():
        try:
            stub._call({"op": "frobnicate"})
        except NamingError as exc:
            outcomes["unknown_op"] = (type(exc), str(exc))

    SimThread(bed.kernel, client, "client").start()
    bed.run()
    kind, message = outcomes["unknown_op"]
    assert kind is NamingError  # exactly, not a subclass
    assert "frobnicate" in message


def test_retry_exhaustion_surfaces_network_error_context():
    """With the registry unreachable, idempotent calls surface
    RetryExhaustedError (a NetworkError) carrying attempts + last error."""
    bed = make_bed()
    for server in bed.servers:
        bed.network.set_link_state(server.name, bed.registry_node, False)
    stub = RemoteNameService(
        bed.home.secure, bed.registry_node, timeout=2.0,
        retry=RetryPolicy(attempts=3, base_delay=0.5, jitter=0.0),
    )
    outcomes = {}

    def client():
        try:
            stub.lookup(URN.parse("urn:agent:x.net/nowhere"))
        except RetryExhaustedError as exc:
            outcomes["exc"] = exc

    SimThread(bed.kernel, client, "client").start()
    bed.run(detect_deadlock=False)
    exc = outcomes["exc"]
    assert isinstance(exc, NetworkError)  # callers catch the family
    assert exc.attempts == 3
    assert isinstance(exc.last_error, NetworkError)
    assert exc.context["attempts"] == 3
    assert "ns.lookup" in str(exc)
    assert stub.stats["retries"] == 2  # a drop-channel between each attempt


def test_relocate_async_failure_counts_metrics_and_audits():
    """A lost relocation is diagnosable: server stats, the metrics
    registry (`ns_relocate_failed`) and the audit log all record it."""
    bed = make_bed(server_kwargs={"transfer_timeout": 5.0})
    bed.start_metrics()
    try:
        for server in bed.servers:
            bed.network.set_link_state(server.name, bed.registry_node, False)
        mover = RemoteNsHopper()
        mover.dest = bed.servers[1].name
        image = bed.launch(mover, Rights.all(), agent_local="mover4")
        bed.run(detect_deadlock=False)
    finally:
        _obs.uninstall()
    assert bed.servers[1].stats["ns_relocate_failed"] == 1
    # The client stub's own failure counter moved too.
    assert bed.servers[1].name_service.stats["relocate_failed"] == 1
    assert bed.metrics.scrape()["ns_relocate_failed"] == 2
    audited = [
        rec for rec in bed.servers[1].audit
        if rec.operation == "ns.relocate_async"
    ]
    assert len(audited) == 1
    assert audited[0].allowed is False
    assert str(image.name) == audited[0].domain
    assert bed.servers[1].name in audited[0].target


def test_migration_updates_remote_registry():
    bed = make_bed()
    mover = RemoteNsHopper()
    mover.dest = bed.servers[1].name
    image = bed.launch(mover, Rights.all(), agent_local="mover")
    locator = Locator()
    locator.target = str(image.name)
    bed.launch(Locator(), Rights.all(), agent_local="unused")  # warm nothing
    loc = Locator()
    loc.target = str(image.name)
    bed.launch(loc, Rights.all(), agent_local="locator")
    bed.run()
    # The authoritative registry saw the relocation...
    assert bed.name_service.lookup(image.name).location == bed.servers[1].name
    # ...and the locator agent observed it through the *remote* stub.
    located = [r["payload"]["located"] for r in bed.home.reports
               if "located" in r.get("payload", {})]
    assert bed.servers[1].name in located


def test_rerouted_relocation_still_succeeds():
    """Cutting one registry link is survivable: traffic reroutes."""
    bed = make_bed(server_kwargs={"transfer_timeout": 10.0})
    bed.network.set_link_state(bed.servers[1].name, bed.registry_node, False)
    mover = RemoteNsHopper()
    mover.dest = bed.servers[1].name
    image = bed.launch(mover, Rights.all(), agent_local="mover2")
    bed.run(detect_deadlock=False)
    assert bed.servers[1].resident_status(image.name)["status"] == "completed"
    # The relocation went through server 0's link instead.
    assert bed.servers[1].stats["ns_relocate_failed"] == 0
    assert bed.name_service.lookup(image.name).location == bed.servers[1].name


def test_registry_partition_does_not_break_hosting():
    """With the registry fully unreachable, hosting continues; only the
    location record goes stale (and the failures are counted)."""
    bed = make_bed(server_kwargs={"transfer_timeout": 5.0})
    for server in bed.servers:
        bed.network.set_link_state(server.name, bed.registry_node, False)
    mover = RemoteNsHopper()
    mover.dest = bed.servers[1].name
    image = bed.launch(mover, Rights.all(), agent_local="mover3")
    bed.run(detect_deadlock=False)
    assert bed.servers[1].resident_status(image.name)["status"] == "completed"
    # Both the launch-time and arrival-time relocations failed, audited.
    assert bed.home.stats["ns_relocate_failed"] == 1
    assert bed.servers[1].stats["ns_relocate_failed"] == 1
    # The registry still shows the stale (home) location.
    assert bed.name_service.lookup(image.name).location == bed.home.name

"""The name service as a network service (remote registry)."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.credentials.rights import Rights
from repro.errors import DuplicateNameError, NamingError, UnknownNameError
from repro.naming.remote import RemoteNameService
from repro.naming.urn import URN
from repro.server.testbed import Testbed
from repro.sim.threads import SimThread


@register_trusted_agent_class
class RemoteNsHopper(Agent):
    def __init__(self) -> None:
        self.dest = ""

    def run(self):
        if self.dest and self.host.server_name() != self.dest:
            dest, self.dest = self.dest, ""
            self.go(dest, "run")
        self.host.sleep(5.0)  # stay resident long enough to be observed
        self.complete()


@register_trusted_agent_class
class Locator(Agent):
    """Asks the (remote) name service where another agent is."""

    def __init__(self) -> None:
        self.target = ""

    def run(self):
        self.host.sleep(1.0)  # let the mover finish moving
        self.host.report_home({"located": self.host.locate(self.target)})
        self.complete()


def make_bed(**kw):
    return Testbed(2, remote_name_service=True, **kw)


def test_registry_node_exists():
    bed = make_bed()
    assert bed.registry_node == "urn:server:registry.net/ns"
    assert isinstance(bed.home.name_service, RemoteNameService)


def test_stub_roundtrip_over_network():
    bed = make_bed()
    stub = bed.home.name_service
    results = {}

    def client():
        name = URN.parse("urn:agent:x.net/probe")
        token = stub.register(name, bed.home.name, {"k": 1})
        results["contains"] = stub.contains(name)
        record = stub.lookup(name)
        results["record"] = (str(record.name), record.location, record.attributes)
        stub.relocate(name, token, bed.servers[1].name)
        results["moved"] = stub.lookup(name).location
        stub.unregister(name, token)
        results["after"] = stub.contains(name)

    SimThread(bed.kernel, client, "client").start()
    bed.run()
    assert results["contains"] is True
    assert results["record"] == ("urn:agent:x.net/probe", bed.home.name, {"k": 1})
    assert results["moved"] == bed.servers[1].name
    assert results["after"] is False
    # The operations really crossed the wire to the registry node.
    assert bed.network.link(bed.home.name, bed.registry_node).stats["bytes"] > 0


def test_error_kinds_survive_the_wire():
    bed = make_bed()
    stub = bed.home.name_service
    outcomes = {}

    def client():
        name = URN.parse("urn:agent:x.net/dup")
        try:
            stub.lookup(URN.parse("urn:agent:x.net/ghost"))
        except UnknownNameError:
            outcomes["unknown"] = True
        stub.register(name, bed.home.name)
        try:
            stub.register(name, bed.home.name)
        except DuplicateNameError:
            outcomes["duplicate"] = True
        try:
            stub.relocate(name, "bad-token", "anywhere")
        except NamingError:
            outcomes["badtoken"] = True

    SimThread(bed.kernel, client, "client").start()
    bed.run()
    assert outcomes == {"unknown": True, "duplicate": True, "badtoken": True}


def test_migration_updates_remote_registry():
    bed = make_bed()
    mover = RemoteNsHopper()
    mover.dest = bed.servers[1].name
    image = bed.launch(mover, Rights.all(), agent_local="mover")
    locator = Locator()
    locator.target = str(image.name)
    bed.launch(Locator(), Rights.all(), agent_local="unused")  # warm nothing
    loc = Locator()
    loc.target = str(image.name)
    bed.launch(loc, Rights.all(), agent_local="locator")
    bed.run()
    # The authoritative registry saw the relocation...
    assert bed.name_service.lookup(image.name).location == bed.servers[1].name
    # ...and the locator agent observed it through the *remote* stub.
    located = [r["payload"]["located"] for r in bed.home.reports
               if "located" in r.get("payload", {})]
    assert bed.servers[1].name in located


def test_rerouted_relocation_still_succeeds():
    """Cutting one registry link is survivable: traffic reroutes."""
    bed = make_bed(server_kwargs={"transfer_timeout": 10.0})
    bed.network.set_link_state(bed.servers[1].name, bed.registry_node, False)
    mover = RemoteNsHopper()
    mover.dest = bed.servers[1].name
    image = bed.launch(mover, Rights.all(), agent_local="mover2")
    bed.run(detect_deadlock=False)
    assert bed.servers[1].resident_status(image.name)["status"] == "completed"
    # The relocation went through server 0's link instead.
    assert bed.servers[1].stats["ns_relocate_failed"] == 0
    assert bed.name_service.lookup(image.name).location == bed.servers[1].name


def test_registry_partition_does_not_break_hosting():
    """With the registry fully unreachable, hosting continues; only the
    location record goes stale (and the failures are counted)."""
    bed = make_bed(server_kwargs={"transfer_timeout": 5.0})
    for server in bed.servers:
        bed.network.set_link_state(server.name, bed.registry_node, False)
    mover = RemoteNsHopper()
    mover.dest = bed.servers[1].name
    image = bed.launch(mover, Rights.all(), agent_local="mover3")
    bed.run(detect_deadlock=False)
    assert bed.servers[1].resident_status(image.name)["status"] == "completed"
    # Both the launch-time and arrival-time relocations failed, audited.
    assert bed.home.stats["ns_relocate_failed"] == 1
    assert bed.servers[1].stats["ns_relocate_failed"] == 1
    # The registry still shows the stale (home) location.
    assert bed.name_service.lookup(image.name).location == bed.home.name

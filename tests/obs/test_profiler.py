"""Deterministic sampling profiler driven by kernel virtual-time ticks."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.obs.profiler import IDLE_STACK, SamplingProfiler
from repro.obs.trace import Tracer
from repro.sim.kernel import Kernel


def _world():
    kernel = Kernel()
    tracer = Tracer(clock=kernel.clock, service="test")
    return kernel, tracer


def test_period_must_be_positive():
    kernel, tracer = _world()
    with pytest.raises(ReproError):
        SamplingProfiler(tracer, kernel, period=0.0)


def test_samples_attribute_to_innermost_open_span():
    kernel, tracer = _world()
    profiler = SamplingProfiler(tracer, kernel, period=1.0)
    profiler.start()
    # Spans held open across tick boundaries: ticks at 1.0 and 2.0 see
    # outer;inner, ticks at 3.0 and 4.0 see nothing.
    outer = tracer.start_span("outer")
    inner = tracer.start_span("inner")
    kernel.schedule(2.5, tracer.end_span, inner)
    kernel.schedule(2.5, tracer.end_span, outer)
    kernel.run(until=4.5)
    profiler.stop()
    stacks = profiler.flame_stacks()
    assert stacks["outer;inner"] == 2
    # Ticks at 3.0 and 4.0 saw nothing open.
    assert profiler.samples[IDLE_STACK] == 2
    assert profiler.total_samples == 4
    assert profiler.attributed_samples == 2
    assert profiler.attribution_ratio == pytest.approx(0.5)


def test_idle_world_profiles_as_idle():
    kernel, tracer = _world()
    profiler = SamplingProfiler(tracer, kernel, period=0.5)
    profiler.start()
    kernel.run(until=2.0)
    assert profiler.attributed_samples == 0
    assert profiler.attribution_ratio == 0.0
    assert profiler.flame_stacks() == {}


def test_profiler_tick_is_daemon():
    kernel, tracer = _world()
    profiler = SamplingProfiler(tracer, kernel, period=0.5)
    profiler.start()
    kernel.run()  # no foreground work: returns immediately
    assert kernel.now() == 0.0
    assert profiler.total_samples == 0


def test_start_twice_raises_and_stop_allows_restart():
    kernel, tracer = _world()
    profiler = SamplingProfiler(tracer, kernel, period=0.5)
    profiler.start()
    with pytest.raises(ReproError):
        profiler.start()
    profiler.stop()
    profiler.start()
    kernel.schedule(1.6, lambda: None)
    kernel.run()
    assert profiler.total_samples == 3


def test_by_leaf_top_and_collapsed_render(tmp_path):
    kernel, tracer = _world()
    profiler = SamplingProfiler(tracer, kernel, period=1.0)
    profiler.start()
    a = tracer.start_span("agent.resident")
    b = tracer.start_span("rpc.call")
    kernel.schedule(2.5, tracer.end_span, b)
    kernel.schedule(3.5, tracer.end_span, a)
    kernel.run(until=3.9)
    profiler.stop()
    assert profiler.by_leaf() == {"rpc.call": 2, "agent.resident": 1}
    assert profiler.top(1) == [("rpc.call", 2)]
    out = tmp_path / "flame.txt"
    text = profiler.render_collapsed(out)
    assert "agent.resident;rpc.call 2" in text
    assert out.read_text() == text
    report = profiler.report()
    assert report["total_samples"] == 3
    assert report["attribution_ratio"] == pytest.approx(1.0)


def test_clear_resets_samples():
    kernel, tracer = _world()
    profiler = SamplingProfiler(tracer, kernel, period=1.0)
    profiler.start()
    kernel.schedule(2.5, lambda: None)
    kernel.run()
    assert profiler.total_samples == 2
    profiler.clear()
    assert profiler.total_samples == 0

"""Trace context survives lossy transfer (the acceptance scenario).

A three-hop tour under 15% frame loss (plus a 50% loss burst on the
first leg) forces retransmissions on the transfer path.  The dedup table keeps hosting exactly-once; this test
pins the *observability* side of the same story: the whole tour is ONE
trace, each hop is exactly one ``agent.resident`` span, and every
retransmission shows up as a ``retry`` span event — never as a duplicate
hop.
"""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.credentials.rights import Rights
from repro.server.testbed import Testbed
from repro.util.retry import RetryPolicy

SEED = 1000  # pinned: the tour completes, retries AND a dedup hit happen


@register_trusted_agent_class
class TracedHopper(Agent):
    def __init__(self) -> None:
        self.hops: list[str] = []

    def run(self):
        if self.hops:
            self.go(self.hops.pop(0), "run")
        self.complete({"at": self.host.server_name()})


def run_lossy_tour():
    bed = Testbed(
        4,
        seed=SEED,
        loss_rate=0.15,
        server_kwargs={
            "transfer_timeout": 30.0,
            "transfer_retry": RetryPolicy(attempts=8, base_delay=1.0,
                                          jitter=0.25),
        },
    )
    recorder = bed.start_tracing()
    # Injected adversity on top of the ambient loss, so the trace also
    # carries fault annotations.
    bed.faults().loss_burst(
        bed.home.name, bed.servers[1].name, at=0.0, duration=5.0,
        loss_rate=0.5,
    )
    agent = TracedHopper()
    agent.hops = [s.name for s in bed.servers[1:]]
    image = bed.launch(agent, Rights.all())
    bed.run(detect_deadlock=False)
    bed.stop_tracing()
    return bed, recorder, image


@pytest.fixture(scope="module")
def lossy_world():
    bed, recorder, image = run_lossy_tour()
    yield bed, recorder, image
    from repro.obs import runtime

    runtime.uninstall()


def test_adversity_was_real(lossy_world):
    bed, recorder, _ = lossy_world
    # The tour finished despite the loss...
    assert sum(s.stats["agents_completed"] for s in bed.servers) == 1
    assert sum(s.stats["transfers_failed"] for s in bed.servers) == 0
    # ...but not on the first try.
    retries = sum(s.stats["transfer_retries"] for s in bed.servers)
    assert retries >= 1
    dropped = sum(
        bed.network.link(a.name, b.name).stats["lost"]
        for a in bed.servers for b in bed.servers
        if a is not b and bed.network.has_link(a.name, b.name)
    )
    assert dropped >= 1


def test_one_trace_covers_every_hop(lossy_world):
    bed, recorder, image = lossy_world
    # trace_of raises unless the agent appears in exactly one trace —
    # this IS the context-propagation assertion.
    spans = recorder.trace_of(image.name)
    residents = [s for s in spans if s.name == "agent.resident"]
    hosted = sum(s.stats["agents_hosted"] for s in bed.servers)
    assert len(residents) == hosted == 4  # launch + 3 hops, no duplicates
    assert [s.attributes["hop"] for s in residents] == [0, 1, 2, 3]
    assert [s.attributes["server"] for s in residents] == [
        s.name for s in bed.servers
    ]
    recorder.assert_causal_order(residents)


def test_retransmissions_are_events_not_hops(lossy_world):
    bed, recorder, image = lossy_world
    spans = recorder.trace_of(image.name)
    retry_events = [
        (s, e) for s in spans for e in s.event_names() if e == "retry"
    ]
    assert retry_events, "15% loss must force at least one retransmission"
    # Every retry event lives on a depart/recover-side span, and the
    # number of resident spans stayed pinned to the hop count above.
    for span, _ in retry_events:
        assert span.name in ("transfer.depart", "transfer.recover",
                             "report.send")
    duplicates = sum(
        s.stats["transfers_duplicate_suppressed"] for s in bed.servers
    )
    admits = [s for s in spans if s.name == "transfer.admit"]
    flagged = [s for s in admits if s.attributes.get("duplicate")]
    assert len(flagged) == duplicates


def test_hops_chain_causally(lossy_world):
    _, recorder, image = lossy_world
    spans = recorder.trace_of(image.name)
    residents = [s for s in spans if s.name == "agent.resident"]
    launch = next(s for s in spans if s.name == "agent.launch")
    # Hop k's residency descends from hop k-1's (via depart -> admit).
    for earlier, later in zip(residents, residents[1:]):
        assert recorder.is_ancestor(earlier, later)
    assert recorder.is_ancestor(launch, residents[0])
    assert recorder.is_ancestor(launch, residents[-1])


def test_no_span_leaks_and_faults_annotated(lossy_world):
    _, recorder, _ = lossy_world
    recorder.assert_no_open_spans()
    injected = [
        a for a in recorder.annotations() if a[3].get("injected")
    ]
    kinds = {a[1] for a in injected}
    assert "fault.loss_burst_begin" in kinds
    assert "fault.loss_burst_end" in kinds

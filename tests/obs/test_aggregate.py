"""Federated metrics: snapshots, delta absorption, merge edge cases."""

from __future__ import annotations

import math

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.credentials.rights import Rights
from repro.obs.aggregate import (
    MetricSnapshot,
    TelemetryCollector,
    TelemetryUnit,
    snapshot_delta,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.server.testbed import Testbed
from repro.sim.monitor import Counter as MonitorCounter
from repro.sim.threads import SimThread
from repro.util.clock import VirtualClock
from repro.util.serialization import decode, encode


def _unit(origin="urn:server:test/u", **labels) -> TelemetryUnit:
    return TelemetryUnit(origin, VirtualClock(), **labels)


def _collector() -> TelemetryCollector:
    class _Via:
        name = "urn:server:test/via"
        kernel = VirtualClock()  # .now() is all offline absorption needs
    return TelemetryCollector(_Via())


# -- snapshots ---------------------------------------------------------------


def test_snapshot_wire_roundtrip_through_encode():
    unit = _unit(server="s0")
    unit.inc("requests", 3)
    unit.gauge("residents").set(2.0)
    unit.observe("latency", 300.0)
    snap = unit.snapshot()
    back = MetricSnapshot.from_wire(decode(encode(snap.to_wire())))
    assert back.origin == snap.origin
    assert back.counters == snap.counters
    assert back.gauges == snap.gauges
    assert back.histograms == snap.histograms


def test_snapshot_json_clamps_empty_histogram_extrema():
    unit = _unit()
    unit.histogram("empty")  # zero observations: min=inf, max=-inf
    text = unit.snapshot().to_json()
    assert "Infinity" not in text
    back = MetricSnapshot.from_json(text)
    state = next(iter(back.histograms.values()))
    assert state["min"] == math.inf and state["max"] == -math.inf


def test_unit_stamps_host_labels_on_every_key():
    unit = _unit(server="s7", ring="2")
    unit.inc("ops")
    stats = MonitorCounter()
    stats.add("hits", 4)
    unit.register_source("cache", stats)
    snap = unit.snapshot()
    assert snap.counters == {
        "ops{ring=2,server=s7}": 1,
        "cache.hits{ring=2,server=s7}": 4,
    }


# -- absorption edge cases (the satellite checklist) -------------------------


def test_absorb_empty_registry_is_a_noop():
    collector = _collector()
    collector.absorb(_unit().snapshot())
    assert collector.scrape() == {}
    assert collector.cluster_snapshot().counters == {}


def test_absorb_disjoint_label_sets_sit_side_by_side():
    collector = _collector()
    a = _unit("a", server="a")
    b = _unit("b", shard="s1", node="b")
    a.inc("requests", 2)
    b.inc("requests", 5)
    collector.absorb(a.snapshot())
    collector.absorb(b.snapshot())
    scrape = collector.scrape()
    assert scrape["requests{server=a}"] == 2
    assert scrape["requests{node=b,shard=s1}"] == 5


def test_absorb_is_idempotent_for_repeated_snapshots():
    """Cumulative-on-the-wire: re-absorbing the same snapshot (a retried
    or duplicated scrape) must not double-count."""
    collector = _collector()
    unit = _unit(server="a")
    unit.inc("requests", 7)
    unit.observe("latency", 500.0)
    snap = unit.snapshot()
    collector.absorb(snap)
    collector.absorb(snap)
    assert collector.scrape()["requests{server=a}"] == 7
    assert collector.scrape()["latency{server=a}"]["count"] == 1


def test_counter_delta_wraparound_treats_lower_value_as_restart():
    collector = _collector()
    high = MetricSnapshot("a", 1.0, {"c": 10}, {}, {})
    low = MetricSnapshot("a", 2.0, {"c": 3}, {}, {})
    collector.absorb(high)
    collector.absorb(low)
    # 10 before the restart + the restarted process's own 3.
    assert collector.scrape()["c"] == 13


def test_histogram_wraparound_treats_shrunk_buckets_as_restart():
    collector = _collector()
    h1 = Histogram([100.0, 1000.0])
    for v in (50.0, 500.0, 5000.0):
        h1.observe(v)
    collector.absorb(MetricSnapshot("a", 1.0, {}, {}, {"lat": h1.state()}))
    h2 = Histogram([100.0, 1000.0])
    h2.observe(500.0)
    collector.absorb(MetricSnapshot("a", 2.0, {}, {}, {"lat": h2.state()}))
    merged = collector.cluster.histogram("lat", bounds=[100.0, 1000.0])
    assert merged.count == 4  # 3 pre-restart + 1 after
    assert merged.counts == [1, 2, 1]


def test_bucket_boundary_values_merge_without_mass_shift():
    bounds = [256.0, 512.0]
    a, b = Histogram(bounds), Histogram(bounds)
    for h in (a, b):
        h.observe(256.0)  # exactly on a bound: bucket 0 (<= 256)
        h.observe(512.0)
        h.observe(513.0)  # overflow bucket
    collector = _collector()
    collector.absorb(MetricSnapshot("a", 1.0, {}, {}, {"h": a.state()}))
    collector.absorb(MetricSnapshot("b", 1.0, {}, {}, {"h": b.state()}))
    merged = collector.cluster.histogram("h", bounds=bounds)
    assert merged.counts == [2, 2, 2]
    assert merged.count == 6
    assert merged.min == 256.0 and merged.max == 513.0
    assert merged.total == pytest.approx(2 * (256.0 + 512.0 + 513.0))


def test_histogram_merge_rejects_mismatched_bounds():
    a = Histogram([1.0, 2.0])
    b = Histogram([1.0, 4.0])
    with pytest.raises(ValueError):
        a.merge(b)


def test_monitor_counter_aliases_survive_aggregation():
    """Computed alias keys flatten like real counters and federate."""
    stats = MonitorCounter()
    stats.alias("failed", "failed_breaker", "failed_exhausted")
    stats.add("failed_breaker", 2)
    stats.add("failed_exhausted", 1)
    unit = _unit(server="a")
    unit.register_source("xfer", stats)
    collector = _collector()
    collector.absorb(unit.snapshot())
    scrape = collector.scrape()
    assert scrape["xfer.failed{server=a}"] == 3
    # The alias keeps tracking its parts across later scrapes.
    stats.add("failed_breaker")
    collector.absorb(unit.snapshot())
    assert collector.scrape()["xfer.failed{server=a}"] == 4


def test_gauges_are_newest_wins():
    collector = _collector()
    collector.absorb(MetricSnapshot("a", 1.0, {}, {"g": 5.0}, {}))
    collector.absorb(MetricSnapshot("a", 2.0, {}, {"g": 2.0}, {}))
    assert collector.scrape()["g"] == 2.0


# -- snapshot_delta ----------------------------------------------------------


def test_snapshot_delta_reports_only_movement():
    old = MetricSnapshot("a", 1.0, {"c": 5, "still": 2}, {"g": 1.0}, {})
    new = MetricSnapshot("a", 2.0, {"c": 8, "still": 2}, {"g": 3.0}, {})
    delta = snapshot_delta(old, new)
    assert delta == {"c": 3, "g": {"was": 1.0, "now": 3.0}}


def test_snapshot_delta_counter_restart():
    old = MetricSnapshot("a", 1.0, {"c": 9}, {}, {})
    new = MetricSnapshot("a", 2.0, {"c": 2}, {}, {})
    assert snapshot_delta(old, new) == {"c": 2}


def test_snapshot_delta_histogram_observations():
    h = Histogram([10.0])
    h.observe(1.0)
    old = MetricSnapshot("a", 1.0, {}, {}, {"h": h.state()})
    h.observe(2.0)
    h.observe(3.0)
    new = MetricSnapshot("a", 2.0, {}, {}, {"h": h.state()})
    assert snapshot_delta(old, new) == {"h": {"observations": 2}}


# -- whole-world federation --------------------------------------------------


@register_trusted_agent_class
class _RingTourist(Agent):
    def run(self):
        while self.tour:
            self.go(self.tour.pop(0), "run")
        self.complete("done")


def _drive_tour(bed: Testbed, hops=None):
    names = [s.name for s in bed.servers]
    agent = _RingTourist()
    agent.tour = list(hops if hops is not None else names[1:] + [names[0]])
    image = bed.launch(agent, Rights.none())
    bed.run()
    return image


def _federated_counters(bed: Testbed) -> dict:
    out = {}

    def scrape():
        out["scrape"] = bed.cluster_scrape()

    SimThread(bed.kernel, scrape, name="scraper").start()
    bed.run()
    return {
        k: v
        for k, v in out["scrape"].items()
        if isinstance(v, int) and not k.startswith("telemetry.")
    }


def test_federated_scrape_matches_omniscient_registry_exactly():
    bed = Testbed(4, seed=90)
    _drive_tour(bed)
    federated = _federated_counters(bed)
    omniscient = {
        k: v for k, v in bed.scrape().items() if isinstance(v, int)
    }
    assert federated == omniscient


def test_federation_stays_exact_across_crash_and_restart():
    bed = Testbed(3, seed=91)
    _drive_tour(bed)
    _federated_counters(bed)  # baseline round (sets delta baselines)
    bed.servers[1].crash()
    bed.servers[1].restart()
    bed.run()
    _drive_tour(bed, hops=[bed.servers[1].name, bed.servers[0].name])
    federated = _federated_counters(bed)
    omniscient = {
        k: v for k, v in bed.scrape().items() if isinstance(v, int)
    }
    assert federated == omniscient
    assert federated[
        f"server.crashes{{server={bed.servers[1].name}}}"
    ] == 1


def test_scheduled_collector_rounds_run_as_daemon_ticks():
    bed = Testbed(3, seed=92)
    collector = bed.start_collector(period=0.01)
    _drive_tour(bed)
    assert collector.stats["rounds"] > 0
    assert collector.stats["scrapes_ok"] > 0
    # Daemon ticks never keep the drained world alive.
    t_end = bed.kernel.now()
    bed.run()
    assert bed.kernel.now() == t_end
    bed.stop_collector()


def test_touring_collector_agent_gathers_per_hop_snapshots():
    from repro.obs.aggregate import CollectorAgent

    bed = Testbed(3, seed=93)
    names = [s.name for s in bed.servers]
    agent = CollectorAgent()
    agent.tour = names[1:]
    agent.collected = []
    bed.launch(agent, Rights.none())
    bed.run()
    report = bed.home.reports[-1]["payload"]
    snaps = [MetricSnapshot.from_wire(w) for w in report]
    assert [s.origin for s in snaps] == names
    collector = _collector()
    for snap in snaps:
        collector.absorb(snap)
    scrape = collector.scrape()
    hosted = sum(
        v for k, v in scrape.items() if k.startswith("server.agents_hosted")
    )
    # One touring agent, hosted once per visited server.
    assert hosted == len(names)

"""MetricsRegistry unit tests: cells, labels, histograms, sources."""

from __future__ import annotations

import pytest

from repro.obs.metrics import DEFAULT_BUCKET_BOUNDS, Histogram, MetricsRegistry
from repro.sim.monitor import Counter as MonitorCounter


def test_counter_cells_are_keyed_by_name_and_labels():
    reg = MetricsRegistry()
    reg.inc("grants", resource="Buffer")
    reg.inc("grants", resource="Buffer", amount=2)
    reg.inc("grants", resource="Printer")
    scrape = reg.scrape()
    assert scrape["grants{resource=Buffer}"] == 3
    assert scrape["grants{resource=Printer}"] == 1


def test_counter_rejects_negative():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.inc("x", amount=-1)


def test_label_order_is_canonical():
    reg = MetricsRegistry()
    reg.inc("m", b="2", a="1")
    reg.inc("m", a="1", b="2")
    assert reg.scrape() == {"m{a=1,b=2}": 2}


def test_gauge_settable_and_callable():
    reg = MetricsRegistry()
    reg.gauge("residents").set(4.0)
    backing = {"v": 0.0}
    reg.gauge("lazy", fn=lambda: backing["v"])
    backing["v"] = 7.5
    scrape = reg.scrape()
    assert scrape["residents"] == 4.0
    assert scrape["lazy"] == 7.5
    with pytest.raises(ValueError):
        reg.gauge("lazy").set(1.0)


def test_histogram_buckets_and_quantiles():
    h = Histogram(bounds=[1.0, 10.0, 100.0])
    for v in (0.5, 5.0, 5.0, 50.0, 500.0):
        h.observe(v)
    assert h.counts == [1, 2, 1, 1]
    assert h.count == 5
    assert h.min == 0.5 and h.max == 500.0
    assert h.mean == pytest.approx(112.1)
    assert h.quantile(0.5) == 10.0
    assert h.quantile(1.0) == 500.0  # overflow bucket reports the max
    summary = h.summary()
    assert summary["count"] == 5 and summary["p50"] == 10.0


def test_default_bounds_are_log_spaced_ns():
    assert DEFAULT_BUCKET_BOUNDS[0] == 256.0
    assert DEFAULT_BUCKET_BOUNDS[-1] == 2.0**32
    ratios = {
        b / a for a, b in zip(DEFAULT_BUCKET_BOUNDS, DEFAULT_BUCKET_BOUNDS[1:])
    }
    assert ratios == {2.0}


def test_histogram_cell_reused_per_labelset():
    reg = MetricsRegistry()
    reg.histogram("lat_ns", resource="Buffer").observe(300.0)
    reg.histogram("lat_ns", resource="Buffer").observe(600.0)
    summary = reg.scrape()["lat_ns{resource=Buffer}"]
    assert summary["count"] == 2


def test_register_source_is_lazy():
    reg = MetricsRegistry()
    stats = MonitorCounter()
    reg.register_source("server", stats, server="s0")
    stats.add("transfers_out")  # bumped *after* registration
    stats.add("transfers_out")
    assert reg.scrape()["server.transfers_out{server=s0}"] == 2


def test_register_source_surfaces_aliases():
    reg = MetricsRegistry()
    stats = MonitorCounter()
    stats.alias("failed", "failed_a", "failed_b")
    stats.add("failed_a", 2)
    stats.add("failed_b")
    reg.register_source("server", stats)
    scrape = reg.scrape()
    assert scrape["server.failed"] == 3
    assert scrape["server.failed_a"] == 2


def test_register_source_requires_as_dict():
    reg = MetricsRegistry()
    with pytest.raises(TypeError):
        reg.register_source("bad", object())


def test_render_text_is_sorted_lines():
    reg = MetricsRegistry()
    reg.inc("b_metric")
    reg.inc("a_metric")
    text = reg.render_text()
    lines = text.strip().splitlines()
    assert lines == sorted(lines)
    assert "a_metric 1" in lines


def test_monitor_counter_alias_semantics():
    stats = MonitorCounter()
    stats.alias("total", "x", "y")
    stats.add("x", 2)
    stats.add("y", 3)
    assert stats["total"] == 5
    assert stats.as_dict()["total"] == 5
    with pytest.raises(ValueError):
        stats.add("total")  # aliases are read-only
    with pytest.raises(ValueError):
        stats.alias("x", "z")  # cannot shadow a real counter
    with pytest.raises(ValueError):
        stats.alias("empty")  # needs parts

"""SLO objectives, burn rates, and conservation-law watchdogs."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.credentials.rights import Rights
from repro.errors import ReproError
from repro.obs.metrics import Histogram
from repro.obs.slo import (
    AvailabilityObjective,
    GoodputObjective,
    InvariantObjective,
    LatencyObjective,
    SLOMonitor,
    audit_drop_residual,
)
from repro.server.testbed import Testbed
from repro.sim.kernel import Kernel
from repro.util.clock import VirtualClock


# -- availability ------------------------------------------------------------


def test_availability_idle_is_healthy():
    obj = AvailabilityObjective("lookups", VirtualClock(), target=0.999)
    status = obj.evaluate()
    assert status.ok and status.value == 1.0 and status.burn_rate == 0.0


def test_availability_burn_rate_scales_with_budget_consumption():
    clock = VirtualClock()
    obj = AvailabilityObjective("lookups", clock, target=0.9, window=60.0)
    for _ in range(8):
        obj.record(True)
    obj.record(False)
    obj.record(False)  # 8/10 good = 0.8 < 0.9
    status = obj.evaluate()
    assert not status.ok
    assert status.value == pytest.approx(0.8)
    assert status.burn_rate == pytest.approx(2.0)  # 0.2 consumed / 0.1 budget


def test_availability_window_forgets_old_failures():
    clock = VirtualClock()
    obj = AvailabilityObjective("lookups", clock, target=0.9, window=10.0)
    obj.record(False)
    clock.set(20.0)
    obj.record(True)
    assert obj.evaluate().ok


def test_availability_rejects_bad_target():
    with pytest.raises(ReproError):
        AvailabilityObjective("x", VirtualClock(), target=1.5)
    with pytest.raises(ReproError):
        AvailabilityObjective("x", VirtualClock(), target=0.9, window=0.0)


# -- latency -----------------------------------------------------------------


def test_latency_no_data_is_healthy():
    obj = LatencyObjective("p99", Histogram([10.0]), threshold=100.0)
    assert obj.evaluate().ok


def test_latency_quantile_against_threshold():
    hist = Histogram([10.0, 100.0, 1000.0])
    for _ in range(99):
        hist.observe(5.0)
    hist.observe(500.0)
    ok_obj = LatencyObjective("p50", hist, threshold=50.0, quantile=0.5)
    assert ok_obj.evaluate().ok
    bad = LatencyObjective("p99", hist, threshold=100.0, quantile=0.995)
    status = bad.evaluate()
    assert not status.ok
    assert status.value == 1000.0
    assert status.burn_rate == pytest.approx(10.0)


def test_latency_callable_histogram_reads_fresh_cell_each_sweep():
    cells = {"h": None}
    obj = LatencyObjective("p99", lambda: cells["h"], threshold=100.0)
    assert obj.evaluate().ok  # None -> no data
    hist = Histogram([10.0])
    hist.observe(5000.0)
    cells["h"] = hist
    assert not obj.evaluate().ok


# -- goodput -----------------------------------------------------------------


def test_goodput_not_armed_until_first_event():
    clock = VirtualClock()
    obj = GoodputObjective("completions", clock, target=10.0, window=10.0)
    assert obj.evaluate().ok  # unarmed: a world that hasn't started
    obj.record()
    clock.set(20.0)  # the only event slid out of the window
    status = obj.evaluate()
    assert not status.ok
    assert status.burn_rate == float("inf")


def test_goodput_rate_over_window():
    clock = VirtualClock()
    obj = GoodputObjective("completions", clock, target=1.0, window=10.0)
    for i in range(20):
        clock.set(i * 0.5)
        obj.record()
    assert obj.evaluate().ok


# -- invariants --------------------------------------------------------------


def test_invariant_zero_is_ok_nonzero_trips():
    box = {"residual": 0}
    obj = InvariantObjective("conservation", lambda: box["residual"])
    assert obj.evaluate().ok
    box["residual"] = -3
    status = obj.evaluate()
    assert not status.ok
    assert status.burn_rate == 3.0


# -- the monitor -------------------------------------------------------------


def test_monitor_evaluate_violations_and_assert():
    monitor = SLOMonitor(VirtualClock())
    monitor.add_availability("avail", target=0.9)
    box = {"residual": 1}
    monitor.add_invariant("law", lambda: box["residual"], detail="broken law")
    assert not monitor.ok()
    assert [s.name for s in monitor.violations()] == ["law"]
    with pytest.raises(AssertionError, match="law"):
        monitor.assert_ok()
    assert "broken law" in monitor.render()
    box["residual"] = 0
    monitor.assert_ok()
    assert monitor.as_dict()["objectives"] == 2


def test_monitor_watch_sweeps_on_daemon_tick():
    kernel = Kernel()
    monitor = SLOMonitor(kernel.clock)
    box = {"residual": 0}
    monitor.add_invariant("law", lambda: box["residual"])
    monitor.watch(kernel, period=1.0)
    with pytest.raises(ReproError):
        monitor.watch(kernel, period=1.0)  # already watching
    kernel.schedule(2.5, lambda: box.update(residual=5))
    kernel.schedule(4.5, lambda: box.update(residual=0))
    kernel.run(until=6.5)
    assert monitor.sweeps == 6
    assert monitor.tripped() and monitor.tripped("law")
    assert not monitor.tripped("other")
    times = [t for t, _ in monitor.violation_history]
    assert times == [3.0, 4.0]  # violated exactly while the residual held
    monitor.unwatch()


# -- the audit saturation watchdog (whole-world) -----------------------------


@register_trusted_agent_class
class _ChattyAgent(Agent):
    """Floods its host's audit log via the always-allowed log() call."""

    def run(self):
        for i in range(self.n):
            self.host.log(f"note {i}")
        self.complete("done")


def test_saturated_audit_log_trips_the_slo_watchdog():
    bed = Testbed(1, seed=31, server_kwargs={"audit_capacity": 32})
    monitor = bed.slo_monitor()
    monitor.watch(bed.kernel, period=0.001)
    agent = _ChattyAgent()
    agent.n = 200
    bed.launch(agent, Rights.none())
    bed.run()
    # The one-server world drains in under one watchdog period; daemon
    # sweeps need an explicit time bound to keep firing (continuous
    # monitoring semantics: the drop counter never resets, so the next
    # sweep catches it whenever it runs).
    bed.run(until=bed.kernel.now() + 0.01)
    assert bed.home.audit.dropped > 0
    assert monitor.tripped("audit_drops")
    # The same signal is a registered metric on the telemetry plane.
    scrape = bed.scrape()
    key = f"audit.dropped{{server={bed.home.name}}}"
    assert scrape[key] == bed.home.audit.dropped
    unit_scrape = bed.home.telemetry.snapshot().counters
    assert unit_scrape[key] == bed.home.audit.dropped
    occupancy = bed.home.audit.as_dict()["occupancy"]
    assert occupancy == pytest.approx(1.0)
    monitor.unwatch()


def test_unsaturated_audit_log_keeps_watchdog_quiet():
    bed = Testbed(1, seed=32)
    monitor = bed.slo_monitor()
    monitor.watch(bed.kernel, period=0.001)
    agent = _ChattyAgent()
    agent.n = 3
    bed.launch(agent, Rights.none())
    bed.run()
    bed.run(until=bed.kernel.now() + 0.01)
    assert bed.home.audit.dropped == 0
    assert not monitor.tripped("audit_drops")
    monitor.unwatch()


def test_agent_conservation_law_holds_at_quiescence():
    bed = Testbed(3, seed=33)

    @register_trusted_agent_class
    class _Hopper(Agent):
        def run(self):
            while self.tour:
                self.go(self.tour.pop(0), "run")
            self.complete("done")

    agent = _Hopper()
    agent.tour = [s.name for s in bed.servers][1:]
    bed.launch(agent, Rights.none())
    bed.run()
    monitor = bed.slo_monitor()
    statuses = {s.name: s for s in monitor.evaluate()}
    assert statuses["agent_conservation"].ok
    assert statuses["audit_drops"].ok


def test_audit_drop_residual_sums_across_fleet():
    class _Stub:
        class audit:
            dropped = 2

    residual = audit_drop_residual([_Stub(), _Stub()])
    assert residual() == 4

"""FlightRecorder reconstructs the Fig. 6 protocol and explains denials.

One server exports a mailbox buffer behind a two-rule policy.  A "lucky"
agent binds and uses it — the recorder must reassemble the six protocol
steps in causal order.  An "unlucky" agent matches a rule that grants it
nothing usable — the recorder must surface *which* policy rule denied it
and tie the span to the server's :class:`AuditRecord`.
"""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import AccessDeniedError
from repro.naming.urn import URN
from repro.obs.recorder import PROTOCOL_STEP_NAMES
from repro.server.testbed import Testbed

MAILBOX = "urn:resource:site0.net/mailbox"
LUCKY = "urn:agent:umn.edu/owner/lucky"
UNLUCKY = "urn:agent:umn.edu/owner/unlucky"


@register_trusted_agent_class
class MailboxUser(Agent):
    """Binds the mailbox and uses it (steps 2-6)."""

    def run(self):
        proxy = self.host.get_resource(MAILBOX)
        proxy.put("ping")
        self.complete({"size": proxy.size()})


@register_trusted_agent_class
class MailboxHopeful(Agent):
    """Requests the mailbox, expects the policy to say no."""

    def run(self):
        try:
            self.host.get_resource(MAILBOX)
        except AccessDeniedError as exc:
            self.complete({"denied": str(exc)})
            return
        self.complete({"denied": ""})


def build_world():
    bed = Testbed(1)
    recorder = bed.start_tracing()
    policy = SecurityPolicy(
        rules=[
            PolicyRule(
                "agent", LUCKY,
                Rights.of("Buffer.put", "Buffer.size", "Buffer.resource_*"),
                rule_id="mailbox-open",
            ),
            # Matches the unlucky agent but offers nothing a Buffer
            # exports: a matched-yet-empty grant, not default-deny.
            PolicyRule(
                "agent", UNLUCKY,
                Rights.of("Printer.*"),
                rule_id="wrong-resource",
            ),
        ]
    )
    mailbox = Buffer(
        URN.parse(MAILBOX),
        URN.parse("urn:principal:site0.net/postmaster"),
        policy,
        capacity=4,
    )
    bed.home.install_resource(mailbox)  # Fig. 6 step 1, traced
    lucky = bed.launch(MailboxUser(), Rights.of("Buffer.*"),
                       agent_local="lucky")
    unlucky = bed.launch(MailboxHopeful(), Rights.all(),
                         agent_local="unlucky")
    bed.run()
    bed.stop_tracing()
    return bed, recorder, lucky, unlucky


@pytest.fixture(scope="module")
def world():
    bed, recorder, lucky, unlucky = build_world()
    yield bed, recorder, lucky, unlucky
    from repro.obs import runtime

    runtime.uninstall()


def test_six_steps_reconstructed_in_order(world):
    _, recorder, lucky, _ = world
    steps = recorder.protocol_steps(lucky.name)
    numbers = [n for n, _ in steps]
    # Steps 1-5 exactly once each, then the proxy invocations (put, size).
    assert numbers[:5] == [1, 2, 3, 4, 5]
    assert numbers[5:] and set(numbers[5:]) == {6}
    names = [span.name for _, span in steps[:5]]
    assert names == [name for _, name in PROTOCOL_STEP_NAMES[:5]]
    # Steps 2-6 share the agent's trace and start in protocol order.
    # (Step 1 happened at install time, before the agent existed, so it
    # lives in its own trace — that is the paper's ordering too.)
    recorder.assert_causal_order(span for _, span in steps[1:])
    invoked = {span.attributes["method"] for n, span in steps if n == 6}
    assert invoked == {"put", "size"}


def test_granted_request_names_its_rule(world):
    bed, recorder, lucky, _ = world
    (span,) = recorder.spans_where(
        "protocol.get_proxy", agent=str(lucky.name)
    )
    assert span.status == "ok"
    assert span.attributes["matched_rules"] == ["mailbox-open"]
    assert span.attributes["enabled_methods"] > 0
    # The ALLOW audit record is stamped with the very same span.
    records = bed.home.audit.by_span(span.span_id)
    assert any(
        r.operation == "resource.get_proxy" and r.allowed for r in records
    )


def test_denied_request_records_the_denying_rule(world):
    bed, recorder, _, unlucky = world
    (span,) = recorder.spans_where(
        "protocol.get_proxy", agent=str(unlucky.name)
    )
    assert span.status == "error"
    assert span.attributes["deny_rules"] == ["wrong-resource"]
    assert "wrong-resource" in span.status_detail
    # The deny reason distinguishes matched-but-empty from default-deny.
    assert "default-deny" not in span.status_detail
    # Span <-> AuditRecord tie: the DENY record carries this span's id
    # and the same explanation the span closed with.
    records = bed.home.audit.by_span(span.span_id)
    denies = [
        r for r in records
        if r.operation == "resource.get_proxy" and not r.allowed
    ]
    assert len(denies) == 1
    assert denies[0].detail == span.status_detail
    # The enclosing request span failed too (the error propagated).
    (request,) = recorder.spans_where(
        "protocol.request", agent=str(unlucky.name)
    )
    assert request.status == "error"
    assert recorder.is_ancestor(request, span)


def test_both_agents_still_completed(world):
    bed, _, lucky, unlucky = world
    assert bed.home.resident_status(lucky.name)["status"] == "completed"
    assert bed.home.resident_status(unlucky.name)["status"] == "completed"

"""Observability tests share one invariant: leave the switchboard off.

``repro.obs.runtime`` is process-global by design, so every test in this
package uninstalls on the way out even when it fails mid-flight.
"""

from __future__ import annotations

import pytest

from repro.obs import runtime


@pytest.fixture(autouse=True)
def _uninstall_observability():
    yield
    runtime.uninstall()

"""FlightRecorder.critical_path: latency decomposition by span category."""

from __future__ import annotations

import pytest

from repro.obs.recorder import SEGMENT_CATEGORIES, FlightRecorder
from repro.obs.trace import Tracer
from repro.util.clock import VirtualClock


def _world():
    clock = VirtualClock()
    tracer = Tracer(clock=clock, service="test")
    return clock, tracer, FlightRecorder(tracer)


def _span(tracer, clock, name, start, end, parent=None):
    clock.set(start)
    span = tracer.start_span(name, parent=parent)
    tracer.end_span(span, at=end)
    return span


def test_empty_trace_decomposes_to_zero():
    _, _, recorder = _world()
    cp = recorder.critical_path([])
    assert cp["total"] == 0.0
    assert cp["segments"] == {}


def test_segments_partition_the_trace_exactly():
    clock, tracer, recorder = _world()
    root = _span(tracer, clock, "agent.tour", 0.0, 10.0)
    _span(tracer, clock, "secure.handshake", 1.0, 3.0, parent=root)
    _span(tracer, clock, "rpc.call", 3.0, 7.0, parent=root)
    cp = recorder.critical_path(root.trace_id)
    assert cp["total"] == pytest.approx(10.0)
    assert sum(cp["segments"].values()) == pytest.approx(10.0)
    assert cp["segments"]["crypto"] == pytest.approx(2.0)
    assert cp["segments"]["network"] == pytest.approx(4.0)
    assert cp["segments"]["compute"] == pytest.approx(4.0)  # uncovered root


def test_innermost_span_wins_attribution():
    clock, tracer, recorder = _world()
    outer = _span(tracer, clock, "rpc.call", 0.0, 8.0)
    _span(tracer, clock, "secure.encrypt", 2.0, 6.0, parent=outer)
    cp = recorder.critical_path(outer.trace_id)
    assert cp["segments"]["crypto"] == pytest.approx(4.0)
    assert cp["segments"]["network"] == pytest.approx(4.0)


def test_gaps_between_spans_are_reported_as_gap():
    clock, tracer, recorder = _world()
    a = _span(tracer, clock, "rpc.call", 0.0, 2.0)
    _span(tracer, clock, "rpc.call", 5.0, 6.0, parent=a.context)
    cp = recorder.critical_path(a.trace_id)
    assert cp["segments"]["gap"] == pytest.approx(3.0)
    assert cp["segments"]["network"] == pytest.approx(3.0)
    assert cp["total"] == pytest.approx(6.0)


def test_by_span_name_breakdown_sums_to_covered_time():
    clock, tracer, recorder = _world()
    root = _span(tracer, clock, "transfer.send", 0.0, 5.0)
    _span(tracer, clock, "secure.call", 1.0, 2.0, parent=root)
    cp = recorder.critical_path(root.trace_id)
    assert cp["by_span_name"]["transfer.send"] == pytest.approx(4.0)
    assert cp["by_span_name"]["secure.call"] == pytest.approx(1.0)


def test_category_prefix_table():
    from repro.obs.recorder import categorize_span

    assert categorize_span("secure.handshake") == "crypto"
    assert categorize_span("rpc.call") == "network"
    assert categorize_span("transfer.send") == "queue"
    assert categorize_span("protocol.bind") == "supervision"
    assert categorize_span("agent.resident") == "compute"
    assert categorize_span("exotic.thing") == "other"
    assert dict(SEGMENT_CATEGORIES)["sec"] == "crypto"


def test_five_hop_tour_decomposition_sums_to_tour_latency():
    from repro.agents.agent import Agent, register_trusted_agent_class
    from repro.credentials.rights import Rights
    from repro.server.testbed import Testbed

    @register_trusted_agent_class
    class _FiveHopper(Agent):
        def run(self):
            while self.tour:
                self.go(self.tour.pop(0), "run")
            self.complete("done")

    bed = Testbed(6, seed=44)
    recorder = bed.start_tracing()
    agent = _FiveHopper()
    agent.tour = [s.name for s in bed.servers][1:]
    image = bed.launch(agent, Rights.none())
    bed.run()
    bed.stop_tracing()
    cp = recorder.critical_path(image.name)
    assert cp["total"] > 0
    assert sum(cp["segments"].values()) == pytest.approx(cp["total"])
    assert "gap" not in cp["segments"]  # a tour is continuously spanned
    assert cp["segments"].get("network", 0) > 0
    assert cp["segments"].get("crypto", 0) > 0

"""The ``python -m repro telemetry`` file tools (no testbed required)."""

from __future__ import annotations

import io
import json

from repro.__main__ import (
    chrome_from_jsonl,
    main,
    telemetry_diff,
    telemetry_print,
)
from repro.obs.aggregate import TelemetryUnit
from repro.obs.trace import Tracer
from repro.util.clock import VirtualClock


def _snapshot_file(tmp_path, name, **counters):
    unit = TelemetryUnit("urn:server:test/s0", VirtualClock(), server="s0")
    for key, value in counters.items():
        unit.inc(key, value)
    path = tmp_path / name
    path.write_text(unit.snapshot().to_json())
    return path


def test_print_renders_a_metric_snapshot(tmp_path):
    path = _snapshot_file(tmp_path, "snap.json", requests=7)
    out = io.StringIO()
    assert telemetry_print(str(path), out=out) == 0
    text = out.getvalue()
    assert text.startswith("# origin=urn:server:test/s0 ")
    assert "requests{server=s0} 7" in text


def test_print_renders_a_plain_scrape_dict(tmp_path):
    path = tmp_path / "scrape.json"
    path.write_text(json.dumps({"requests{server=s0}": 3, "load": 0.5}))
    out = io.StringIO()
    assert telemetry_print(str(path), out=out) == 0
    assert "requests{server=s0} 3" in out.getvalue()


def test_diff_reports_counter_movement(tmp_path):
    old = _snapshot_file(tmp_path, "old.json", requests=2, still=1)
    new = _snapshot_file(tmp_path, "new.json", requests=9, still=1)
    out = io.StringIO()
    assert telemetry_diff(str(old), str(new), out=out) == 0
    delta = json.loads(out.getvalue())
    assert delta == {"requests{server=s0}": 7}


def test_diff_refuses_plain_dicts(tmp_path):
    snap = _snapshot_file(tmp_path, "snap.json", requests=1)
    plain = tmp_path / "plain.json"
    plain.write_text(json.dumps({"requests": 1}))
    assert telemetry_diff(str(snap), str(plain), out=io.StringIO()) == 2


def test_chrome_from_jsonl_mirrors_tracer_export(tmp_path):
    clock = VirtualClock()
    tracer = Tracer(clock=clock, service="test")
    span = tracer.start_span("rpc.call", server="s0")
    tracer.add_event("sent", bytes=12)
    clock.set(0.25)
    tracer.end_span(span)
    jsonl = tracer.export_jsonl()
    native = tracer.export_chrome()
    rebuilt = chrome_from_jsonl(jsonl.splitlines())
    assert rebuilt["displayTimeUnit"] == "ms"
    x = [e for e in rebuilt["traceEvents"] if e["ph"] == "X"]
    assert len(x) == 1
    assert x[0]["name"] == "rpc.call"
    assert x[0]["pid"] == "s0"
    assert x[0]["dur"] == 0.25 * 1e6
    native_x = [e for e in native["traceEvents"] if e["ph"] == "X"]
    assert x[0]["ts"] == native_x[0]["ts"]
    assert x[0]["dur"] == native_x[0]["dur"]
    instants = [e for e in rebuilt["traceEvents"] if e["ph"] == "i"]
    assert instants[0]["name"] == "rpc.call/sent"
    assert instants[0]["args"] == {"bytes": 12}


def test_chrome_handles_open_spans_and_blank_lines():
    lines = [
        "",
        json.dumps({
            "trace_id": "trace-0001", "span_id": "span-000001",
            "parent_id": None, "name": "agent.tour",
            "start": 1.0, "end": None, "status": "open",
            "attributes": {},
        }),
    ]
    doc = chrome_from_jsonl(lines)
    assert doc["traceEvents"][0]["dur"] == 0.0


def test_main_chrome_writes_default_output_path(tmp_path, capsys):
    clock = VirtualClock()
    tracer = Tracer(clock=clock, service="test")
    span = tracer.start_span("secure.call")
    clock.set(0.1)
    tracer.end_span(span)
    trace = tmp_path / "tour.jsonl"
    tracer.export_jsonl(str(trace))
    assert main(["telemetry", "chrome", str(trace)]) == 0
    out_path = tmp_path / "tour.chrome.json"
    assert out_path.exists()
    doc = json.loads(out_path.read_text())
    assert doc["traceEvents"][0]["name"] == "secure.call"
    assert str(out_path) in capsys.readouterr().out


def test_main_dispatches_print(tmp_path, capsys):
    path = _snapshot_file(tmp_path, "snap.json", ops=4)
    assert main(["telemetry", "print", str(path)]) == 0
    assert "ops{server=s0} 4" in capsys.readouterr().out

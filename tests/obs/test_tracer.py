"""Tracer unit tests: span lifecycle, context propagation, exports."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import runtime
from repro.obs.trace import Span, SpanContext, Tracer
from repro.util.clock import VirtualClock


def make_tracer() -> tuple[Tracer, VirtualClock]:
    clock = VirtualClock()
    return Tracer(clock=clock), clock


def test_span_nesting_and_parentage():
    tracer, clock = make_tracer()
    with tracer.span("outer", server="s0") as outer:
        clock.advance(1.0)
        with tracer.span("inner") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
            assert tracer.current_span() is inner
        assert tracer.current_span() is outer
    assert tracer.current_span() is None
    assert not tracer.open_spans()
    assert outer.status == "ok" and inner.status == "ok"
    assert outer.duration == pytest.approx(1.0)


def test_sibling_roots_get_distinct_traces():
    tracer, _ = make_tracer()
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    a, b = tracer.finished
    assert a.trace_id != b.trace_id
    assert a.parent_id is None and b.parent_id is None


def test_explicit_parent_context_joins_the_trace():
    tracer, _ = make_tracer()
    with tracer.span("origin") as origin:
        carried = origin.context.to_attributes()
    ctx = SpanContext.from_attributes(carried)
    assert ctx == origin.context
    with tracer.span("continuation", parent=ctx) as cont:
        assert cont.trace_id == origin.trace_id
        assert cont.parent_id == origin.span_id


@pytest.mark.parametrize(
    "raw",
    [
        None,
        "not a dict",
        {},
        {"trace_id": "t"},
        {"trace_id": 7, "span_id": "s"},
        {"trace_id": "t", "span_id": ""},
        {"trace_id": "x" * 65, "span_id": "s"},
    ],
)
def test_malformed_wire_context_is_rejected_not_raised(raw):
    assert SpanContext.from_attributes(raw) is None


def test_exception_closes_span_with_error_status():
    tracer, _ = make_tracer()
    with pytest.raises(ValueError):
        with tracer.span("doomed"):
            raise ValueError("boom")
    (span,) = tracer.finished
    assert span.status == "error"
    assert "ValueError: boom" in span.status_detail
    assert not tracer.open_spans()


def test_explicit_status_survives_exception_exit():
    tracer, _ = make_tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("denied") as span:
            span.set_status("error", "policy said no")
            raise RuntimeError("following the denial")
    (span,) = tracer.finished
    assert span.status_detail == "policy said no"


def test_end_span_is_idempotent():
    tracer, clock = make_tracer()
    span = tracer.start_span("once")
    tracer.end_span(span)
    first_end = span.end
    clock.advance(5.0)
    tracer.end_span(span)
    assert span.end == first_end
    assert len(tracer.finished) == 1


def test_events_attach_to_the_current_span():
    tracer, clock = make_tracer()
    tracer.add_event("orphan")  # no current span: dropped, no error
    with tracer.span("op") as span:
        clock.advance(0.5)
        tracer.add_event("retry", attempt=1)
    assert span.event_names() == ["retry"]
    (t, _, attrs) = span.events[0]
    assert t == pytest.approx(0.5) and attrs == {"attempt": 1}


def test_per_thread_stacks_do_not_interleave():
    tracer, _ = make_tracer()
    seen: dict[str, str] = {}
    with tracer.span("main-op") as main_span:
        def other():
            with tracer.span("other-op") as other_span:
                seen["trace"] = other_span.trace_id
                seen["parent"] = str(other_span.parent_id)
        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert tracer.current_span() is main_span
    # The other thread had no current span, so it rooted a new trace.
    assert seen["trace"] != main_span.trace_id
    assert seen["parent"] == "None"


def test_adopt_context_reroots_before_children():
    tracer, _ = make_tracer()
    with tracer.span("origin") as origin:
        ctx = origin.context
    with tracer.span("arrival") as arrival:
        arrival.adopt_context(ctx)
        with tracer.span("child") as child:
            assert child.trace_id == origin.trace_id
    assert arrival.trace_id == origin.trace_id
    assert arrival.parent_id == origin.span_id


def test_ids_are_deterministic():
    t1, _ = make_tracer()
    t2, _ = make_tracer()
    for t in (t1, t2):
        with t.span("a"):
            with t.span("b"):
                pass
    assert [s.span_id for s in t1.finished] == [s.span_id for s in t2.finished]
    assert [s.trace_id for s in t1.finished] == [s.trace_id for s in t2.finished]


def test_export_jsonl_round_trips(tmp_path):
    tracer, clock = make_tracer()
    with tracer.span("op", server="s0") as span:
        clock.advance(2.0)
        span.set_attribute("answer", 42)
    path = tmp_path / "trace.jsonl"
    tracer.export_jsonl(str(path))
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 1
    doc = json.loads(lines[0])
    assert doc["name"] == "op"
    assert doc["attributes"] == {"server": "s0", "answer": 42}
    assert doc["end"] == pytest.approx(2.0)


def test_export_chrome_shape(tmp_path):
    tracer, clock = make_tracer()
    with tracer.span("rpc.call", server="s0"):
        tracer.add_event("retry", attempt=1)
        clock.advance(0.25)
    tracer.annotate("fault.link_down", "a<->b", injected=True)
    path = tmp_path / "trace.json"
    doc = tracer.export_chrome(str(path))
    assert json.loads(path.read_text()) == doc
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert len(complete) == 1 and complete[0]["pid"] == "s0"
    assert complete[0]["dur"] == pytest.approx(0.25 * 1e6)
    names = {e["name"] for e in instants}
    assert "rpc.call/retry" in names and "fault.link_down" in names
    fault = next(e for e in instants if e["name"] == "fault.link_down")
    assert fault["pid"] == "faults"


def test_runtime_install_flags_and_partial_replace():
    from repro.obs.metrics import MetricsRegistry

    assert not runtime.ENABLED
    tracer, _ = make_tracer()
    runtime.install(tracer=tracer)
    assert runtime.TRACING and not runtime.METRICS_ON and runtime.ENABLED
    runtime.install(metrics=MetricsRegistry())
    assert runtime.TRACING and runtime.METRICS_ON  # tracer untouched
    assert runtime.TRACER is tracer
    runtime.uninstall()
    assert not runtime.ENABLED and runtime.TRACER is None

"""Property-based tests of the code verifier and namespace loader.

Two directions:

* **soundness of acceptance** — randomly generated programs from a benign
  grammar are accepted, load, and compute what plain ``exec`` computes;
* **completeness of rejection** — splicing any banned construct into an
  otherwise benign program flips the verdict to rejected.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodeVerificationError, NamespaceError
from repro.sandbox.namespace import AgentNamespace
from repro.sandbox.verifier import verify_source

# ---------------------------------------------------------------------------
# A tiny grammar of benign agent-ish programs
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "total", "value", "acc"])
_numbers = st.integers(min_value=0, max_value=99)


@st.composite
def benign_expr(draw, depth=0):
    if depth > 2:
        return str(draw(_numbers))
    choice = draw(st.integers(min_value=0, max_value=4))
    if choice == 0:
        return str(draw(_numbers))
    if choice == 1:
        left = draw(benign_expr(depth=depth + 1))
        right = draw(benign_expr(depth=depth + 1))
        op = draw(st.sampled_from(["+", "-", "*"]))
        return f"({left} {op} {right})"
    if choice == 2:
        inner = draw(benign_expr(depth=depth + 1))
        fn = draw(st.sampled_from(["abs", "min", "max"]))
        second = draw(_numbers)
        return f"{fn}({inner}, {second})" if fn != "abs" else f"abs({inner})"
    if choice == 3:
        n = draw(st.integers(min_value=1, max_value=5))
        return f"sum(range({n}))"
    return f"len([{draw(_numbers)}, {draw(_numbers)}])"


@st.composite
def benign_program(draw):
    lines = []
    result_name = draw(_names)
    lines.append(f"{result_name} = {draw(benign_expr())}")
    n_statements = draw(st.integers(min_value=0, max_value=3))
    for _ in range(n_statements):
        name = draw(_names)
        lines.append(f"{name} = {draw(benign_expr())}")
        if draw(st.booleans()):
            lines.append(f"{result_name} = {result_name} + {name}")
    lines.append(f"RESULT = {result_name}")
    return "\n".join(lines) + "\n"


@settings(max_examples=100, deadline=None)
@given(benign_program())
def test_property_benign_programs_accepted_and_faithful(source):
    verify_source(source)  # accepted
    ns = AgentNamespace("fuzz")
    ns.load(source)
    reference: dict = {}
    exec(source, reference)  # noqa: S102 - trusted: our own generator
    assert ns.get("RESULT") == reference["RESULT"]


_BANNED_SNIPPETS = [
    "import os",
    "from socket import socket",
    "x = eval",
    "x = exec",
    "x = __import__",
    "x = open('/etc/passwd')",
    "x = getattr(a, 'b')",
    "x = (1).__class__",
    "x = obj._private",
    "x = globals()",
    "x = type(1)",
    "__builtins__ = {}",
    "async def f():\n    pass",
]


@settings(max_examples=100, deadline=None)
@given(
    benign_program(),
    st.sampled_from(_BANNED_SNIPPETS),
    st.sampled_from(["prefix", "suffix"]),
)
def test_property_any_banned_splice_rejected(source, snippet, where):
    spliced = (
        snippet + "\n" + source if where == "prefix" else source + snippet + "\n"
    )
    with pytest.raises(CodeVerificationError):
        verify_source(spliced)


@settings(max_examples=50, deadline=None)
@given(benign_program(), st.sampled_from(["Agent", "host", "Resource"]))
def test_property_trusted_names_cannot_be_shadowed(source, trusted_name):
    ns = AgentNamespace("fuzz", trusted={trusted_name: object()})
    spliced = source + f"{trusted_name} = 'impostor'\n"
    with pytest.raises(NamespaceError):
        ns.load(spliced)
    assert not isinstance(ns.get(trusted_name), str)


@settings(max_examples=50, deadline=None)
@given(benign_program(), benign_program())
def test_property_namespaces_never_leak(source_a, source_b):
    ns_a = AgentNamespace("a")
    ns_b = AgentNamespace("b")
    ns_a.load(source_a)
    ns_b.load("UNTOUCHED = 1\n" + source_b)
    # Names defined in A exist in A; B's extra marker never appears in A.
    assert "RESULT" in ns_a
    assert "UNTOUCHED" not in ns_a

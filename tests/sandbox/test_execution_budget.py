"""Tests for the loop-iteration execution budget (Telescript permits)."""

from __future__ import annotations

import ast

import pytest

from repro.errors import ExecutionBudgetExceeded
from repro.sandbox.instrument import (
    LOOP_CHECK_NAME,
    LoopBudget,
    instrument_loops,
)
from repro.sandbox.namespace import AgentNamespace
from repro.sandbox.verifier import VerifierPolicy


class TestLoopBudget:
    def test_counts_and_raises(self):
        budget = LoopBudget(3)
        budget.check()
        budget.check()
        budget.check()
        with pytest.raises(ExecutionBudgetExceeded):
            budget.check()
        assert budget.used == 4

    def test_reset(self):
        budget = LoopBudget(2)
        budget.check()
        budget.reset()
        assert budget.used == 0
        budget.check()
        budget.check()  # fine again

    def test_positive_limit_required(self):
        with pytest.raises(ValueError):
            LoopBudget(0)


class TestInstrumentation:
    def count_hooks(self, source: str) -> int:
        tree = instrument_loops(ast.parse(source))
        return sum(
            1
            for node in ast.walk(tree)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == LOOP_CHECK_NAME
        )

    def test_while_and_for_instrumented(self):
        assert self.count_hooks("while x:\n    pass\n") == 1
        assert self.count_hooks("for i in range(3):\n    pass\n") == 1

    def test_nested_loops_each_instrumented(self):
        source = (
            "for i in range(3):\n"
            "    while j:\n"
            "        for k in items:\n"
            "            pass\n"
        )
        assert self.count_hooks(source) == 3

    def test_loops_inside_functions_instrumented(self):
        source = (
            "def f():\n"
            "    while True:\n"
            "        pass\n"
        )
        assert self.count_hooks(source) == 1

    def test_loop_free_code_untouched(self):
        assert self.count_hooks("x = 1\ny = x + 2\n") == 0


def tight_namespace(limit: int) -> AgentNamespace:
    policy = VerifierPolicy(max_loop_iterations=limit)
    return AgentNamespace("budgeted", policy=policy)


class TestEnforcement:
    def test_infinite_while_stopped(self):
        ns = tight_namespace(1000)
        with pytest.raises(ExecutionBudgetExceeded):
            ns.load("while True:\n    pass\n")
        assert ns.loop_iterations_used > 1000

    def test_infinite_loop_in_function(self):
        ns = tight_namespace(500)
        ns.load("def spin():\n    n = 0\n    while True:\n        n = n + 1\n")
        with pytest.raises(ExecutionBudgetExceeded):
            ns.get("spin")()

    def test_legitimate_loops_unaffected(self):
        ns = tight_namespace(10_000)
        ns.load(
            "total = 0\n"
            "for i in range(100):\n"
            "    for j in range(10):\n"
            "        total = total + 1\n"
        )
        assert ns.get("total") == 1000
        assert ns.loop_iterations_used == 1100  # 100 outer + 1000 inner

    def test_budget_resets_between_entries(self):
        ns = tight_namespace(150)
        ns.load(
            "def work():\n"
            "    acc = 0\n"
            "    for i in range(100):\n"
            "        acc = acc + i\n"
            "    return acc\n"
        )
        work = ns.get("work")
        assert work() == 4950
        ns.reset_execution_budget()
        assert work() == 4950  # would blow the budget without the reset

    def test_agent_cannot_touch_the_hook(self):
        from repro.errors import CodeVerificationError

        ns = tight_namespace(100)
        for evil in (
            f"{LOOP_CHECK_NAME}()\n",
            f"x = {LOOP_CHECK_NAME}\n",
            f"{LOOP_CHECK_NAME} = None\n",
        ):
            with pytest.raises(CodeVerificationError):
                ns.load(evil)


class TestServerIntegration:
    def test_spinning_agent_terminated_not_hung(self):
        from repro.credentials.rights import Rights
        from repro.sandbox.verifier import VerifierPolicy
        from repro.server.admission import AdmissionPolicy
        from repro.server.testbed import Testbed

        bed = Testbed(1)
        bed.home.admission.verifier_policy = VerifierPolicy(
            max_loop_iterations=10_000
        )
        image = bed.launch_source(
            "class Spinner(Agent):\n"
            "    def run(self):\n"
            "        n = 0\n"
            "        while True:\n"
            "            n = n + 1\n",
            "Spinner",
            Rights.all(),
        )
        bed.run()  # returns — the spin was bounded
        status = bed.home.resident_status(image.name)
        assert status["status"] == "terminated"
        assert bed.home.stats["agents_killed_security"] == 1
        retire = bed.home.audit.records(operation="agent.retire")[-1]
        assert "execution budget" in retire.detail

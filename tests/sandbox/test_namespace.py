"""Tests for per-agent namespaces (class-loader analogue)."""

from __future__ import annotations

import pytest

from repro.errors import CodeVerificationError, NamespaceError
from repro.sandbox.namespace import AgentNamespace


class TrustedResource:
    """Stands in for a privileged server class."""

    marker = "trusted"


def test_load_and_get():
    ns = AgentNamespace("agent-1")
    defined = ns.load("def greet(name):\n    return 'hi ' + name\n")
    assert "greet" in defined
    assert ns.get("greet")("bob") == "hi bob"
    assert "greet" in ns


def test_rejected_code_never_executes():
    ns = AgentNamespace("agent-1")
    with pytest.raises(CodeVerificationError):
        ns.load("import os\nos.remove('/')\n")
    assert ns.loaded_sources == 0


def test_trusted_bindings_visible():
    ns = AgentNamespace("agent-1", trusted={"Resource": TrustedResource})
    ns.load("def kind():\n    return Resource.marker\n")
    assert ns.get("kind")() == "trusted"


def test_impostor_class_rejected():
    """Section 5.3: agents cannot install impostor classes over trusted names."""
    ns = AgentNamespace("agent-1", trusted={"Resource": TrustedResource})
    with pytest.raises(NamespaceError, match="shadow trusted name.*Resource"):
        ns.load("class Resource:\n    marker = 'evil'\n")
    # The trusted binding is untouched.
    assert ns.get("Resource") is TrustedResource


def test_impostor_via_assignment_rejected():
    ns = AgentNamespace("agent-1", trusted={"host": object()})
    with pytest.raises(NamespaceError, match="shadow"):
        ns.load("host = 'mine now'\n")


def test_impostor_via_import_alias_rejected():
    ns = AgentNamespace("agent-1", trusted={"math": "not-the-module"})
    with pytest.raises(NamespaceError, match="shadow"):
        ns.load("import math\n")


def test_namespaces_are_isolated():
    ns1 = AgentNamespace("agent-1")
    ns2 = AgentNamespace("agent-2")
    ns1.load("secret = 'agent one data'\n")
    assert "secret" not in ns2
    with pytest.raises(NamespaceError):
        ns2.get("secret")


def test_builtins_are_per_namespace_copies():
    ns1 = AgentNamespace("agent-1")
    ns2 = AgentNamespace("agent-2")
    # Agent 1 rebinding a builtin name locally must not affect agent 2.
    ns1.load("len = 'shadowed'\n")
    ns2.load("n = len([1, 2, 3])\n")
    assert ns2.get("n") == 3


def test_restricted_builtins_no_dangerous_names():
    ns = AgentNamespace("agent-1")
    ns.load("x = 1\n")
    builtins_table = ns._globals["__builtins__"]
    for dangerous in ("eval", "exec", "open", "getattr", "type", "compile"):
        assert dangerous not in builtins_table


def test_allowed_import_works_at_runtime():
    ns = AgentNamespace("agent-1")
    ns.load("import math\nroot = math.sqrt(16)\n")
    assert ns.get("root") == 4.0


def test_disallowed_import_blocked_at_runtime_too():
    """Defence in depth: even if the verifier allowed it, __import__ refuses."""
    ns = AgentNamespace("agent-1")
    with pytest.raises(NamespaceError, match="import of 'os' denied"):
        ns._restricted_import("os")


def test_trusted_dunder_binding_rejected():
    with pytest.raises(NamespaceError, match="dunder"):
        AgentNamespace("agent-1", trusted={"__class__": object})


def test_multiple_loads_accumulate():
    ns = AgentNamespace("agent-1")
    ns.load("a = 1\n")
    ns.load("b = a + 1\n")  # second load sees first load's names
    assert ns.get("b") == 2
    assert ns.loaded_sources == 2


def test_agent_class_instantiation():
    ns = AgentNamespace("agent-1", trusted={"AgentBase": TrustedResource})
    ns.load(
        "class Shopper(AgentBase):\n"
        "    def best(self, prices):\n"
        "        return min(prices)\n"
    )
    shopper = ns.get("Shopper")()
    assert shopper.best([3, 1, 2]) == 1
    assert shopper.marker == "trusted"  # inheritance from trusted base works

"""The protection-domain machinery under *real* OS threads.

DESIGN.md's substitution table promises the thread-group/domain
identification logic is independent of the simulated scheduler.  These
tests run proxies and the security manager from genuinely concurrent
``threading.Thread`` workers: the per-OS-thread context stack must keep
every thread's domain separate with no cross-talk.
"""

from __future__ import annotations

import threading

from repro.apps.buffer import Buffer
from repro.core.policy import SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import CapabilityConfinementError, PrivilegeError
from repro.naming.urn import URN
from repro.sandbox.threadgroup import current_group, enter_group

from tests.conftest import CoreEnv

OWNER = URN.parse("urn:principal:mt.org/owner")
N_THREADS = 8
N_CALLS = 300


def test_domain_identity_isolated_across_real_threads():
    env = CoreEnv(seed=777)
    buf = Buffer(URN.parse("urn:resource:mt.org/buf"), OWNER,
                 SecurityPolicy.allow_all(confine=True))
    domains = [env.agent_domain(Rights.all()) for _ in range(N_THREADS)]
    proxies = [
        buf.get_proxy(d.credentials, env.context(d)) for d in domains
    ]
    errors: list[str] = []
    barrier = threading.Barrier(N_THREADS)

    def worker(index: int) -> None:
        barrier.wait()
        own_proxy = proxies[index]
        other_proxy = proxies[(index + 1) % N_THREADS]
        with enter_group(domains[index].thread_group):
            for _ in range(N_CALLS):
                # Own proxy always works...
                own_proxy.size()
                # ...someone else's never does.
                try:
                    other_proxy.size()
                except CapabilityConfinementError:
                    pass
                else:
                    errors.append(f"thread {index} used a foreign proxy")
        if current_group() is not None:
            errors.append(f"thread {index} leaked group context")

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []


def test_security_manager_under_real_concurrency():
    from repro.sandbox.security_manager import SecurityManager
    from repro.util.audit import AuditLog

    env = CoreEnv(seed=778)
    secman = SecurityManager(env.server_domain, AuditLog(env.clock))
    allowed_domain = env.agent_domain(Rights.of("system.ping"))
    denied_domain = env.agent_domain(Rights.of("Buffer.get"))
    errors: list[str] = []
    barrier = threading.Barrier(4)

    def privileged_worker() -> None:
        barrier.wait()
        with enter_group(allowed_domain.thread_group):
            for _ in range(N_CALLS):
                secman.check("ping")

    def unprivileged_worker() -> None:
        barrier.wait()
        with enter_group(denied_domain.thread_group):
            for _ in range(N_CALLS):
                try:
                    secman.check("ping")
                except PrivilegeError:
                    pass
                else:
                    errors.append("unprivileged check passed")

    threads = (
        [threading.Thread(target=privileged_worker) for _ in range(2)]
        + [threading.Thread(target=unprivileged_worker) for _ in range(2)]
    )
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []


def test_main_thread_context_unaffected_by_workers():
    env = CoreEnv(seed=779)
    domain = env.agent_domain(Rights.all())
    done = threading.Event()

    def worker() -> None:
        with enter_group(domain.thread_group):
            done.wait()  # holds its context while main thread checks

    t = threading.Thread(target=worker)
    t.start()
    try:
        # The worker's context must not bleed into this thread.
        assert current_group() is None
    finally:
        done.set()
        t.join()

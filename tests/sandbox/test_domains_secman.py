"""Tests for thread groups, protection domains and the security manager."""

from __future__ import annotations

import pytest

from repro.credentials.credentials import Credentials
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.rights import Rights
from repro.crypto.cert import CertificateAuthority
from repro.crypto.keys import KeyPair
from repro.errors import PrivilegeError
from repro.naming.urn import URN
from repro.sandbox.domain import ProtectionDomain, current_domain
from repro.sandbox.security_manager import SecurityManager
from repro.sandbox.threadgroup import (
    ThreadGroup,
    current_group,
    enter_group,
    wrap_in_group,
)
from repro.util.audit import AuditLog
from repro.util.clock import VirtualClock
from repro.util.rng import make_rng


def make_agent_domain(domain_id: str, rights: Rights, parent: ThreadGroup | None = None):
    clock = VirtualClock()
    ca = CertificateAuthority("ca", make_rng(20, f"ca:{domain_id}"), clock)
    owner_keys = KeyPair.generate(make_rng(21, f"keys:{domain_id}"), bits=512)
    owner = URN.parse("urn:principal:umn.edu/owner")
    cert = ca.issue(str(owner), owner_keys.public)
    cred = Credentials.issue(
        agent=URN.parse(f"urn:agent:umn.edu/{domain_id}"),
        owner=owner,
        creator=owner,
        owner_keys=owner_keys,
        owner_certificate=cert,
        rights=rights,
        now=0.0,
    )
    group = ThreadGroup(f"group:{domain_id}", parent=parent)
    return ProtectionDomain(
        domain_id, "agent", group, credentials=DelegatedCredentials.wrap(cred)
    )


@pytest.fixture()
def server_domain():
    return ProtectionDomain("server", "server", ThreadGroup("server-group"))


@pytest.fixture()
def secman(server_domain):
    return SecurityManager(server_domain, AuditLog())


class TestThreadGroups:
    def test_current_group_default_none(self):
        assert current_group() is None

    def test_enter_group_nesting(self):
        g1, g2 = ThreadGroup("g1"), ThreadGroup("g2")
        with enter_group(g1):
            assert current_group() is g1
            with enter_group(g2):
                assert current_group() is g2
            assert current_group() is g1
        assert current_group() is None

    def test_is_within_hierarchy(self):
        parent = ThreadGroup("parent")
        child = ThreadGroup("child", parent=parent)
        assert child.is_within(parent)
        assert child.is_within(child)
        assert not parent.is_within(child)

    def test_wrap_in_group(self):
        g = ThreadGroup("g")
        seen = []
        wrap_in_group(g, lambda: seen.append(current_group()))()
        assert seen == [g]
        assert current_group() is None


class TestProtectionDomain:
    def test_group_backref(self, server_domain):
        assert server_domain.thread_group.domain is server_domain

    def test_current_domain_via_group(self, server_domain):
        with enter_group(server_domain.thread_group):
            assert current_domain() is server_domain
        assert current_domain() is None

    def test_current_domain_walks_up_child_groups(self):
        domain = make_agent_domain("a1", Rights.all())
        child = ThreadGroup("child", parent=domain.thread_group)
        with enter_group(child):
            assert current_domain() is domain

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            ProtectionDomain("x", "alien", ThreadGroup("g"))


class TestSecurityManager:
    def test_requires_server_domain(self):
        agent = make_agent_domain("a1", Rights.all())
        with pytest.raises(PrivilegeError):
            SecurityManager(agent, AuditLog())

    def test_server_domain_fully_privileged(self, server_domain, secman):
        with enter_group(server_domain.thread_group):
            secman.check("anything", target="x")
            secman.check_server_only("domain_db.write")

    def test_unmanaged_context_denied(self, secman):
        with pytest.raises(PrivilegeError, match="outside any protection domain"):
            secman.check("resource_register")

    def test_agent_with_system_right_allowed(self, secman):
        domain = make_agent_domain(
            "a1", Rights.of("system.resource_register", "Buffer.*")
        )
        with enter_group(domain.thread_group):
            secman.check("resource_register")  # allowed
            with pytest.raises(PrivilegeError, match="denied"):
                secman.check("domain_db_write")

    def test_agent_without_rights_denied(self, secman):
        domain = make_agent_domain("a1", Rights.of("Buffer.get"))
        with enter_group(domain.thread_group):
            with pytest.raises(PrivilegeError):
                secman.check("resource_register")

    def test_server_only_check(self, secman):
        domain = make_agent_domain("a1", Rights.all())  # even all rights
        with enter_group(domain.thread_group):
            with pytest.raises(PrivilegeError, match="server-only"):
                secman.check_server_only("registry.mutate")

    def test_thread_create_own_group_allowed(self, secman):
        domain = make_agent_domain("a1", Rights.none())
        child = ThreadGroup("a1-child", parent=domain.thread_group)
        with enter_group(domain.thread_group):
            secman.check_thread_create(domain.thread_group)
            secman.check_thread_create(child)  # descendant of own group

    def test_thread_create_foreign_group_denied(self, secman):
        """The paper's worked example from section 5.3."""
        a1 = make_agent_domain("a1", Rights.all())
        a2 = make_agent_domain("a2", Rights.all())
        with enter_group(a1.thread_group):
            with pytest.raises(PrivilegeError, match="may not create threads"):
                secman.check_thread_create(a2.thread_group)

    def test_server_may_create_threads_anywhere(self, server_domain, secman):
        agent = make_agent_domain("a1", Rights.none())
        with enter_group(server_domain.thread_group):
            secman.check_thread_create(agent.thread_group)

    def test_group_modify_server_only(self, server_domain, secman):
        agent = make_agent_domain("a1", Rights.all())
        with enter_group(agent.thread_group):
            with pytest.raises(PrivilegeError):
                secman.check_group_modify(agent.thread_group)
        with enter_group(server_domain.thread_group):
            secman.check_group_modify(agent.thread_group)

    def test_every_decision_audited(self, server_domain):
        audit = AuditLog()
        secman = SecurityManager(server_domain, audit)
        agent = make_agent_domain("a1", Rights.of("system.ping"))
        with enter_group(agent.thread_group):
            secman.check("ping")
            with pytest.raises(PrivilegeError):
                secman.check("format_disk")
        assert len(audit) == 2
        allowed, denied = list(audit)
        assert allowed.allowed and allowed.operation == "secman.ping"
        assert not denied.allowed and denied.domain == "a1"

    def test_seal(self, secman):
        assert not secman.sealed
        secman.seal()
        assert secman.sealed

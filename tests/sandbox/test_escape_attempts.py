"""A battery of known Python-sandbox escape idioms, each one blocked.

Every case here is an expression shape attackers actually use against
Python sandboxes.  The assertion is uniform: the verifier rejects the
source (or, where the construct is syntactically benign, the namespace's
restricted builtins make it a dead end at runtime).
"""

from __future__ import annotations

import pytest

from repro.errors import CodeVerificationError, SecurityException
from repro.sandbox.namespace import AgentNamespace
from repro.sandbox.verifier import verify_source

BLOCKED_AT_VERIFY = [
    # classic dunder ladders
    "x = ().__class__.__bases__[0].__subclasses__()",
    "x = (lambda: 0).__globals__",
    "x = [].__class__.__mro__[1]",
    # reaching through f-strings
    "x = f\"{().__class__}\"",
    "x = f\"{proxy._ref}\"",
    # decorators and metaclasses invoking reflection
    "@getattr\ndef f():\n    pass",
    "class X(metaclass=type):\n    pass",
    # comprehension bodies
    "x = [getattr(o, n) for o, n in pairs]",
    "x = {k: vars(v) for k, v in items.items()}",
    # lambda smuggling
    "f = lambda: __import__('os')",
    "f = lambda o: o.__dict__",
    # walrus with banned name
    "y = (z := eval)('1')",
    # assert / raise carrying banned expressions
    "assert globals()",
    # conditional expressions
    "x = open if day else close",
    # nested function definitions hiding a dunder def
    "def outer():\n    def __getattr__(n):\n        return 1\n    return 0",
    # exec-through-decorator
    "@exec\ndef f():\n    pass",
    # generator expression touching underscore attribute
    "g = (o._secret for o in objects)",
    # import tricks
    "import os as math",
    "from importlib import import_module",
    # star assignment of a dunder
    "__all__, rest = [1], 2",
]


@pytest.mark.parametrize("source", BLOCKED_AT_VERIFY,
                         ids=[s.splitlines()[0][:40] for s in BLOCKED_AT_VERIFY])
def test_blocked_at_verification(source):
    with pytest.raises(CodeVerificationError):
        verify_source(source)


RUNTIME_DEAD_ENDS = [
    # Syntactically clean, but the name doesn't exist in the sandbox.
    ("x = copyright", NameError),
    ("x = license", NameError),
    ("x = print", NameError),  # even print is absent by default
]


@pytest.mark.parametrize("source,exc", RUNTIME_DEAD_ENDS,
                         ids=[s for s, _ in RUNTIME_DEAD_ENDS])
def test_dead_end_at_runtime(source, exc):
    ns = AgentNamespace("escape")
    with pytest.raises(exc):
        ns.load(source)


def test_exception_objects_do_not_leak_frames():
    """Catching an exception gives no traceback attribute path (blocked)."""
    with pytest.raises(CodeVerificationError):
        verify_source(
            "try:\n"
            "    x = 1 // 0\n"
            "except Exception as e:\n"
            "    tb = e.__traceback__\n"
        )


def test_string_formatting_cannot_reach_attributes():
    """str.format with attribute access in the spec is runtime-safe here
    because the *format string* is data — but the classic
    '{0.__class__}'.format(obj) idiom needs .format, which is an ordinary
    allowed method... the attack then fails because the format mini-
    language's attribute access happens inside CPython on the *object we
    pass* — so never pass trusted objects into agent-controlled format
    strings.  This test pins that the sandbox itself doesn't hand out any
    such object: the namespace has no trusted bindings by default."""
    ns = AgentNamespace("fmt")
    ns.load('leak = "{0.denominator}".format(1)\n')
    assert ns.get("leak") == "1"  # reaches int internals only — harmless


def test_deep_recursion_is_contained():
    """A recursion bomb raises RecursionError inside the agent's code and
    is reported as an agent failure, not an interpreter crash."""
    ns = AgentNamespace("rec")
    ns.load("def f(n):\n    return f(n + 1)\n")
    with pytest.raises(RecursionError):
        ns.get("f")(0)


def test_billion_laughs_strings_bounded_by_budget():
    """Exponential string growth inside a loop hits the loop budget or
    MemoryError long before taking the host down; with a tight budget it
    is the budget."""
    from repro.errors import ExecutionBudgetExceeded
    from repro.sandbox.verifier import VerifierPolicy

    ns = AgentNamespace("bomb", policy=VerifierPolicy(max_loop_iterations=20))
    with pytest.raises(ExecutionBudgetExceeded):
        ns.load(
            "s = 'lol'\n"
            "while True:\n"
            "    s = s + s\n"
        )

"""Tests for the AST code verifier."""

from __future__ import annotations

import pytest

from repro.errors import CodeVerificationError
from repro.sandbox.verifier import VerifierPolicy, verify_source


def rejects(source: str, match: str) -> None:
    with pytest.raises(CodeVerificationError, match=match):
        verify_source(source)


def accepts(source: str) -> None:
    verify_source(source)  # no raise


class TestAcceptedCode:
    def test_plain_function(self):
        accepts("def add(a, b):\n    return a + b\n")

    def test_class_with_safe_dunders(self):
        accepts(
            "class Point:\n"
            "    def __init__(self, x):\n"
            "        self.x = x\n"
            "    def __repr__(self):\n"
            "        return 'Point'\n"
        )

    def test_allowed_import(self):
        accepts("import math\nresult = math.sqrt(2)\n")
        accepts("from math import sqrt\n")

    def test_comprehensions_and_generators(self):
        accepts("squares = [i * i for i in range(10)]\n")
        accepts("def gen():\n    yield 1\n")

    def test_control_flow_and_exceptions(self):
        accepts(
            "def f(x):\n"
            "    try:\n"
            "        return 1 / x\n"
            "    except ZeroDivisionError:\n"
            "        return 0\n"
        )

    def test_custom_policy_extends_imports(self):
        policy = VerifierPolicy(allowed_imports=frozenset({"math", "statistics"}))
        verify_source("import statistics\n", policy)


class TestRejectedCode:
    def test_syntax_error(self):
        rejects("def broken(:\n", "syntax error")

    def test_banned_import(self):
        rejects("import os\n", "import of 'os' not allowed")
        rejects("from subprocess import run\n", "import from 'subprocess'")
        rejects("import os.path\n", "'os.path' not allowed")

    def test_relative_import(self):
        rejects("from . import secrets\n", "relative imports")

    def test_dunder_attribute_ladder(self):
        # The classic sandbox escape.
        rejects(
            "x = (1).__class__.__bases__[0].__subclasses__()\n",
            "underscore attribute",
        )

    def test_private_attribute_access(self):
        # Reaching into a proxy's private resource reference (Fig. 5's
        # `ref` field is private in the Java version; ours is underscored).
        rejects("leak = proxy._ref\n", "underscore attribute '_ref'")

    @pytest.mark.parametrize(
        "name",
        ["eval", "exec", "compile", "open", "__import__", "getattr", "setattr",
         "globals", "vars", "type", "object", "breakpoint", "dir", "id"],
    )
    def test_banned_builtins(self, name):
        rejects(f"x = {name}\n", f"banned name '{name}'")

    def test_dunder_name_use(self):
        rejects("x = __builtins__\n", "dunder name")
        rejects("x = __spec__\n", "dunder name")

    def test_unsafe_dunder_method_definition(self):
        rejects(
            "class Evil:\n"
            "    def __getattribute__(self, name):\n"
            "        return 42\n",
            "definition of dunder '__getattribute__'",
        )
        rejects(
            "class Evil:\n"
            "    def __del__(self):\n"
            "        pass\n",
            "__del__",
        )

    def test_dunder_assignment(self):
        rejects("__builtins__ = {}\n", "dunder")

    def test_async_rejected(self):
        rejects("async def f():\n    pass\n", "async")
        rejects(
            "async def f():\n    await g()\n",
            "async",
        )

    def test_all_violations_reported(self):
        try:
            verify_source("import os\nimport sys\nx = eval\n")
        except CodeVerificationError as exc:
            message = str(exc)
            assert "'os'" in message and "'sys'" in message and "'eval'" in message
        else:
            pytest.fail("expected rejection")


class TestResourceLimits:
    def test_source_size_limit(self):
        policy = VerifierPolicy(max_source_bytes=100)
        with pytest.raises(CodeVerificationError, match="too large"):
            verify_source("x = 1\n" * 50, policy)

    def test_ast_node_limit(self):
        policy = VerifierPolicy(max_ast_nodes=10)
        with pytest.raises(CodeVerificationError, match="AST too large"):
            verify_source("x = [1, 2, 3, 4, 5, 6, 7, 8]\n", policy)

"""Unit tests for the benchmark harness helpers themselves."""

from __future__ import annotations

import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))
import _common  # noqa: E402
sys.path.remove(str(BENCH_DIR))


class TestTimeOp:
    def test_returns_plausible_nanoseconds(self):
        ns = _common.time_op(lambda: sum(range(50)), target_seconds=0.005)
        assert 50 < ns < 1e6  # between 50ns and 1ms for this tiny op

    def test_explicit_repeat_honored(self):
        calls = []
        _common.time_op(lambda: calls.append(1), repeat=10)
        assert len(calls) == 30  # 3 batches x 10

    def test_slow_ops_do_not_explode(self):
        import time

        start = time.perf_counter()
        _common.time_op(lambda: time.sleep(0.002), target_seconds=0.01)
        assert time.perf_counter() - start < 2.0


class TestWriteTable:
    def test_writes_file_and_formats(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(_common, "RESULTS_DIR", tmp_path)
        text = _common.write_table(
            "T0", "a test table",
            ["name", "value"],
            [["alpha", 1234.5], ["beta", 0.25]],
            notes="a note",
        )
        assert (tmp_path / "T0.txt").read_text() == text
        assert "== T0: a test table ==" in text
        assert "1,234" in text  # thousands formatting
        assert "0.2500" in text  # small-float formatting
        assert "a note" in text
        assert "alpha" in capsys.readouterr().out

    def test_empty_rows(self, tmp_path, monkeypatch):
        monkeypatch.setattr(_common, "RESULTS_DIR", tmp_path)
        text = _common.write_table("T1", "empty", ["col"], [])
        assert "== T1" in text


class TestBenchWorld:
    def test_domain_factory(self):
        from repro.credentials.rights import Rights

        world = _common.BenchWorld(seed=12345)
        domain = world.agent_domain(Rights.of("Buffer.get"))
        assert domain.credentials is not None
        domain.credentials.verify(world.ca, world.clock.now())
        context = world.context(domain)
        assert context.domain_id == domain.domain_id

"""Six deterministic chaos scenarios over the self-healing plane.

Each scenario arms one hand-picked adversity pattern against a wave of
itinerary tourists and asserts the seed-independent invariants: every
agent reaches a terminal state, none is hosted twice or completed
twice, and the healed conservation residual is zero.  CI sweeps
``REPRO_STRESS_SEED`` over these, so nothing here may depend on RNG
particulars — only on the protocol.
"""

from __future__ import annotations

from tests.chaos.common import assert_conserved, statuses_of, tourists

from repro.net.faults import tamper_state


def test_crash_during_transfer_wave(world):
    """s1 dies under a wave of inbound handshakes, then comes back.

    Every tourist is mid-transfer toward s1 when it crashes: each either
    retries through to the restarted process or exhausts, reroutes via
    its failure hook, and finishes the rest of the tour.  Exactly-once
    hosting holds on every path.
    """
    bed = world(4)
    home, s1, s2, s3 = bed.servers
    images = tourists(bed, 8, [s1.name, s2.name, s3.name])
    bed.faults().crash(s1, at=0.005, restart_at=20.0)
    bed.run(until=300.0, detect_deadlock=False)
    completed = assert_conserved(bed, images)
    assert completed == 8  # nobody was lost to the crash window
    # The crash was real adversity: retries happened.
    assert home.stats["transfer_retries"] >= 1


def test_crash_of_recovery_target_falls_back(world):
    """The survivor chosen by re-homing dies too; recovery recurses.

    A dwelling agent loses its host (s1), is re-homed to the only other
    planned stop (s2), loses *that* host as well, and — with the
    itinerary exhausted — is finally relaunched at the home site, the
    always-legal fallback.  One completion, ever.
    """
    bed = world(4)
    home, s1, s2, s3 = bed.servers
    images = tourists(bed, 1, [s1.name, s2.name], dwell=60.0)
    bed.faults().crash(s1, at=5.0)            # confirmed dead ~t=17
    bed.faults().crash(s2, at=40.0)           # kills the re-homed copy
    bed.run(until=300.0, detect_deadlock=False)
    assert home.recovery.stats["rehomes_placed"] == 1   # s1 -> s2
    assert home.recovery.stats["rehomes_local"] == 1    # s2 -> home
    assert [e["dead"] for e in home.recovery.rehome_log] == [
        s1.name, s2.name,
    ]
    completed = assert_conserved(bed, images)
    assert completed == 1


def test_flapping_host_neither_loses_nor_duplicates(world):
    """Crash+restart inside the confirm-death window, twice over.

    Flap safety keeps the detector from ever confirming the host dead,
    so the rebirth sweep (probe, then re-home) is the only thing
    standing between the killed residents and oblivion.  The probe is
    what prevents the opposite failure: duplicating an agent the
    restarted host still accounts for.
    """
    bed = world(3)
    home, s1, s2 = bed.servers
    images = tourists(bed, 2, [s1.name, s2.name], dwell=60.0)
    bed.faults().crash(s1, at=5.5, restart_at=12.5)
    bed.run(until=300.0, detect_deadlock=False)
    # Never confirmed dead -- this is the gap the rebirth sweep closes.
    assert not any(
        state == "confirmed-dead" for _, state, _ in home.membership.log
    )
    assert s1.stats["agents_killed_crash"] == 2
    rehomed = (
        home.recovery.stats["rehomes_placed"]
        + home.recovery.stats["rehomes_local"]
    )
    assert rehomed == 2
    completed = assert_conserved(bed, images)
    assert completed == 2


def test_partition_and_crash_overlap(world):
    """A partition window overlaps a hard crash on another server.

    The partition (shorter than the confirm-death threshold) must not
    get s2 declared dead — only the genuinely crashed s1 is, and only
    its residents are re-homed.  Tourists blocked at the partition
    retry through after the heal.
    """
    bed = world(4)
    home, s1, s2, s3 = bed.servers
    # Staggered dwells put the wave in different tour phases when the
    # faults land: early birds are at s2 inside the partition window,
    # stragglers are still dwelling at s1 when it dies.
    images = tourists(
        bed, 6, [s1.name, s2.name, s3.name], dwell=lambda i: 1.0 + i
    )
    bed.faults().named_partition(
        "ovl", [s2.name], [home.name, s1.name, s3.name],
        at=3.0, heal_at=9.0,
    )
    bed.faults().crash(s1, at=5.0)  # hard: never comes back
    bed.run(until=400.0, detect_deadlock=False)
    # Flap safety for partitions: s2 was silent for 6s, suspected at
    # most -- never confirmed, never re-homed off of.
    for observer in (home, s3):
        assert not any(
            state == "confirmed-dead" and peer == s2.name
            for _, state, peer in observer.membership.log
        )
    assert home.membership.state_of(s1.name) == "confirmed-dead"
    # Whoever was dwelling at s1 when it died came back via escrow.
    killed = s1.stats["agents_killed_crash"]
    assert killed >= 1
    rehomed = (
        home.recovery.stats["rehomes_placed"]
        + home.recovery.stats["rehomes_local"]
    )
    assert rehomed == killed
    completed = assert_conserved(bed, images)
    assert completed == 6


def test_drain_under_load(world):
    """Planned maintenance in the middle of an active wave.

    The drain migrates its current residents and refuses late arrivals
    with a typed error; the refused tourists skip the stop and keep
    touring.  Nothing is killed, nothing is lost.
    """
    bed = world(4)
    home, s1, s2, s3 = bed.servers
    images = tourists(
        bed, 6, [s1.name, s2.name, s3.name], dwell=lambda i: 2.0 + 2.0 * i
    )
    bed.kernel.schedule(6.0, s1.drain)
    bed.run(until=400.0, detect_deadlock=False)
    assert s1.stats["drains"] == 1
    assert s1.stats["agents_killed_drain"] == 0
    assert s1.stats["drain_failed"] == 0
    # The drain saw real load: someone was migrated out mid-dwell.
    assert s1.stats["drained_out"] >= 1
    assert len(s1._resident_images) == 0
    completed = assert_conserved(bed, images)
    assert completed == 6


def test_malicious_host_during_rehoming(world):
    """Recovery must not become an integrity loophole.

    The load-chosen re-homing target is secretly compromised: every
    agent it forwards is state-tampered.  Re-homing itself is clean
    (home reseals the escrow), but when the re-homed agent tries the
    homecoming leg, the home server's appraisal rejects the forgery and
    quarantines the host — the tampered image is never admitted
    anywhere, and the agent ends its tour stranded-but-accounted on the
    malicious host instead of spreading the forgery.
    """
    bed = world(3)
    home, s1, s2 = bed.servers
    images = tourists(bed, 1, [s1.name, s2.name, home.name], dwell=60.0)
    bed.faults().compromise(s2, tamper_state(poisoned=True), at=1.0)
    bed.faults().crash(s1, at=5.0)  # forces the re-home onto s2
    bed.run(until=400.0, detect_deadlock=False)
    assert home.recovery.stats["rehomes_placed"] == 1
    assert home.recovery.rehome_log[0]["target"] == s2.name
    # The tampered homecoming was caught and the host quarantined.
    assert home.stats["transfers_refused_integrity"] >= 1
    assert home.integrity.quarantine.blocked_name(s2.name)
    assert home.audit.records(
        operation="agent.integrity_reject", allowed=False
    )
    # The forged image never landed: home saw only the original launch
    # departure, never a post-compromise residency.
    home_statuses = [
        r.status for r in home.domain_db.records_of(images[0].name)
    ]
    assert home_statuses == ["departed"]
    # At-most-once still holds; the tour ended where the forgery began.
    completed = assert_conserved(bed, images)
    assert completed <= 1
    sts = statuses_of(bed, images[0].name)
    assert sts.count("running") == 0

"""Chaos-suite fixtures: seeded self-healing worlds with trace export.

Every scenario builds its bed through the ``world`` fixture so a
failure leaves evidence: set ``REPRO_CHAOS_TRACE_DIR`` to a directory
and each *failing* scenario exports its flight-recorder trace there
(JSONL + Chrome ``about:tracing`` JSON) for CI to upload.
"""

from __future__ import annotations

import os
import pathlib
import re

import pytest

from repro.server.testbed import Testbed

from tests.chaos.common import STRESS_SEED, retry_kwargs

TRACE_DIR = os.environ.get("REPRO_CHAOS_TRACE_DIR", "")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    setattr(item, f"rep_{report.when}", report)


class World:
    """One traced self-healing testbed."""

    def __init__(self, n: int, **kw) -> None:
        kw.setdefault("seed", STRESS_SEED)
        kw.setdefault("self_healing", True)
        kw.setdefault("server_kwargs", retry_kwargs())
        self.bed = Testbed(n, **kw)
        self.recorder = self.bed.start_tracing()

    def __getattr__(self, name):
        return getattr(self.bed, name)


@pytest.fixture
def world(request):
    worlds: list[World] = []

    def make(n: int, **kw) -> World:
        built = World(n, **kw)
        worlds.append(built)
        return built

    yield make
    report = getattr(request.node, "rep_call", None)
    failed = report is not None and report.failed
    for i, built in enumerate(worlds):
        built.bed.stop_tracing()
        if failed and TRACE_DIR:
            out = pathlib.Path(TRACE_DIR)
            out.mkdir(parents=True, exist_ok=True)
            safe = re.sub(r"[^\w.=-]+", "_", request.node.name)
            stem = out / (f"{safe}-{i}" if i else safe)
            built.recorder.export_jsonl(str(stem) + ".jsonl")
            built.recorder.export_chrome(str(stem) + ".json")

"""The randomized campaign: a drawn fault plan against a tourist wave.

Where ``test_scenarios`` hand-places each fault, this suite lets
:class:`~repro.net.chaos.ChaosSchedule` *draw* the plan from the seeded
substream — crash, crash/restart, partition, loss burst — and asserts
only the invariants: same seed, same plan; the safety envelope is
honored; and however the plan lands, every agent completes exactly
once with the books balanced.
"""

from __future__ import annotations

import pytest

from tests.chaos.common import STRESS_SEED, assert_conserved, tourists

from repro.errors import ReproError
from repro.net.chaos import ChaosConfig, ChaosSchedule


def campaign_config(spare):
    return ChaosConfig(
        start=5.0,
        horizon=60.0,
        hard_crashes=1,
        crash_restarts=1,
        partitions=1,
        loss_bursts=1,
        # 2: the hard crash's dark window never ends, and the campaign
        # should still be able to draw a second fault after it.  With 4
        # workers that still leaves 2 survivors plus the spare home.
        max_concurrent_down=2,
        spare=spare,
    )


def test_campaign_completes_every_tour_exactly_once(world):
    bed = world(5)
    home = bed.home
    workers = bed.servers[1:]
    schedule = ChaosSchedule(
        bed.faults(),
        workers,
        seed=STRESS_SEED,
        config=campaign_config((home.name,)),
    )
    # The draw produced real adversity (the envelope can reject a slot,
    # but with 4 candidates and 4 faults it never rejects them all).
    assert len(schedule.plan) >= 3
    assert len(schedule.describe()) == len(schedule.plan)
    images = tourists(
        bed,
        8,
        [s.name for s in workers],
        dwell=lambda i: 1.0 + 1.5 * i,
    )
    bed.run(until=500.0, detect_deadlock=False)
    # Whatever the plan was: nothing lost, nothing doubled, books level.
    completed = assert_conserved(bed, images)
    assert completed == 8
    # The faults actually fired (the injector logs what it executed).
    fired = {kind for _, kind, _ in bed.faults().log}
    assert "crashes" in fired or any(
        kind.startswith("partition_begin") for kind in fired
    )


def test_plan_is_deterministic_per_seed():
    def draw(seed):
        from repro.server.testbed import Testbed

        bed = Testbed(4, seed=1, self_healing=True)
        return ChaosSchedule(
            bed.faults(),
            bed.servers[1:],
            seed=seed,
            config=campaign_config((bed.home.name,)),
        ).plan

    assert draw(7) == draw(7)  # replayable: the seed IS the campaign
    assert draw(7) != draw(8)


def test_envelope_is_honored_in_the_plan():
    from repro.server.testbed import Testbed

    bed = Testbed(4, seed=2, self_healing=True)
    home = bed.home
    config = ChaosConfig(
        start=5.0,
        horizon=80.0,
        hard_crashes=2,
        crash_restarts=2,
        partitions=2,
        loss_bursts=2,
        max_concurrent_down=1,
        spare=(home.name,),
    )
    schedule = ChaosSchedule(
        bed.faults(), bed.servers[1:], seed=STRESS_SEED, config=config
    )
    # The spare is never a fault target.
    assert all(entry["target"] != home.name for entry in schedule.plan)
    # Reconstruct the dark windows and check pairwise concurrency.
    windows = []
    for entry in schedule.plan:
        if entry["kind"] == "crash":
            windows.append((entry["at"], float("inf")))
        elif entry["kind"] == "crash_restart":
            windows.append((entry["at"], entry["restart_at"]))
        elif entry["kind"] == "partition":
            windows.append((entry["at"], entry["heal_at"]))
    # With max_concurrent_down=1, no two dark windows may overlap.
    for i, (a0, a1) in enumerate(windows):
        assert not any(
            b0 < a1 and a0 < b1
            for j, (b0, b1) in enumerate(windows)
            if i != j
        )
    # Partition windows stay inside the flap-safety envelope: shorter
    # than the default confirm-death threshold, so chaos never turns a
    # live partitioned server into a re-homing source (split brain).
    for entry in schedule.plan:
        if entry["kind"] == "partition":
            assert entry["heal_at"] - entry["at"] <= 8.0


def test_chaos_config_is_validated():
    with pytest.raises(ReproError):
        ChaosConfig(start=10.0, horizon=10.0)
    with pytest.raises(ReproError):
        ChaosConfig(max_concurrent_down=0)
    with pytest.raises(ReproError):
        ChaosConfig(outage=(0.0, 5.0))
    with pytest.raises(ReproError):
        ChaosConfig(partition_window=(9.0, 3.0))


def test_all_spare_servers_is_an_error():
    from repro.server.testbed import Testbed

    bed = Testbed(2, seed=3, self_healing=True)
    names = tuple(s.name for s in bed.servers)
    with pytest.raises(ReproError):
        ChaosSchedule(
            bed.faults(), list(bed.servers), seed=1,
            config=ChaosConfig(spare=names),
        )

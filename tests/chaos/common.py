"""Shared chaos-suite machinery: tourists, waves, conservation checks.

The suite reads ``REPRO_STRESS_SEED`` (default 1000) so CI sweeps
seeds; every assertion built on these helpers is a seed-independent
*invariant* (exactly-once completion, nothing lost, healed
conservation), never a golden trace.
"""

from __future__ import annotations

import os

from repro.agents.agent import register_trusted_agent_class
from repro.agents.itinerary import Itinerary
from repro.agents.patterns import ItineraryAgent
from repro.credentials.rights import Rights
from repro.obs.slo import healed_conservation_residual
from repro.server.testbed import Testbed
from repro.util.retry import RetryPolicy

STRESS_SEED = int(os.environ.get("REPRO_STRESS_SEED", "1000"))


def retry_kwargs(**overrides):
    kw = {
        "transfer_timeout": 5.0,
        "transfer_retry": RetryPolicy(attempts=4, base_delay=1.0, jitter=0.0),
    }
    kw.update(overrides)
    return kw


@register_trusted_agent_class
class ChaosTourist(ItineraryAgent):
    """An itinerary tourist with a configurable per-stop dwell.

    The dwell is what makes chaos interesting: a dwelling agent can be
    caught resident by a crash (checkpoint re-homing), a drain
    (migration), or a partition (blocked departure).
    """

    dwell = 0.0

    def __init__(self) -> None:
        super().__init__()
        self.visited: list[str] = []

    def visit(self, stop):
        self.visited.append(self.host.server_name())
        if self.dwell:
            self.host.sleep(self.dwell)

    def finish(self):
        self.complete({"visited": self.visited, "skipped": self.skipped})


def tourists(bed: Testbed, count: int, stops: list[str], dwell=0.0):
    """Launch ``count`` tourists over ``stops``; returns their images.

    ``dwell`` is a constant, or a callable ``i -> seconds`` to stagger
    the wave so faults catch agents in different phases of the tour.
    """
    images = []
    for i in range(count):
        agent = ChaosTourist()
        agent.dwell = dwell(i) if callable(dwell) else dwell
        agent.itinerary = Itinerary.tour(list(stops))
        images.append(bed.launch(agent, Rights.all()))
    return images


def statuses_of(bed: Testbed, name) -> list[str]:
    out: list[str] = []
    for server in bed.servers:
        out.extend(r.status for r in server.domain_db.records_of(name))
    return out


def assert_conserved(bed: Testbed, images) -> int:
    """The suite-wide safety net: nothing lost, nothing doubled.

    Every launched agent reached a terminal state, no copy is still
    marked running anywhere, no agent completed twice, and the healed
    conservation residual (hosted − out − forcible removals −
    completions) is exactly zero.  Returns the completion count.
    """
    completed = 0
    for image in images:
        sts = statuses_of(bed, image.name)
        assert sts.count("running") == 0, f"{image.name} stranded: {sts}"
        assert sts.count("completed") <= 1, f"{image.name} doubled: {sts}"
        assert sts, f"{image.name} vanished without a record"
        completed += sts.count("completed")
    assert healed_conservation_residual(bed.servers)() == 0
    return completed

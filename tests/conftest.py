"""Shared fixtures for core tests: a PKI + domain factory."""

from __future__ import annotations

import pytest

from repro.core.access_protocol import BindingContext
from repro.credentials.credentials import Credentials
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.rights import Rights
from repro.crypto.cert import CertificateAuthority
from repro.crypto.keys import KeyPair
from repro.naming.urn import URN
from repro.sandbox.domain import ProtectionDomain
from repro.sandbox.threadgroup import ThreadGroup
from repro.util.audit import AuditLog
from repro.util.clock import VirtualClock
from repro.util.rng import make_rng


class CoreEnv:
    """Clock + CA + helpers to mint credentialed agent domains."""

    def __init__(self, seed: int = 500) -> None:
        self.clock = VirtualClock()
        self.audit = AuditLog(self.clock)
        self.ca = CertificateAuthority("core-ca", make_rng(seed, "ca"), self.clock)
        self.owner_keys = KeyPair.generate(make_rng(seed, "owner"), bits=512)
        self.owner = URN.parse("urn:principal:umn.edu/anand")
        self.owner_cert = self.ca.issue(str(self.owner), self.owner_keys.public)
        self.server_domain = ProtectionDomain(
            "server", "server", ThreadGroup("server-group")
        )
        self._counter = 0

    def credentials(
        self, rights: Rights, *, agent_local: str | None = None,
        owner: URN | None = None, lifetime: float = 1e6,
    ) -> DelegatedCredentials:
        self._counter += 1
        local = agent_local or f"agent-{self._counter}"
        owner_urn = owner or self.owner
        if owner is None:
            keys, cert = self.owner_keys, self.owner_cert
        else:
            keys = KeyPair.generate(make_rng(hash(str(owner)) % 2**32, "k"), bits=512)
            cert = self.ca.issue(str(owner), keys.public)
        cred = Credentials.issue(
            agent=URN.parse(f"urn:agent:umn.edu/{local}"),
            owner=owner_urn,
            creator=owner_urn,
            owner_keys=keys,
            owner_certificate=cert,
            rights=rights,
            now=self.clock.now(),
            lifetime=lifetime,
        )
        return DelegatedCredentials.wrap(cred)

    def agent_domain(
        self, rights: Rights, *, domain_id: str | None = None, **kw
    ) -> ProtectionDomain:
        self._counter += 1
        did = domain_id or f"dom-{self._counter}"
        return ProtectionDomain(
            did,
            "agent",
            ThreadGroup(f"group:{did}"),
            credentials=self.credentials(rights, **kw),
        )

    def context(self, domain: ProtectionDomain, **kw) -> BindingContext:
        return BindingContext(
            domain_id=domain.domain_id,
            clock=self.clock,
            server_domain_id="server",
            audit=self.audit,
            **kw,
        )


@pytest.fixture()
def env() -> CoreEnv:
    return CoreEnv()

"""Shared fixtures (PKI + domain factory) and the per-test timeout guard."""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.core.access_protocol import BindingContext
from repro.credentials.credentials import Credentials
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.rights import Rights
from repro.crypto.cert import CertificateAuthority
from repro.crypto.keys import KeyPair
from repro.naming.urn import URN
from repro.sandbox.domain import ProtectionDomain
from repro.sandbox.threadgroup import ThreadGroup
from repro.util.audit import AuditLog
from repro.util.clock import VirtualClock
from repro.util.rng import make_rng


class CoreEnv:
    """Clock + CA + helpers to mint credentialed agent domains."""

    def __init__(self, seed: int = 500) -> None:
        self.clock = VirtualClock()
        self.audit = AuditLog(self.clock)
        self.ca = CertificateAuthority("core-ca", make_rng(seed, "ca"), self.clock)
        self.owner_keys = KeyPair.generate(make_rng(seed, "owner"), bits=512)
        self.owner = URN.parse("urn:principal:umn.edu/anand")
        self.owner_cert = self.ca.issue(str(self.owner), self.owner_keys.public)
        self.server_domain = ProtectionDomain(
            "server", "server", ThreadGroup("server-group")
        )
        self._counter = 0

    def credentials(
        self, rights: Rights, *, agent_local: str | None = None,
        owner: URN | None = None, lifetime: float = 1e6,
    ) -> DelegatedCredentials:
        self._counter += 1
        local = agent_local or f"agent-{self._counter}"
        owner_urn = owner or self.owner
        if owner is None:
            keys, cert = self.owner_keys, self.owner_cert
        else:
            keys = KeyPair.generate(make_rng(hash(str(owner)) % 2**32, "k"), bits=512)
            cert = self.ca.issue(str(owner), keys.public)
        cred = Credentials.issue(
            agent=URN.parse(f"urn:agent:umn.edu/{local}"),
            owner=owner_urn,
            creator=owner_urn,
            owner_keys=keys,
            owner_certificate=cert,
            rights=rights,
            now=self.clock.now(),
            lifetime=lifetime,
        )
        return DelegatedCredentials.wrap(cred)

    def agent_domain(
        self, rights: Rights, *, domain_id: str | None = None, **kw
    ) -> ProtectionDomain:
        self._counter += 1
        did = domain_id or f"dom-{self._counter}"
        return ProtectionDomain(
            did,
            "agent",
            ThreadGroup(f"group:{did}"),
            credentials=self.credentials(rights, **kw),
        )

    def context(self, domain: ProtectionDomain, **kw) -> BindingContext:
        return BindingContext(
            domain_id=domain.domain_id,
            clock=self.clock,
            server_domain_id="server",
            audit=self.audit,
            **kw,
        )


@pytest.fixture()
def env() -> CoreEnv:
    return CoreEnv()


# ---------------------------------------------------------------------------
# Per-test timeout (hand-rolled: the environment has no pytest-timeout).
#
# A wedged simulation — a kernel deadlock, a thread that never yields the
# baton — would otherwise hang the whole suite; CI's job-level timeout
# kills the run without saying *which* test wedged.  SIGALRM interrupts
# the main thread even inside lock/Event waits, turning a hang into an
# ordinary test failure with a stack trace.
# ---------------------------------------------------------------------------

DEFAULT_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))

_ALARMS_USABLE = hasattr(signal, "SIGALRM")


def _timeout_for(item: pytest.Item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    return DEFAULT_TEST_TIMEOUT


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item: pytest.Item):
    limit = _timeout_for(item)
    usable = (
        _ALARMS_USABLE
        and limit > 0
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded the {limit:g}s per-test timeout"
            " (REPRO_TEST_TIMEOUT / @pytest.mark.timeout override)"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)

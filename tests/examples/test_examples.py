"""Every example must run clean and print its key result lines."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", ["agent status: completed", "hello from a mobile agent"]),
    ("shopping_trip.py", ["bought at", "$289.00"]),
    ("producer_consumer.py", ["producer: completed", "consumer: completed",
                              "denied proxy calls"]),
    ("malicious_agent.py", ["all seven attacks stopped."]),
    ("dynamic_service.py", ["visitor looked up 'proxy'",
                            "rogue installer outcome: terminated"]),
    ("accounting_billing.py", ["auditor billed $0.53",
                               "quota tripped"]),
    ("paradigm_comparison.py", ["all strategies agree",
                                "the agent's home turf"]),
    ("federation.py", ["untrusted authority",
                       "fortress admission refusals: 1",
                       "directory quorum with 2 of 3 replicas up"]),
    ("traced_tour.py", ["tour spans 4 server(s)",
                        "all six protocol steps reconstructed",
                        "unclosed spans: 0"]),
]


@pytest.mark.parametrize("script,expected", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    for needle in expected:
        assert needle in result.stdout

"""Tests for the retry/backoff/circuit-breaker utility."""

from __future__ import annotations

import pytest

from repro.errors import (
    CircuitOpenError,
    NetworkError,
    RetryExhaustedError,
    SimulationError,
    TransferError,
    TransferRetryExhaustedError,
)
from repro.sim.kernel import Kernel
from repro.sim.threads import SimThread
from repro.util.retry import CircuitBreaker, RetryPolicy, call_with_retries
from repro.util.rng import make_rng


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


def test_backoff_curve_without_jitter():
    policy = RetryPolicy(attempts=6, base_delay=1.0, multiplier=2.0,
                         max_delay=5.0, jitter=0.0)
    delays = [policy.delay_before(k) for k in range(1, 6)]
    assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]  # capped at max_delay
    assert policy.delay_before(0) == 0.0


def test_jitter_is_deterministic_per_seed():
    policy = RetryPolicy(base_delay=1.0, jitter=0.5)
    a = [policy.delay_before(k, make_rng(7, "x")) for k in range(1, 5)]
    b = [policy.delay_before(k, make_rng(7, "x")) for k in range(1, 5)]
    c = [policy.delay_before(k, make_rng(8, "x")) for k in range(1, 5)]
    assert a == b  # same substream, same schedule
    assert a != c  # different seed, different schedule
    for k, d in enumerate(a, start=1):
        base = min(1.0 * 2.0 ** (k - 1), policy.max_delay)
        assert 0.5 * base <= d <= 1.5 * base


# ---------------------------------------------------------------------------
# call_with_retries
# ---------------------------------------------------------------------------


def run_in_thread(kernel: Kernel, body):
    out: dict = {}

    def wrapper():
        try:
            out["result"] = body()
        except BaseException as exc:  # noqa: BLE001 - test captures outcome
            out["error"] = exc

    SimThread(kernel, wrapper, "retry-test").start()
    kernel.run()
    return out


def test_first_attempt_success_burns_no_time():
    kernel = Kernel()
    policy = RetryPolicy(attempts=4, base_delay=1.0, jitter=0.0)
    out = run_in_thread(
        kernel,
        lambda: call_with_retries(
            lambda attempt: ("ok", attempt), kernel=kernel, policy=policy
        ),
    )
    assert out["result"] == ("ok", 0)
    assert kernel.now() == 0.0


def test_retries_then_succeeds_with_exact_backoff():
    kernel = Kernel()
    policy = RetryPolicy(attempts=5, base_delay=1.0, multiplier=2.0,
                         jitter=0.0)
    seen: list[int] = []
    retries: list[int] = []

    def flaky(attempt: int) -> str:
        seen.append(attempt)
        if attempt < 2:
            raise NetworkError("transient")
        return "done"

    out = run_in_thread(
        kernel,
        lambda: call_with_retries(
            flaky, kernel=kernel, policy=policy,
            on_retry=lambda n, exc: retries.append(n),
        ),
    )
    assert out["result"] == "done"
    assert seen == [0, 1, 2]
    assert retries == [1, 2]
    assert kernel.now() == pytest.approx(1.0 + 2.0)  # two backoff sleeps


def test_exhaustion_raises_with_attempt_count_and_cause():
    kernel = Kernel()
    policy = RetryPolicy(attempts=3, base_delay=0.1, jitter=0.0)

    def always_fails(attempt: int):
        raise NetworkError(f"boom {attempt}")

    out = run_in_thread(
        kernel,
        lambda: call_with_retries(always_fails, kernel=kernel, policy=policy),
    )
    exc = out["error"]
    assert isinstance(exc, RetryExhaustedError)
    assert isinstance(exc, NetworkError)  # callers catching NetworkError see it
    assert exc.attempts == 3
    assert isinstance(exc.last_error, NetworkError)
    assert "boom 2" in str(exc)


def test_non_retryable_error_propagates_immediately():
    kernel = Kernel()
    calls: list[int] = []

    def fails_hard(attempt: int):
        calls.append(attempt)
        raise ValueError("logic bug")

    out = run_in_thread(
        kernel,
        lambda: call_with_retries(
            fails_hard, kernel=kernel, policy=RetryPolicy(attempts=4)
        ),
    )
    assert isinstance(out["error"], ValueError)
    assert calls == [0]


def test_overall_deadline_caps_the_schedule():
    kernel = Kernel()
    policy = RetryPolicy(attempts=10, base_delay=1.0, multiplier=1.0,
                         jitter=0.0, overall_deadline=2.5)

    def always_fails(attempt: int):
        raise NetworkError("down")

    out = run_in_thread(
        kernel,
        lambda: call_with_retries(always_fails, kernel=kernel, policy=policy),
    )
    exc = out["error"]
    assert isinstance(exc, RetryExhaustedError)
    assert exc.attempts < 10  # deadline, not attempt count, ended it
    assert kernel.now() <= 2.5 + 1e-9


def test_backoff_outside_thread_context_is_an_error():
    kernel = Kernel()
    policy = RetryPolicy(attempts=2, base_delay=1.0, jitter=0.0)

    def always_fails(attempt: int):
        raise NetworkError("down")

    # First attempt runs fine without a thread; the backoff sleep cannot.
    with pytest.raises(SimulationError):
        call_with_retries(always_fails, kernel=kernel, policy=policy)


def test_transfer_retry_exhausted_is_both_families():
    exc = TransferRetryExhaustedError("gone", attempts=4, last_error=None)
    assert isinstance(exc, TransferError)
    assert isinstance(exc, RetryExhaustedError)
    assert exc.attempts == 4


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


def test_breaker_opens_after_threshold_and_half_opens_on_timeout():
    clock = FakeClock()
    breaker = CircuitBreaker(clock, failure_threshold=3, reset_timeout=10.0)
    assert breaker.state == "closed"
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open" and not breaker.allow()
    assert breaker.times_opened == 1
    clock.t = 9.9
    assert not breaker.allow()
    clock.t = 10.0
    assert breaker.state == "half_open" and breaker.allow()
    # A half-open failure slams it shut again immediately.
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.times_opened == 2
    clock.t = 20.0
    assert breaker.state == "half_open"
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.consecutive_failures == 0


def test_breaker_fast_fails_calls():
    kernel = Kernel()
    breaker = CircuitBreaker(kernel.clock, failure_threshold=2,
                             reset_timeout=60.0)
    policy = RetryPolicy(attempts=2, base_delay=0.5, jitter=0.0)

    def always_fails(attempt: int):
        raise NetworkError("down")

    first = run_in_thread(
        kernel,
        lambda: call_with_retries(
            always_fails, kernel=kernel, policy=policy, breaker=breaker
        ),
    )
    assert isinstance(first["error"], RetryExhaustedError)
    assert breaker.state == "open"
    t_before = kernel.now()
    second = run_in_thread(
        kernel,
        lambda: call_with_retries(
            always_fails, kernel=kernel, policy=policy, breaker=breaker
        ),
    )
    assert isinstance(second["error"], CircuitOpenError)
    assert kernel.now() == t_before  # fail-fast: no attempts, no backoff


def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(FakeClock(), failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(FakeClock(), reset_timeout=-1.0)


def test_half_open_success_resets_the_full_threshold():
    # After a half-open probe closes the breaker, the failure count
    # starts from zero: it takes another full threshold of consecutive
    # failures to open again, not threshold-minus-what-came-before.
    clock = FakeClock()
    breaker = CircuitBreaker(clock, failure_threshold=3, reset_timeout=10.0)
    for _ in range(3):
        breaker.record_failure()
    clock.t = 10.0
    assert breaker.state == "half_open"
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.consecutive_failures == 0
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed"  # 2 < 3: one probe success bought slack
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.times_opened == 2


def test_half_open_failure_restarts_the_reset_timer():
    # A failed probe re-opens *from the probe time*, not the original
    # open time — the next probe window is a full reset_timeout away.
    clock = FakeClock()
    breaker = CircuitBreaker(clock, failure_threshold=1, reset_timeout=10.0)
    breaker.record_failure()  # opens at t=0
    clock.t = 10.0
    assert breaker.state == "half_open"
    breaker.record_failure()  # failed probe re-opens at t=10
    assert breaker.state == "open"
    clock.t = 19.9
    assert not breaker.allow()  # old deadline (t=20 via t=10) not reached
    clock.t = 20.0
    assert breaker.allow()


def test_concurrent_probes_all_admitted_until_first_verdict():
    # The breaker itself does not serialize probes: while half-open,
    # every caller that asks is admitted.  (Single-probe gating is the
    # supervisor's job, layered on top — see ResourceHealth.)  The first
    # *failure* verdict slams the door on the stragglers.
    clock = FakeClock()
    breaker = CircuitBreaker(clock, failure_threshold=1, reset_timeout=5.0)
    breaker.record_failure()
    clock.t = 5.0
    assert [breaker.allow() for _ in range(3)] == [True, True, True]
    breaker.record_failure()  # probe A fails
    assert not breaker.allow()  # probes B and C now fail fast
    # A late success from a probe admitted before the failure still
    # closes the breaker: last verdict wins, by design.
    breaker.record_success()
    assert breaker.state == "closed"


def test_repeat_failures_while_open_do_not_re_open():
    # Failures recorded while already open (stragglers finishing after
    # the breaker tripped) must not bump times_opened or move opened_at.
    clock = FakeClock()
    breaker = CircuitBreaker(clock, failure_threshold=2, reset_timeout=10.0)
    breaker.record_failure()
    clock.t = 1.0
    breaker.record_failure()  # opens at t=1
    assert breaker.times_opened == 1
    clock.t = 5.0
    breaker.record_failure()  # straggler
    breaker.record_failure()
    assert breaker.times_opened == 1
    clock.t = 11.0
    assert breaker.state == "half_open"  # timer ran from t=1, untouched


def test_retry_exhausted_carries_structured_context():
    exc = RetryExhaustedError("gone", attempts=5, last_error=None)
    assert exc.context["attempts"] == 5

"""Tests for clocks, id generation and RNG substreams."""

from __future__ import annotations

import threading

import pytest

from repro.errors import SchedulingError
from repro.util.clock import Clock, VirtualClock, WallClock
from repro.util.ids import IdGenerator
from repro.util.rng import derive_seed, make_rng


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock().now() == 0.0
        assert VirtualClock(start=5.5).now() == 5.5

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(2.0) == 2.0
        assert clock.now() == 2.0
        clock.advance(0.5)
        assert clock.now() == 2.5

    def test_advance_zero_allowed(self):
        clock = VirtualClock(start=1.0)
        clock.advance(0.0)
        assert clock.now() == 1.0

    def test_negative_advance_rejected(self):
        with pytest.raises(SchedulingError):
            VirtualClock().advance(-1.0)

    def test_set_forwards_only(self):
        clock = VirtualClock(start=10.0)
        clock.set(12.0)
        assert clock.now() == 12.0
        with pytest.raises(SchedulingError):
            clock.set(11.0)

    def test_satisfies_clock_protocol(self):
        assert isinstance(VirtualClock(), Clock)
        assert isinstance(WallClock(), Clock)


class TestWallClock:
    def test_monotonic_nonnegative(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert 0.0 <= a <= b


class TestIdGenerator:
    def test_sequential_and_prefixed(self):
        gen = IdGenerator("agent")
        assert gen.next() == "agent-0"
        assert gen.next() == "agent-1"
        assert gen.prefix == "agent"

    def test_independent_generators(self):
        a, b = IdGenerator("a"), IdGenerator("b")
        a.next()
        assert b.next() == "b-0"

    def test_next_int(self):
        gen = IdGenerator()
        assert gen.next_int() == 0
        assert gen.next_int() == 1

    def test_thread_safety_no_duplicates(self):
        gen = IdGenerator("t")
        seen: list[str] = []
        lock = threading.Lock()

        def worker():
            local = [gen.next() for _ in range(500)]
            with lock:
                seen.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == len(set(seen)) == 4000


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42, "net")
        b = make_rng(42, "net")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_labels_differ(self):
        a = make_rng(42, "net")
        b = make_rng(42, "crypto")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_derive_seed_is_64_bit(self):
        seed = derive_seed(123, "label")
        assert 0 <= seed < 2**64

"""Canonical dict encoding is enforced on *decode*, not just encode.

The encoder always sorts dict entries by their encoded key bytes; the
decoder now refuses anything else.  This closes the duplicate-key
ambiguity an attacker could otherwise smuggle past digest-based checks:
two wire forms decoding to the same mapping would have different
digests, and a duplicated key would let the last entry silently shadow
the one a verifier hashed.
"""

from __future__ import annotations

import pytest

from repro.errors import SerializationError
from repro.util.serialization import canonical_digest, decode, encode


def test_round_trip_is_unaffected():
    value = {"kk1": 1, "kk2": [True, None, b"x"], "a": {"z": 0.5}}
    assert decode(encode(value)) == value


def test_duplicate_keys_are_refused():
    raw = encode({"kk1": 1, "kk2": 2})
    forged = raw.replace(b"kk2", b"kk1")
    with pytest.raises(SerializationError, match="non-canonical"):
        decode(forged)


def test_unsorted_keys_are_refused():
    raw = encode({"kk1": 1, "kk2": 2})
    # Renaming the *first* key to sort after the second breaks the
    # strictly-increasing key order the encoder guarantees.
    forged = raw.replace(b"kk1", b"kk3")
    with pytest.raises(SerializationError, match="non-canonical"):
        decode(forged)


def test_digest_has_one_preimage_per_mapping():
    """The property the appraisal chain leans on: equal mappings have
    equal digests, and the only wire form that decodes to a mapping is
    the canonical one the digest covers."""
    a = {"x": 1, "y": 2}
    b = {"y": 2, "x": 1}
    assert canonical_digest(a) == canonical_digest(b)
    assert encode(a) == encode(b)

"""Tests for the security audit log."""

from __future__ import annotations

from repro.util.audit import AuditLog
from repro.util.clock import VirtualClock


def test_records_carry_clock_time():
    clock = VirtualClock()
    log = AuditLog(clock)
    log.record("agent-1", "proxy.invoke", "Buffer.get", True)
    clock.advance(3.0)
    log.record("agent-1", "proxy.invoke", "Buffer.put", False, detail="disabled")
    recs = list(log)
    assert recs[0].time == 0.0 and recs[0].allowed
    assert recs[1].time == 3.0 and not recs[1].allowed
    assert recs[1].detail == "disabled"


def test_filtering():
    log = AuditLog()
    log.record("a", "op1", "t", True)
    log.record("a", "op2", "t", False)
    log.record("b", "op1", "t", False)
    assert len(log.records(domain="a")) == 2
    assert len(log.records(operation="op1")) == 2
    assert len(log.records(domain="a", operation="op1")) == 1
    assert {r.domain for r in log.denials()} == {"a", "b"}


def test_len_and_clear():
    log = AuditLog()
    assert len(log) == 0
    log.record("a", "op", "t", True)
    assert len(log) == 1
    log.clear()
    assert len(log) == 0


def test_str_formatting():
    log = AuditLog()
    rec = log.record("agent-1", "proxy.invoke", "Buffer.get", False, "revoked")
    text = str(rec)
    assert "DENY" in text and "agent-1" in text and "revoked" in text

"""AuditLog ring buffer: bounded capacity, dropped tally, span stamping."""

from __future__ import annotations

import pytest

from repro.obs import runtime
from repro.obs.trace import Tracer
from repro.server.testbed import Testbed
from repro.util.audit import AuditLog
from repro.util.clock import VirtualClock


def make_log(capacity=None):
    return AuditLog(VirtualClock(), capacity=capacity)


def test_unbounded_by_default():
    log = make_log()
    for i in range(100):
        log.record("d", "op", f"t{i}", True)
    assert len(log) == 100
    assert log.dropped == 0
    assert log.capacity is None


def test_capacity_bounds_and_counts_drops():
    log = make_log(capacity=3)
    for i in range(10):
        log.record("d", "op", f"t{i}", True)
    assert len(log) == 3
    assert log.dropped == 7
    # The survivors are the *newest* records (ring buffer, not a gate).
    assert [r.target for r in log] == ["t7", "t8", "t9"]
    # Query helpers see only what survived.
    assert len(log.records(operation="op")) == 3


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        make_log(capacity=0)
    with pytest.raises(ValueError):
        make_log(capacity=-5)


def test_clear_resets_dropped():
    log = make_log(capacity=2)
    for i in range(5):
        log.record("d", "op", str(i), True)
    assert log.dropped == 3
    log.clear()
    assert len(log) == 0 and log.dropped == 0
    log.record("d", "op", "fresh", True)
    assert len(log) == 1


def test_records_stamp_current_span_when_tracing():
    clock = VirtualClock()
    log = AuditLog(clock)
    tracer = Tracer(clock=clock)
    try:
        log.record("d", "op", "untraced", True)
        runtime.install(tracer=tracer)
        with tracer.span("protocol.get_proxy") as span:
            log.record("d", "op", "traced", False)
    finally:
        runtime.uninstall()
    untraced, traced = list(log)
    assert untraced.span_id == ""
    assert traced.span_id == span.span_id
    assert log.by_span(span.span_id) == [traced]


def test_testbed_default_is_bounded():
    bed = Testbed(1)
    assert bed.home.audit.capacity == 100_000
    # Explicit override (including back to unlimited) still works.
    bed2 = Testbed(1, server_kwargs={"audit_capacity": None})
    assert bed2.home.audit.capacity is None

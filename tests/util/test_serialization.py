"""Unit + property tests for the canonical serialization codec."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.util.serialization import (
    MAX_DEPTH,
    canonical_digest,
    decode,
    encode,
    register_serializable,
)


# ---------------------------------------------------------------------------
# Round-trip basics
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        1,
        -1,
        2**200,
        -(2**200),
        0.0,
        -1.5,
        math.inf,
        "",
        "hello",
        "ünïcødé ✓",
        b"",
        b"\x00\xff" * 10,
        [],
        [1, 2, 3],
        (),
        (1, "a", None),
        set(),
        {1, 2, 3},
        frozenset({"a", "b"}),
        {},
        {"k": "v", "n": [1, 2, {"deep": True}]},
        {1: "int-key", (1, 2): "tuple-key"},
    ],
)
def test_roundtrip(value):
    assert decode(encode(value)) == value


def test_roundtrip_preserves_types():
    assert type(decode(encode((1, 2)))) is tuple
    assert type(decode(encode([1, 2]))) is list
    assert type(decode(encode(frozenset({1})))) is frozenset
    assert type(decode(encode({1}))) is set
    assert type(decode(encode(1))) is int
    assert type(decode(encode(1.0))) is float


def test_nan_roundtrip():
    out = decode(encode(float("nan")))
    assert math.isnan(out)


def test_bool_not_confused_with_int():
    assert decode(encode(True)) is True
    assert decode(encode(1)) == 1
    assert encode(True) != encode(1)


# ---------------------------------------------------------------------------
# Canonicality — same value, same bytes
# ---------------------------------------------------------------------------


def test_dict_insertion_order_irrelevant():
    a = {"x": 1, "y": 2, "z": 3}
    b = {"z": 3, "x": 1, "y": 2}
    assert encode(a) == encode(b)


def test_set_iteration_order_irrelevant():
    assert encode({3, 1, 2}) == encode({1, 2, 3})
    assert encode(frozenset("abc")) == encode(frozenset("cba"))


def test_digest_is_sha256_of_encoding():
    import hashlib

    value = {"agent": "a-1", "rights": [1, 2]}
    assert canonical_digest(value) == hashlib.sha256(encode(value)).digest()


# ---------------------------------------------------------------------------
# Registered objects
# ---------------------------------------------------------------------------


@register_serializable
class Point:
    def __init__(self, x: int, y: int) -> None:
        self.x = x
        self.y = y

    def to_state(self):
        return {"x": self.x, "y": self.y}

    @classmethod
    def from_state(cls, state):
        return cls(state["x"], state["y"])

    def __eq__(self, other):
        return isinstance(other, Point) and (self.x, self.y) == (other.x, other.y)

    def __hash__(self):
        return hash((self.x, self.y))


def test_object_roundtrip():
    p = Point(3, -4)
    assert decode(encode(p)) == p


def test_nested_object_roundtrip():
    data = {"points": [Point(0, 0), Point(1, 1)]}
    assert decode(encode(data)) == data


def test_unregistered_type_rejected():
    class Stray:
        pass

    with pytest.raises(SerializationError, match="unregistered"):
        encode(Stray())


def test_register_requires_protocol_methods():
    class NoState:
        pass

    with pytest.raises(SerializationError, match="to_state"):
        register_serializable(NoState)


def test_duplicate_name_rejected():
    class Fake:
        def to_state(self):
            return None

        @classmethod
        def from_state(cls, state):
            return cls()

    with pytest.raises(SerializationError, match="already registered"):
        register_serializable(Fake, name=f"{Point.__module__}:Point")


def test_reregistering_same_class_is_idempotent():
    assert register_serializable(Point) is Point


def test_decode_unknown_type_name():
    class Tmp:
        def to_state(self):
            return 1

        @classmethod
        def from_state(cls, state):
            return cls()

    register_serializable(Tmp, name="tests:tmp-unique")
    blob = encode(Tmp())
    evil = blob.replace(b"tests:tmp-unique", b"tests:tmp-UNIQUE")
    with pytest.raises(SerializationError, match="unknown serializable type"):
        decode(evil)


def test_from_state_exception_wrapped():
    class Fragile:
        def to_state(self):
            return "not-a-dict"

        @classmethod
        def from_state(cls, state):
            return cls(**state)  # TypeError on a string

    register_serializable(Fragile, name="tests:fragile")
    with pytest.raises(SerializationError, match="from_state failed"):
        decode(encode(Fragile()))


# ---------------------------------------------------------------------------
# Hostile input
# ---------------------------------------------------------------------------


def test_truncated_input_rejected():
    blob = encode({"k": [1, 2, 3]})
    for cut in range(len(blob)):
        with pytest.raises(SerializationError):
            decode(blob[:cut])


def test_trailing_garbage_rejected():
    with pytest.raises(SerializationError, match="trailing"):
        decode(encode(1) + b"x")


def test_unknown_tag_rejected():
    with pytest.raises(SerializationError, match="unknown type tag"):
        decode(b"Z")


def test_huge_declared_length_rejected_without_allocation():
    # Claims a 2**40-byte string with a 3-byte payload.
    evil = bytearray(b"S")
    n = 2**40
    while True:
        byte = n & 0x7F
        n >>= 7
        evil.append(byte | 0x80 if n else byte)
        if not n:
            break
    evil += b"abc"
    with pytest.raises(SerializationError, match="declared length"):
        decode(bytes(evil))


def test_depth_limit_on_encode():
    deep: list = []
    cursor = deep
    for _ in range(MAX_DEPTH + 2):
        nxt: list = []
        cursor.append(nxt)
        cursor = nxt
    with pytest.raises(SerializationError, match="MAX_DEPTH"):
        encode(deep)


def test_cycle_rejected():
    lst: list = [1]
    lst.append(lst)
    with pytest.raises(SerializationError, match="cyclic"):
        encode(lst)


def test_invalid_utf8_rejected():
    blob = bytearray(encode("ab"))
    blob[-1] = 0xFF  # corrupt the payload into invalid utf-8
    with pytest.raises(SerializationError, match="utf-8"):
        decode(bytes(blob))


def test_decode_requires_bytes():
    with pytest.raises(SerializationError, match="expects bytes"):
        decode("not bytes")  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Property-based round-trips
# ---------------------------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**128), max_value=2**128),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.lists(children, max_size=5).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
        st.frozensets(
            st.one_of(st.integers(), st.text(max_size=8)), max_size=5
        ),
    ),
    max_leaves=25,
)


@settings(max_examples=200, deadline=None)
@given(_values)
def test_property_roundtrip(value):
    assert decode(encode(value)) == value


@settings(max_examples=100, deadline=None)
@given(_values)
def test_property_encoding_is_canonical_fixed_point(value):
    # decode∘encode reaches a canonical form: re-encoding is a fixed point.
    # (Note: equal-by-== values may encode differently on purpose — the
    # codec distinguishes bool from int and 1 from 1.0 on the wire.)
    blob = encode(value)
    assert encode(decode(blob)) == blob


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(st.text(max_size=6), st.integers(), max_size=6))
def test_property_dict_order_canonical(d):
    shuffled = dict(reversed(list(d.items())))
    assert encode(d) == encode(shuffled)

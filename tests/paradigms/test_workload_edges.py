"""Edge cases of the paradigm-comparison harness."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.paradigms.workload import build_search_world, run_search


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError, match="unknown strategy"):
        run_search("carrier-pigeon")


def test_world_params_recorded_in_result():
    result = run_search("rev", n_servers=2, records_per_server=20,
                        selectivity=0.25, blob_size=32, seed=13)
    assert result.n_servers == 2
    assert result.selectivity == 0.25
    assert result.blob_size == 32
    assert result.strategy == "rev"


def test_identical_seeds_identical_data():
    a = build_search_world(n_servers=2, records_per_server=20, seed=3)
    b = build_search_world(n_servers=2, records_per_server=20, seed=3)
    assert a.expected == b.expected
    c = build_search_world(n_servers=2, records_per_server=20, seed=4)
    assert a.expected != c.expected


def test_hot_fraction_bounds():
    # selectivity 0 still marks at least one record hot per server
    world = build_search_world(n_servers=2, records_per_server=10,
                               selectivity=0.0, seed=3)
    assert world.expected["count"] == 2
    # selectivity 1: everything is hot
    world = build_search_world(n_servers=2, records_per_server=10,
                               selectivity=1.0, seed=3)
    assert world.expected["count"] == 20


def test_answer_mismatch_raises():
    """The harness self-checks every strategy against ground truth."""
    world = build_search_world(n_servers=2, records_per_server=10, seed=3)
    world.expected["count"] += 1  # sabotage the ground truth
    with pytest.raises(ReproError, match="computed"):
        run_search("rev", world)

"""Tests for RPC, REV and the three-way search workload."""

from __future__ import annotations

import pytest

from repro.credentials.rights import Rights
from repro.errors import NetworkError
from repro.paradigms.rev import RevClient, RevService
from repro.paradigms.rpc import RpcClient, RpcService
from repro.paradigms.workload import (
    STRATEGIES,
    build_search_world,
    run_search,
)
from repro.server.testbed import Testbed
from repro.sim.threads import SimThread


def run_client(bed, fn):
    thread = SimThread(bed.kernel, fn, "client", on_error="store")
    thread.start()
    bed.run()
    if thread.exception is not None:
        raise thread.exception
    return thread.result


class TestRpc:
    def test_call_roundtrip(self):
        bed = Testbed(2)
        service = RpcService(bed.servers[1])
        service.register("add", lambda a, b: a + b)
        client = RpcClient(bed.home)
        result = run_client(bed, lambda: client.call(bed.servers[1].name, "add", 2, 3))
        assert result == 5

    def test_unknown_procedure(self):
        bed = Testbed(2)
        RpcService(bed.servers[1])
        client = RpcClient(bed.home)
        with pytest.raises(NetworkError, match="no procedure"):
            run_client(bed, lambda: client.call(bed.servers[1].name, "ghost"))

    def test_procedure_exception_reported(self):
        bed = Testbed(2)
        service = RpcService(bed.servers[1])

        def explode():
            raise ValueError("boom")

        service.register("explode", explode)
        client = RpcClient(bed.home)
        with pytest.raises(NetworkError, match="boom"):
            run_client(bed, lambda: client.call(bed.servers[1].name, "explode"))

    def test_duplicate_registration(self):
        bed = Testbed(1)
        service = RpcService(bed.home)
        service.register("f", lambda: 1)
        with pytest.raises(NetworkError):
            service.register("f", lambda: 2)


class TestRev:
    SQUARE = "def compute(x):\n    return x * x\n"

    def test_evaluate_roundtrip(self):
        bed = Testbed(2)
        RevService(bed.servers[1], exports={})
        client = RevClient(bed.home)
        result = run_client(
            bed,
            lambda: client.evaluate(bed.servers[1].name, self.SQUARE, "compute", 7),
        )
        assert result == 49

    def test_exports_visible_to_shipped_code(self):
        bed = Testbed(2)
        RevService(bed.servers[1], exports={"lookup": {"a": 1}.get})
        client = RevClient(bed.home)
        src = "def fetch(k):\n    return lookup(k)\n"
        result = run_client(
            bed, lambda: client.evaluate(bed.servers[1].name, src, "fetch", "a")
        )
        assert result == 1

    def test_malicious_code_rejected(self):
        bed = Testbed(2)
        RevService(bed.servers[1], exports={})
        client = RevClient(bed.home)
        with pytest.raises(NetworkError, match="import of 'os'"):
            run_client(
                bed,
                lambda: client.evaluate(
                    bed.servers[1].name, "import os\ndef f():\n    pass\n", "f"
                ),
            )

    def test_shipped_code_exception_contained(self):
        bed = Testbed(2)
        RevService(bed.servers[1], exports={})
        client = RevClient(bed.home)
        src = "def f():\n    return 1 // 0\n"
        with pytest.raises(NetworkError, match="evaluation raised"):
            run_client(
                bed, lambda: client.evaluate(bed.servers[1].name, src, "f")
            )

    def test_each_evaluation_isolated(self):
        bed = Testbed(2)
        RevService(bed.servers[1], exports={})
        client = RevClient(bed.home)
        run_client(
            bed,
            lambda: client.evaluate(
                bed.servers[1].name, "STATE = 'left behind'\ndef f():\n    return STATE\n", "f"
            ),
        )
        with pytest.raises(NetworkError):
            run_client(
                bed,
                lambda: client.evaluate(
                    bed.servers[1].name, "def g():\n    return STATE\n", "g"
                ),
            )


class TestSearchWorkload:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_strategies_agree(self, strategy):
        result = run_search(
            strategy, n_servers=3, records_per_server=40,
            selectivity=0.25, blob_size=100, seed=11,
        )
        assert result.answer["count"] == 30
        assert result.answer["min_price"] > 0
        assert result.makespan > 0
        assert result.total_bytes > 0

    def test_expected_shape_agent_saves_client_bytes(self):
        """Harrison et al.'s claim, at a heavy-data operating point."""
        kw = dict(n_servers=5, records_per_server=100, selectivity=0.5,
                  blob_size=400, seed=3)
        rpc = run_search("rpc", **kw)
        agent = run_search("agent", **kw)
        assert agent.client_link_bytes < rpc.client_link_bytes
        assert agent.total_bytes < rpc.total_bytes

    def test_rpc_wins_when_data_is_tiny(self):
        """Crossover: almost nothing matches, records are tiny — shipping
        code (REV/agent) costs more than just asking."""
        kw = dict(n_servers=2, records_per_server=10, selectivity=0.1,
                  blob_size=4, seed=3)
        rpc = run_search("rpc", **kw)
        agent = run_search("agent", **kw)
        assert rpc.total_bytes < agent.total_bytes

    def test_ground_truth_matches_brute_force(self):
        world = build_search_world(
            n_servers=2, records_per_server=30, selectivity=0.2, blob_size=10
        )
        prices = []
        for server in world.data_servers:
            from repro.naming.urn import URN

            store = server.registry.lookup(URN.parse(world.stores[server.name]))
            prices += [v["price"] for _k, v in store.query("hot-*")]
        assert world.expected == {
            "min_price": min(prices),
            "count": len(prices),
        }

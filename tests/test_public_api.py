"""The documented top-level API surface must exist and be importable."""

from __future__ import annotations

import pytest

import repro


def test_version():
    assert repro.__version__


@pytest.mark.parametrize(
    "name",
    ["Agent", "register_trusted_agent_class", "Itinerary", "Testbed",
     "AgentServer", "Rights", "SecurityPolicy", "PolicyRule", "URN",
     "ResourceImpl", "AccessProtocol", "export", "ReproError",
     "SecurityException"],
)
def test_top_level_exports(name):
    assert getattr(repro, name) is not None


def test_unknown_attribute():
    with pytest.raises(AttributeError):
        repro.NotAThing


def test_lazy_exports_match_canonical():
    from repro.server.testbed import Testbed

    assert repro.Testbed is Testbed


def test_readme_quickstart_runs():
    """The exact code shown in README.md must work."""
    from repro import (
        Agent,
        PolicyRule,
        Rights,
        SecurityPolicy,
        Testbed,
        URN,
        register_trusted_agent_class,
    )
    from repro.apps.buffer import Buffer

    bed = Testbed(n_servers=1)
    mailbox = Buffer(
        URN.parse("urn:resource:site0.net/mailbox"),
        URN.parse("urn:principal:site0.net/postmaster"),
        SecurityPolicy(rules=[
            PolicyRule("any", "*", Rights.of("Buffer.put", "Buffer.size")),
        ]),
        capacity=16,
    )
    bed.home.install_resource(mailbox)

    @register_trusted_agent_class
    class ReadmeGreeter(Agent):
        def run(self):
            proxy = self.host.get_resource("urn:resource:site0.net/mailbox")
            proxy.put("hello")
            self.complete()

    bed.launch(ReadmeGreeter(), rights=Rights.of("Buffer.*"))
    bed.run()
    assert mailbox.get() == "hello"

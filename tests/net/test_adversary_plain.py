"""Attacks against the *insecure* transport must succeed.

This reproduces the paper's motivation (section 2): without the security
mechanisms, each attack class works.  The mirror-image tests in
``test_secure_channel.py`` show each one defeated.
"""

from __future__ import annotations

from repro.net.adversary import (
    Dropper,
    Eavesdropper,
    Impersonator,
    Replayer,
    Tamperer,
)
from repro.util.rng import make_rng


def wire(world, a="alice", b="bob"):
    ep_a = world.add_plain(a)
    ep_b = world.add_plain(b)
    fwd, rev = world.connect(a, b)
    return ep_a, ep_b, fwd, rev


def test_eavesdropper_reads_plaintext(world):
    ep_a, ep_b, fwd, _ = wire(world)
    spy = Eavesdropper()
    fwd.add_tap(spy)
    ep_b.bind("order", lambda m: None)
    ep_a.send("bob", "order", b"credit-card=4242424242424242")
    world.run()
    assert spy.saw_substring(b"4242424242424242")


def test_tamperer_corrupts_undetected(world):
    ep_a, ep_b, fwd, _ = wire(world)
    fwd.add_tap(Tamperer(make_rng(3, "tamper"), rate=1.0))
    got: list[bytes] = []
    ep_b.bind("data", lambda m: got.append(m.payload))
    ep_a.send("bob", "data", b"account=100")
    world.run()
    # The corrupted payload is delivered as if nothing happened.
    assert len(got) == 1 and got[0] != b"account=100"


def test_dropper_deletes_silently(world):
    ep_a, ep_b, fwd, _ = wire(world)
    dropper = Dropper(make_rng(4, "drop"), rate=1.0)
    fwd.add_tap(dropper)
    got = []
    ep_b.bind("data", lambda m: got.append(m))
    ep_a.send("bob", "data", b"important")
    world.run()
    assert got == [] and dropper.dropped_count == 1


def test_replayer_duplicates_accepted(world):
    ep_a, ep_b, fwd, _ = wire(world)
    fwd.add_tap(Replayer(copies=2))
    got = []
    ep_b.bind("pay", lambda m: got.append(m.payload))
    ep_a.send("bob", "pay", b"transfer $100")
    world.run()
    # The victim processes the payment three times.
    assert got == [b"transfer $100"] * 3


def test_impersonator_forgery_accepted(world):
    ep_a, ep_b, fwd, _ = wire(world)
    fwd.add_tap(
        Impersonator(
            claim_src="alice", kind="cmd", payload=b"delete everything", dst="bob"
        )
    )
    got: list[tuple[str, bytes]] = []
    ep_b.bind("cmd", lambda m: got.append((m.src, m.payload)))
    ep_a.send("bob", "cmd", b"legit command")
    world.run()
    # Bob sees a message "from alice" that alice never sent.
    assert ("alice", b"delete everything") in got


def test_tap_removal(world):
    ep_a, ep_b, fwd, _ = wire(world)
    spy = Eavesdropper()
    fwd.add_tap(spy)
    fwd.remove_tap(spy)
    ep_b.bind("x", lambda m: None)
    ep_a.send("bob", "x", b"secret")
    world.run()
    assert not spy.captured

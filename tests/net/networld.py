"""A small simulated world with PKI, shared by network tests."""

from __future__ import annotations

from repro.crypto.cert import CertificateAuthority
from repro.crypto.keys import KeyPair
from repro.net.network import Network
from repro.net.secure_channel import SecureHost
from repro.net.transport import Endpoint
from repro.sim.kernel import Kernel
from repro.util.rng import make_rng


class World:
    """A kernel + network + CA, with helpers to add plain or secure hosts."""

    def __init__(self, seed: int = 100) -> None:
        self.kernel = Kernel()
        self.network = Network(self.kernel, seed=seed)
        self.seed = seed
        self.ca = CertificateAuthority(
            "test-ca", make_rng(seed, "ca"), self.kernel.clock
        )
        self.endpoints: dict[str, Endpoint] = {}
        self.hosts: dict[str, SecureHost] = {}

    def add_plain(self, name: str) -> Endpoint:
        self.network.add_node(name)
        ep = Endpoint(self.network, name)
        self.endpoints[name] = ep
        return ep

    def add_secure(self, name: str, *, rogue_ca: CertificateAuthority | None = None) -> SecureHost:
        ep = self.add_plain(name)
        keys = KeyPair.generate(make_rng(self.seed, f"keys:{name}"), bits=512)
        issuer = rogue_ca if rogue_ca is not None else self.ca
        cert = issuer.issue(name, keys.public)
        host = SecureHost(
            endpoint=ep,
            name=name,
            keys=keys,
            certificate=cert,
            trust_anchor=self.ca,
            clock=self.kernel.clock,
            rng=make_rng(self.seed, f"host:{name}"),
        )
        self.hosts[name] = host
        return host

    def connect(self, a: str, b: str, **kw):
        return self.network.connect(a, b, **kw)

    def run(self, **kw) -> float:
        return self.kernel.run(**kw)



"""Amortized sealing: SealContext equivalence and batched secure sends.

The transfer path seals many small application messages under one
session key.  :class:`~repro.crypto.cipher.SealContext` amortizes the
key derivation and HMAC key schedule per session, and
``SecureChannel.send_many`` amortizes the seal+MAC per *frame*.  Both
are pure optimizations — these tests pin that the bytes, the security
properties (tamper/replay rejection) and the delivery semantics are
unchanged.
"""

from __future__ import annotations

import pytest

from repro.crypto.cipher import SealContext, open_payload, seal_payload
from repro.crypto.mac import HmacKey, hmac_sha256, verify_hmac
from repro.errors import IntegrityError
from repro.net.adversary import Replayer, Tamperer
from repro.sim.threads import SimThread
from repro.util.rng import make_rng

KEY = b"\x07" * 32
NONCE = bytes(range(16))


def secure_pair(world, a="alice", b="bob", **link_kw):
    host_a = world.add_secure(a)
    host_b = world.add_secure(b)
    fwd, rev = world.connect(a, b, **link_kw)
    return host_a, host_b, fwd, rev


def run_client(world, fn, name="client"):
    t = SimThread(world.kernel, fn, name, on_error="store")
    t.start()
    world.run()
    if t.exception is not None:
        raise t.exception
    return t.result


class TestHmacKey:
    def test_digest_matches_one_shot(self):
        key = HmacKey(KEY)
        for message in (b"", b"x", b"hello" * 100, bytes(range(256))):
            assert key.digest(message) == hmac_sha256(KEY, message)

    def test_long_key_matches_one_shot(self):
        long_key = b"k" * 100  # > block size: hashed down first
        assert HmacKey(long_key).digest(b"m") == hmac_sha256(long_key, b"m")

    def test_verify_accepts_and_rejects(self):
        key = HmacKey(KEY)
        tag = key.digest(b"payload")
        assert key.verify(b"payload", tag)
        assert verify_hmac(KEY, b"payload", tag)
        assert not key.verify(b"payload", bytes(32))
        assert not key.verify(b"other", tag)


class TestSealContext:
    def test_seal_bytes_identical_to_one_shot(self):
        ctx = SealContext(KEY)
        for aad in (b"", b"channel-7"):
            sealed = ctx.seal(NONCE, b"secret data", associated_data=aad)
            assert sealed == seal_payload(KEY, NONCE, b"secret data",
                                          associated_data=aad)

    def test_interop_both_directions(self):
        ctx = SealContext(KEY)
        sealed_ctx = ctx.seal(NONCE, b"from context", associated_data=b"a")
        sealed_one = seal_payload(KEY, NONCE, b"from one-shot",
                                  associated_data=b"a")
        assert open_payload(KEY, sealed_ctx, associated_data=b"a") == (
            b"from context"
        )
        assert ctx.open(sealed_one, associated_data=b"a") == b"from one-shot"

    def test_tamper_rejected(self):
        ctx = SealContext(KEY)
        sealed = bytearray(ctx.seal(NONCE, b"secret"))
        sealed[20] ^= 1
        with pytest.raises(IntegrityError):
            ctx.open(bytes(sealed))

    def test_wrong_aad_rejected(self):
        ctx = SealContext(KEY)
        sealed = ctx.seal(NONCE, b"secret", associated_data=b"chan-1")
        with pytest.raises(IntegrityError):
            ctx.open(sealed, associated_data=b"chan-2")

    def test_short_payload_rejected(self):
        with pytest.raises(IntegrityError):
            SealContext(KEY).open(b"tiny")


class TestSendMany:
    def test_one_frame_many_dispatches_in_order(self, world):
        host_a, host_b, *_ = secure_pair(world)
        got: list[bytes] = []
        host_b.bind_app("report", lambda peer, body: got.append(body))
        bodies = [f"report-{i}".encode() for i in range(5)]

        def client():
            channel = host_a.connect("bob")
            sent_before = world.network.stats["sent"]
            channel.send_many("report", bodies)
            return world.network.stats["sent"] - sent_before

        frames = run_client(world, client)
        assert got == bodies  # every body, in order
        assert frames == 1  # ...from a single sealed frame
        assert host_a.stats["batches_sent"] == 1
        assert host_b.stats["batches_received"] == 1

    def test_empty_batch_sends_nothing(self, world):
        host_a, host_b, *_ = secure_pair(world)
        host_b.bind_app("report", lambda peer, body: None)

        def client():
            channel = host_a.connect("bob")
            channel.send_many("report", [])
            return host_a.stats["batches_sent"]

        assert run_client(world, client) == 0

    def test_batch_interleaves_with_singles(self, world):
        host_a, host_b, *_ = secure_pair(world)
        got: list[bytes] = []
        host_b.bind_app("report", lambda peer, body: got.append(body))

        def client():
            channel = host_a.connect("bob")
            channel.send("report", b"one")
            channel.send_many("report", [b"two", b"three"])
            channel.send("report", b"four")

        run_client(world, client)
        assert got == [b"one", b"two", b"three", b"four"]

    def test_tampered_batch_rejected_whole(self, world):
        host_a, host_b, fwd, _ = secure_pair(world)
        got: list[bytes] = []
        host_b.bind_app("report", lambda peer, body: got.append(body))

        def client():
            channel = host_a.connect("bob")
            fwd.add_tap(Tamperer(make_rng(5, "t"), rate=1.0))
            channel.send_many("report", [b"a", b"b", b"c"])

        run_client(world, client)
        # All-or-nothing: a corrupt frame delivers none of its bodies.
        assert got == []
        assert host_b.stats["rejected_tampered"] == 1

    def test_replayed_batch_rejected(self, world):
        host_a, host_b, fwd, _ = secure_pair(world)
        got: list[bytes] = []
        host_b.bind_app("pay", lambda peer, body: got.append(body))

        def client():
            channel = host_a.connect("bob")
            fwd.add_tap(Replayer(copies=2))
            channel.send_many("pay", [b"bill $10", b"bill $20"])

        run_client(world, client)
        # The frame's sequence number burns once: replays deliver nothing.
        assert got == [b"bill $10", b"bill $20"]
        assert host_b.stats["rejected_replayed"] == 2

"""Tests for the schedule-driven fault injector."""

from __future__ import annotations

import pytest

from repro.net.faults import FaultInjector
from repro.sim.threads import SimThread


def three_nodes(world):
    for name in ("a", "b", "c"):
        world.add_plain(name)
    world.connect("a", "b", latency=0.01)
    world.connect("b", "c", latency=0.01)
    world.connect("a", "c", latency=0.01)
    return FaultInjector(world.kernel, world.network, seed=world.seed)


def test_link_down_window_drops_traffic_then_recovers(world):
    faults = three_nodes(world)
    got: list[float] = []
    world.endpoints["b"].bind("tick", lambda m: got.append(world.kernel.now()))
    faults.link_down("a", "b", at=1.0, duration=2.0)
    # One message before the outage, one during, one after.  The direct
    # a-b link is down during [1, 3) but routing fails over via c.
    for t in (0.5, 2.0, 4.0):
        world.kernel.schedule(
            t, lambda: world.endpoints["a"].send("b", "tick", b"")
        )
    world.run()
    assert len(got) == 3
    # The mid-outage message took the two-hop detour (2 * 0.01 latency).
    assert got[1] == pytest.approx(2.02, abs=1e-3)
    assert faults.stats["link_down"] == 1
    assert faults.stats["link_up"] == 1
    kinds = [kind for _, kind, _ in faults.log]
    assert kinds == ["link_down", "link_up"]


def test_partition_cuts_all_cross_links(world):
    faults = three_nodes(world)
    severed = faults.partition(["a"], ["b", "c"], at=1.0)
    assert severed == 2
    got = []
    world.endpoints["b"].bind("tick", lambda m: got.append(m))
    world.kernel.schedule(
        2.0, lambda: world.endpoints["a"].send("b", "tick", b"")
    )
    world.run()
    assert got == []  # a is fully isolated
    assert world.network.stats["unroutable"] == 1
    assert faults.stats["link_down"] == 2


def test_flap_schedules_count_cycles(world):
    faults = three_nodes(world)
    faults.flap("a", "b", start=1.0, period=2.0, down_for=0.5, count=3)
    world.run()
    assert faults.stats["link_down"] == 3
    assert faults.stats["link_up"] == 3
    down_times = [t for t, kind, _ in faults.log if kind == "link_down"]
    assert down_times == [1.0, 3.0, 5.0]


def test_loss_burst_degrades_then_restores(world):
    faults = three_nodes(world)
    link = world.network.link("a", "b")
    assert link.loss_rate == 0.0
    faults.loss_burst("a", "b", at=1.0, duration=2.0, loss_rate=1.0)
    lost: list[object] = []
    world.endpoints["b"].bind("tick", lambda m: lost.append(m))
    # During the burst every message dies; before/after they pass.
    for t in (0.5, 1.5, 2.5, 4.0):
        world.kernel.schedule(
            t, lambda: world.endpoints["a"].send("b", "tick", b"")
        )
    world.run()
    assert len(lost) == 2  # t=0.5 and t=4.0 made it
    assert link.loss_rate == 0.0  # restored after the window
    assert faults.stats["loss_burst_begin"] == 1
    assert faults.stats["loss_burst_end"] == 1


def test_loss_burst_is_seed_deterministic(world):
    # Same seed, same schedule → identical survivor sets.
    def run_once(seed: int) -> list[int]:
        from tests.net.networld import World

        w = World(seed=seed)
        for name in ("a", "b"):
            w.add_plain(name)
        w.connect("a", "b", latency=0.01)
        faults = FaultInjector(w.kernel, w.network, seed=seed)
        faults.loss_burst("a", "b", at=0.0, duration=100.0, loss_rate=0.5)
        got: list[int] = []
        w.endpoints["b"].bind("tick", lambda m: got.append(int(m.payload)))
        for i in range(30):
            w.kernel.schedule(
                float(i),
                lambda i=i: w.endpoints["a"].send("b", "tick", str(i).encode()),
            )
        w.run()
        return got

    first, second, other = run_once(42), run_once(42), run_once(43)
    assert first == second
    assert 0 < len(first) < 30  # the burst actually dropped some
    assert first != other


def test_crash_closes_endpoint_and_restart_reopens(world):
    faults = three_nodes(world)

    class CrashBox:
        # Duck-typed crash target standing in for an AgentServer.
        def __init__(self, endpoint):
            self.name = endpoint.name
            self.endpoint = endpoint

        def crash(self):
            self.endpoint.close()

        def restart(self):
            self.endpoint.open()

    box = CrashBox(world.endpoints["b"])
    faults.crash(box, at=1.0, restart_at=3.0)
    got: list[float] = []
    world.endpoints["b"].bind("tick", lambda m: got.append(world.kernel.now()))
    for t in (0.5, 2.0, 4.0):
        world.kernel.schedule(
            t, lambda: world.endpoints["a"].send("b", "tick", b"")
        )
    world.run()
    assert len(got) == 2  # the t=2.0 message hit a dead process
    assert world.endpoints["b"].stats["dropped_closed"] == 1
    assert faults.stats["crashes"] == 1
    assert faults.stats["restarts"] == 1


def test_crash_restart_ordering_validated(world):
    faults = three_nodes(world)
    with pytest.raises(ValueError):
        faults.crash(object(), at=5.0, restart_at=5.0)


def test_heal_partition_is_idempotent(world):
    faults = three_nodes(world)
    got: list[float] = []
    world.endpoints["b"].bind("tick", lambda m: got.append(world.kernel.now()))
    faults.named_partition("iso", ["b"], ["a", "c"], at=1.0)
    # Belt-and-braces recovery: the same heal issued twice, plus a heal
    # for a partition that never existed.  Exactly one restore fires;
    # the rest are logged no-ops, never errors.
    faults.heal_partition("iso", at=3.0)
    faults.heal_partition("iso", at=4.0)
    faults.heal_partition("ghost", at=4.0)
    for t in (0.5, 2.0, 5.0):
        world.kernel.schedule(
            t, lambda: world.endpoints["a"].send("b", "tick", b"")
        )
    world.run()
    assert len(got) == 2  # the t=2.0 message died inside the window
    kinds = [kind for _, kind, _ in faults.log]
    assert kinds.count("partition_heal:iso") == 1
    assert kinds.count("partition_heal_noop:iso") == 1
    # Unknown names are refused at schedule time (logged immediately).
    assert "partition_heal_noop:ghost" in kinds
    window = [k for k in kinds if k.endswith(":iso")]
    assert window == [
        "partition_begin:iso",
        "partition_heal:iso",
        "partition_heal_noop:iso",
    ]

"""Property: secure channels deliver exactly-once, in order, unattacked."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.threads import SimThread

from tests.net.networld import World


def run_exchange(payload_sizes: list[int], latency: float) -> list[bytes]:
    world = World(seed=321)
    host_a = world.add_secure("alice")
    host_b = world.add_secure("bob")
    world.connect("alice", "bob", latency=latency)
    received: list[bytes] = []
    host_b.bind_app("data", lambda peer, body: received.append(body))

    def client():
        channel = host_a.connect("bob")
        for index, size in enumerate(payload_sizes):
            channel.send("data", bytes([index % 256]) * size)

    SimThread(world.kernel, client, "client").start()
    world.run()
    return received


@settings(max_examples=25, deadline=None)
@given(
    payload_sizes=st.lists(st.integers(min_value=0, max_value=2000),
                           min_size=1, max_size=12),
    latency=st.floats(min_value=0.0001, max_value=0.5),
)
def test_property_exactly_once_in_order(payload_sizes, latency):
    received = run_exchange(payload_sizes, latency)
    assert len(received) == len(payload_sizes)
    for index, (size, body) in enumerate(zip(payload_sizes, received)):
        assert body == bytes([index % 256]) * size

"""Shared fixtures for network tests."""

from __future__ import annotations

import pytest

from tests.net.networld import World


@pytest.fixture()
def world() -> World:
    return World()

"""Secure-channel tests: mutual auth, privacy, integrity, replay defence.

Mirror image of ``test_adversary_plain.py``: every attack that succeeded
against the raw transport is defeated here, each by a specific mechanism.
"""

from __future__ import annotations

import pytest

from repro.crypto.cert import CertificateAuthority
from repro.errors import AuthenticationError
from repro.net.adversary import Eavesdropper, Replayer, Tamperer
from repro.sim.threads import SimThread
from repro.util.rng import make_rng


def secure_pair(world, a="alice", b="bob", rogue_ca_for_b=None, **link_kw):
    host_a = world.add_secure(a)
    host_b = world.add_secure(b, rogue_ca=rogue_ca_for_b)
    fwd, rev = world.connect(a, b, **link_kw)
    return host_a, host_b, fwd, rev


def run_client(world, fn, name="client"):
    t = SimThread(world.kernel, fn, name, on_error="store")
    t.start()
    world.run()
    if t.exception is not None:
        raise t.exception
    return t.result


class TestHandshake:
    def test_connect_establishes_authenticated_channel(self, world):
        host_a, host_b, *_ = secure_pair(world)

        def client():
            channel = host_a.connect("bob")
            assert channel.peer == "bob"
            return channel

        channel = run_client(world, client)
        assert host_b.channel_to("alice") is not None
        assert host_b.stats["channels_accepted"] == 1
        # Both ends derived the same key (proved by the data plane below).
        assert channel.channel_id == host_b.channel_to("alice").channel_id

    def test_connect_reuses_existing_channel(self, world):
        host_a, _, *_ = secure_pair(world)

        def client():
            c1 = host_a.connect("bob")
            c2 = host_a.connect("bob")
            assert c1 is c2

        run_client(world, client)

    def test_rogue_certificate_rejected(self, world):
        rogue = CertificateAuthority(
            "rogue-ca", make_rng(99, "rogue"), world.kernel.clock
        )
        host_a, host_b, *_ = secure_pair(world, rogue_ca_for_b=rogue)

        def client():
            with pytest.raises(AuthenticationError):
                host_a.connect("bob")

        run_client(world, client)

    def test_responder_rejects_rogue_initiator(self, world):
        rogue = CertificateAuthority(
            "rogue-ca", make_rng(98, "rogue2"), world.kernel.clock
        )
        # alice holds a rogue cert; bob is legitimate
        host_a = world.add_secure("alice", rogue_ca=rogue)
        host_b = world.add_secure("bob")
        world.connect("alice", "bob")

        def client():
            with pytest.raises(AuthenticationError, match="refused"):
                host_a.connect("bob")

        run_client(world, client)
        assert host_b.stats["handshake_rejected"] == 1

    def test_expired_certificate_rejected(self, world):
        host_a, host_b, *_ = secure_pair(world)
        world.kernel.clock.advance(2 * 10**6)  # past cert lifetime

        def client():
            with pytest.raises(AuthenticationError):
                host_a.connect("bob")

        run_client(world, client)


class TestDataPlane:
    def test_secure_send_and_call(self, world):
        host_a, host_b, *_ = secure_pair(world)
        host_b.bind_app("quote", lambda peer, body: b"price:42:" + body)

        def client():
            channel = host_a.connect("bob")
            return channel.call("quote", b"widget")

        assert run_client(world, client) == b"price:42:widget"

    def test_handler_sees_authenticated_peer(self, world):
        host_a, host_b, *_ = secure_pair(world)
        peers: list[str] = []
        host_b.bind_app("ping", lambda peer, body: (peers.append(peer), b"ok")[1])

        def client():
            host_a.connect("bob").call("ping", b"")

        run_client(world, client)
        assert peers == ["alice"]

    def test_one_way_send(self, world):
        host_a, host_b, *_ = secure_pair(world)
        got: list[bytes] = []
        host_b.bind_app("note", lambda peer, body: got.append(body))

        def client():
            host_a.connect("bob").send("note", b"fyi")

        run_client(world, client)
        assert got == [b"fyi"]

    def test_eavesdropper_sees_no_plaintext(self, world):
        host_a, host_b, fwd, rev = secure_pair(world)
        spy_fwd, spy_rev = Eavesdropper(), Eavesdropper()
        fwd.add_tap(spy_fwd)
        rev.add_tap(spy_rev)
        host_b.bind_app("order", lambda peer, body: b"accepted")

        def client():
            channel = host_a.connect("bob")
            return channel.call("order", b"credit-card=4242424242424242")

        assert run_client(world, client) == b"accepted"
        assert spy_fwd.captured and spy_rev.captured  # they did see traffic
        assert not spy_fwd.saw_substring(b"4242424242424242")
        assert not spy_rev.saw_substring(b"accepted")

    def test_tampered_data_rejected_not_delivered(self, world):
        host_a, host_b, fwd, _ = secure_pair(world)
        got: list[bytes] = []
        host_b.bind_app("data", lambda peer, body: got.append(body))

        def client():
            channel = host_a.connect("bob")
            # Attack only the data flight, not the handshake.
            fwd.add_tap(Tamperer(make_rng(5, "t"), rate=1.0))
            channel.send("data", b"account=100")

        run_client(world, client)
        assert got == []
        assert host_b.stats["rejected_tampered"] == 1

    def test_replayed_data_rejected(self, world):
        host_a, host_b, fwd, _ = secure_pair(world)
        got: list[bytes] = []
        host_b.bind_app("pay", lambda peer, body: got.append(body))

        def client():
            channel = host_a.connect("bob")
            fwd.add_tap(Replayer(copies=2))
            channel.send("pay", b"transfer $100")

        run_client(world, client)
        # Exactly one payment processed; the replays were rejected.
        assert got == [b"transfer $100"]
        assert host_b.stats["rejected_replayed"] == 2

    def test_sequence_continues_across_messages(self, world):
        host_a, host_b, *_ = secure_pair(world)
        got: list[bytes] = []
        host_b.bind_app("seq", lambda peer, body: got.append(body))

        def client():
            channel = host_a.connect("bob")
            for i in range(5):
                channel.send("seq", str(i).encode())

        run_client(world, client)
        assert got == [b"0", b"1", b"2", b"3", b"4"]

    def test_unknown_channel_counted(self, world):
        host_a, host_b, *_ = secure_pair(world)
        from repro.util.serialization import encode

        world.network.send(
            __import__("repro.net.message", fromlist=["Message"]).Message(
                src="alice",
                dst="bob",
                kind="sec.data",
                payload=encode({"channel": "chan:alice-999", "sealed": b"x" * 64}),
            )
        )
        world.run()
        assert host_b.stats["unknown_channel"] == 1

    def test_bidirectional_traffic(self, world):
        host_a, host_b, *_ = secure_pair(world)
        host_a.bind_app("cb", lambda peer, body: b"from-alice")
        host_b.bind_app("fwd", lambda peer, body: b"from-bob")

        def client():
            channel_ab = host_a.connect("bob")
            reply1 = channel_ab.call("fwd", b"")
            # Bob reuses the same channel to call back.
            channel_ba = host_b.channel_to("alice")
            reply2 = channel_ba.call("cb", b"")
            return reply1, reply2

        assert run_client(world, client) == (b"from-bob", b"from-alice")

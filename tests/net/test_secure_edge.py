"""Edge cases of the secure channel layer."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net.adversary import Dropper
from repro.sim.threads import SimThread
from repro.util.rng import make_rng


def secure_pair(world, **link_kw):
    host_a = world.add_secure("alice")
    host_b = world.add_secure("bob")
    fwd, rev = world.connect("alice", "bob", **link_kw)
    return host_a, host_b, fwd, rev


def test_secure_call_timeout(world):
    host_a, host_b, fwd, _ = secure_pair(world)
    host_b.bind_app("slow", lambda peer, body: None)  # never replies

    outcomes = []

    def client():
        channel = host_a.connect("bob")
        try:
            channel.call("slow", b"?", timeout=5.0)
        except NetworkError as exc:
            outcomes.append(str(exc))

    SimThread(world.kernel, client, "client").start()
    world.run(detect_deadlock=False)
    assert outcomes and "timed out" in outcomes[0]


def test_handshake_timeout_when_peer_silent(world):
    host_a = world.add_secure("alice")
    world.network.add_node("bob")  # a node with no secure host at all
    world.connect("alice", "bob")

    outcomes = []

    def client():
        try:
            host_a.connect("bob", timeout=5.0)
        except NetworkError as exc:
            outcomes.append(str(exc))

    SimThread(world.kernel, client, "client").start()
    world.run(detect_deadlock=False)
    assert outcomes and "timed out" in outcomes[0]


def test_dropped_data_frame_is_lost_but_channel_survives(world):
    host_a, host_b, fwd, _ = secure_pair(world)
    got = []
    host_b.bind_app("note", lambda peer, body: got.append(body))

    dropper = Dropper(make_rng(7, "d"), rate=1.0)

    def client():
        channel = host_a.connect("bob")
        fwd.add_tap(dropper)
        channel.send("note", b"first: dropped")
        fwd.remove_tap(dropper)
        channel.send("note", b"second: arrives")

    SimThread(world.kernel, client, "client").start()
    world.run(detect_deadlock=False)
    # Sequence numbers are strictly increasing but gaps are tolerated:
    # loss must not wedge the channel.
    assert got == [b"second: arrives"]
    assert dropper.dropped_count == 1


def test_duplicate_app_binding_rejected(world):
    host_a, *_ = secure_pair(world)
    host_a.bind_app("x", lambda p, b: None)
    with pytest.raises(NetworkError, match="already bound"):
        host_a.bind_app("x", lambda p, b: None)


def test_host_certificate_name_must_match():
    import pytest

    from repro.crypto.cert import CertificateAuthority
    from repro.crypto.keys import KeyPair
    from repro.errors import CredentialError
    from repro.net.network import Network
    from repro.net.secure_channel import SecureHost
    from repro.net.transport import Endpoint
    from repro.sim.kernel import Kernel
    from repro.util.rng import make_rng

    kernel = Kernel()
    network = Network(kernel)
    network.add_node("alice")
    ep = Endpoint(network, "alice")
    ca = CertificateAuthority("ca", make_rng(1, "ca"), kernel.clock)
    keys = KeyPair.generate(make_rng(2, "k"), bits=512)
    wrong_cert = ca.issue("mallory", keys.public)
    with pytest.raises(CredentialError, match="certificate names"):
        SecureHost(
            endpoint=ep, name="alice", keys=keys, certificate=wrong_cert,
            trust_anchor=ca, clock=kernel.clock, rng=make_rng(3, "r"),
        )

"""Tests for the endpoint transport layer."""

from __future__ import annotations

import pytest

from repro.errors import ChannelClosedError, NetworkError
from repro.net.message import Message
from repro.sim.threads import SimThread


def link_pair(world, a="alice", b="bob", **kw):
    ep_a = world.add_plain(a)
    ep_b = world.add_plain(b)
    world.connect(a, b, **kw)
    return ep_a, ep_b


def test_one_way_send(world):
    ep_a, ep_b = link_pair(world)
    got: list[bytes] = []
    ep_b.bind("ping", lambda m: got.append(m.payload))
    ep_a.send("bob", "ping", b"hello")
    world.run()
    assert got == [b"hello"]


def test_blocking_call_roundtrip(world):
    ep_a, ep_b = link_pair(world, latency=0.25)
    ep_b.bind("echo", lambda m: b"echo:" + m.payload)
    results: list[tuple[bytes, float]] = []

    def client():
        reply = ep_a.call("bob", "echo", b"data")
        results.append((reply, world.kernel.now()))

    SimThread(world.kernel, client, "client").start()
    world.run()
    reply, t = results[0]
    assert reply == b"echo:data"
    assert t >= 0.5  # two link traversals


def test_concurrent_calls_correlate_correctly(world):
    ep_a, ep_b = link_pair(world)
    ep_b.bind("echo", lambda m: m.payload)
    results: dict[str, bytes] = {}

    def client(tag: bytes):
        def run():
            results[tag.decode()] = ep_a.call("bob", "echo", tag)

        return run

    for tag in (b"one", b"two", b"three"):
        SimThread(world.kernel, client(tag), tag.decode()).start()
    world.run()
    assert results == {"one": b"one", "two": b"two", "three": b"three"}


def test_call_timeout(world):
    ep_a, ep_b = link_pair(world)
    # bob binds nothing: the request is silently discarded
    failures: list[str] = []

    def client():
        try:
            ep_a.call("bob", "void", b"", timeout=2.0)
        except NetworkError as exc:
            failures.append(str(exc))

    SimThread(world.kernel, client, "client").start()
    world.run()
    assert failures and "timed out" in failures[0]
    assert world.kernel.now() == pytest.approx(2.0)


def test_deferred_reply(world):
    ep_a, ep_b = link_pair(world)
    requests: list[Message] = []
    ep_b.bind("slow", lambda m: (requests.append(m), None)[1])
    results: list[bytes] = []

    def client():
        results.append(ep_a.call("bob", "slow", b"q"))

    SimThread(world.kernel, client, "client").start()

    def answer_later():
        assert requests
        ep_b.reply(requests[0], b"deferred answer")

    world.kernel.schedule(5.0, answer_later)
    world.run()
    assert results == [b"deferred answer"]


def test_duplicate_binding_rejected(world):
    ep_a, _ = link_pair(world)
    ep_a.bind("k", lambda m: None)
    with pytest.raises(NetworkError):
        ep_a.bind("k", lambda m: None)


def test_unbind_then_rebind(world):
    ep_a, _ = link_pair(world)
    ep_a.bind("k", lambda m: None)
    ep_a.unbind("k")
    ep_a.bind("k", lambda m: None)  # no raise


def test_closed_endpoint_refuses_send_and_receive(world):
    ep_a, ep_b = link_pair(world)
    got = []
    ep_b.bind("ping", lambda m: got.append(m))
    ep_a.send("bob", "ping", b"1")
    ep_b.close()
    world.run()
    assert got == []  # closed before delivery
    with pytest.raises(ChannelClosedError):
        ep_b.send("alice", "ping", b"")


def test_late_reply_after_timeout_is_dropped(world):
    ep_a, ep_b = link_pair(world, latency=5.0)  # slow link
    ep_b.bind("echo", lambda m: m.payload)
    outcome: list[str] = []

    def client():
        try:
            ep_a.call("bob", "echo", b"x", timeout=1.0)
            outcome.append("replied")
        except NetworkError:
            outcome.append("timeout")

    SimThread(world.kernel, client, "client").start()
    world.run()
    # The reply arrives at t=10 but the call timed out at t=1.
    assert outcome == ["timeout"]

"""Tests for links, topology, routing and delivery."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError, UnreachableError
from repro.net.link import Link
from repro.net.message import HEADER_OVERHEAD, Message
from repro.net.network import Network
from repro.sim.kernel import Kernel
from repro.util.rng import make_rng


def msg(src, dst, payload=b"x", kind="test"):
    return Message(src=src, dst=dst, kind=kind, payload=payload)


class TestLink:
    def test_timing_latency_plus_serialization(self):
        kernel = Kernel()
        link = Link(kernel, "a", "b", latency=0.5, bandwidth=100.0)
        arrivals: list[float] = []
        m = msg("a", "b", payload=b"z" * (200 - HEADER_OVERHEAD))
        link.transmit(m, lambda _m: arrivals.append(kernel.now()))
        kernel.run()
        # 200 bytes at 100 B/s = 2.0s serialization + 0.5s latency
        assert arrivals == [pytest.approx(2.5)]

    def test_fifo_serialization_queues_messages(self):
        kernel = Kernel()
        link = Link(kernel, "a", "b", latency=0.0, bandwidth=float(HEADER_OVERHEAD))
        arrivals: list[float] = []
        link.transmit(msg("a", "b", payload=b""), lambda _m: arrivals.append(kernel.now()))
        link.transmit(msg("a", "b", payload=b""), lambda _m: arrivals.append(kernel.now()))
        kernel.run()
        assert arrivals == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_invalid_parameters(self):
        kernel = Kernel()
        with pytest.raises(NetworkError):
            Link(kernel, "a", "b", latency=-1)
        with pytest.raises(NetworkError):
            Link(kernel, "a", "b", bandwidth=0)
        with pytest.raises(NetworkError):
            Link(kernel, "a", "b", loss_rate=1.5)
        with pytest.raises(NetworkError):
            Link(kernel, "a", "b", loss_rate=0.5)  # lossy without rng

    def test_loss(self):
        kernel = Kernel()
        link = Link(
            kernel, "a", "b", loss_rate=0.5, rng=make_rng(1, "loss")
        )
        delivered: list[Message] = []
        for _ in range(200):
            link.transmit(msg("a", "b"), delivered.append)
        kernel.run()
        assert 60 < len(delivered) < 140
        assert link.stats["lost"] == 200 - len(delivered)

    def test_down_link_blackholes(self):
        kernel = Kernel()
        link = Link(kernel, "a", "b")
        link.up = False
        delivered: list[Message] = []
        link.transmit(msg("a", "b"), delivered.append)
        kernel.run()
        assert delivered == []
        assert link.stats["blackholed"] == 1

    def test_byte_accounting(self):
        kernel = Kernel()
        link = Link(kernel, "a", "b")
        link.transmit(msg("a", "b", payload=b"12345"), lambda m: None)
        kernel.run()
        assert link.stats["bytes"] == 5 + HEADER_OVERHEAD
        assert link.stats["messages"] == 1


class TestNetworkTopology:
    def test_duplicate_node_rejected(self):
        net = Network(Kernel())
        net.add_node("a")
        with pytest.raises(NetworkError):
            net.add_node("a")

    def test_connect_unknown_node_rejected(self):
        net = Network(Kernel())
        net.add_node("a")
        with pytest.raises(NetworkError):
            net.connect("a", "ghost")

    def test_duplicate_connection_rejected(self):
        net = Network(Kernel())
        net.add_node("a")
        net.add_node("b")
        net.connect("a", "b")
        with pytest.raises(NetworkError):
            net.connect("a", "b")

    def test_attach_unknown_node_rejected(self):
        net = Network(Kernel())
        with pytest.raises(NetworkError):
            net.attach("ghost", lambda m: None)


class TestRouting:
    def make_line(self, n=4):
        kernel = Kernel()
        net = Network(kernel)
        names = [f"n{i}" for i in range(n)]
        for name in names:
            net.add_node(name)
        for i in range(n - 1):
            net.connect(names[i], names[i + 1], latency=0.1)
        return kernel, net, names

    def test_path_on_a_line(self):
        _, net, names = self.make_line()
        assert net.path("n0", "n3") == names
        assert net.path("n3", "n0") == list(reversed(names))
        assert net.path("n1", "n1") == ["n1"]

    def test_shortest_latency_path_preferred(self):
        kernel = Kernel()
        net = Network(kernel)
        for name in ("a", "b", "c"):
            net.add_node(name)
        net.connect("a", "c", latency=10.0)  # direct but slow
        net.connect("a", "b", latency=0.1)
        net.connect("b", "c", latency=0.1)  # two fast hops win
        assert net.path("a", "c") == ["a", "b", "c"]

    def test_reroute_after_link_failure(self):
        kernel = Kernel()
        net = Network(kernel)
        for name in ("a", "b", "c"):
            net.add_node(name)
        net.connect("a", "b", latency=0.1)
        net.connect("b", "c", latency=0.1)
        net.connect("a", "c", latency=10.0)
        assert net.path("a", "c") == ["a", "b", "c"]
        net.set_link_state("a", "b", False)
        assert net.path("a", "c") == ["a", "c"]

    def test_unreachable(self):
        kernel = Kernel()
        net = Network(kernel)
        net.add_node("island")
        net.add_node("mainland")
        with pytest.raises(UnreachableError):
            net.next_hop("island", "mainland")


class TestDelivery:
    def test_end_to_end_multi_hop(self):
        kernel = Kernel()
        net = Network(kernel)
        for name in ("a", "b", "c"):
            net.add_node(name)
        net.connect("a", "b", latency=0.1)
        net.connect("b", "c", latency=0.2)
        got: list[tuple[float, bytes]] = []
        net.attach("c", lambda m: got.append((kernel.now(), m.payload)))
        net.send(msg("a", "c", payload=b"hello"))
        kernel.run()
        assert len(got) == 1
        t, payload = got[0]
        assert payload == b"hello"
        assert t > 0.3  # both latencies plus serialization

    def test_delivery_to_self(self):
        kernel = Kernel()
        net = Network(kernel)
        net.add_node("a")
        got = []
        net.attach("a", got.append)
        net.send(msg("a", "a"))
        kernel.run()
        assert len(got) == 1

    def test_unknown_source_rejected(self):
        net = Network(Kernel())
        with pytest.raises(NetworkError):
            net.send(msg("ghost", "a"))

    def test_unroutable_counted_not_raised(self):
        kernel = Kernel()
        net = Network(kernel)
        net.add_node("a")
        net.add_node("b")
        net.send(msg("a", "b"))
        kernel.run()
        assert net.stats["unroutable"] == 1

    def test_no_receiver_counted(self):
        kernel = Kernel()
        net = Network(kernel)
        net.add_node("a")
        net.add_node("b")
        net.connect("a", "b")
        net.send(msg("a", "b"))
        kernel.run()
        assert net.stats["undeliverable"] == 1

    def test_total_bytes_counts_each_hop(self):
        kernel = Kernel()
        net = Network(kernel)
        for name in ("a", "b", "c"):
            net.add_node(name)
        net.connect("a", "b")
        net.connect("b", "c")
        net.attach("c", lambda m: None)
        m = msg("a", "c", payload=b"xyz")
        net.send(m)
        kernel.run()
        assert net.total_bytes_on_wire() == 2 * m.size

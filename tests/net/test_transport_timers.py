"""Timer hygiene and reply accounting on the endpoint transport.

A timed ``call`` schedules a timeout event on the kernel.  These tests
pin the invariant that *every* exit path — success, timeout, a send
failure, or the calling thread being killed mid-call — cancels that
timer, so abandoned calls never leave stale kernel events that would
drag the simulation's virtual clock forward (or keep a "finished" run
from quiescing).
"""

from __future__ import annotations

import pytest

from repro.errors import ChannelClosedError, NetworkError
from repro.net.adversary import Replayer
from repro.sim.threads import SimThread


def link_pair(world, a="alice", b="bob", **kw):
    ep_a = world.add_plain(a)
    ep_b = world.add_plain(b)
    world.connect(a, b, **kw)
    return ep_a, ep_b


def test_successful_call_leaves_no_stale_timer(world):
    ep_a, ep_b = link_pair(world, latency=0.01)
    ep_b.bind("echo", lambda m: m.payload)
    done: list[bytes] = []

    def client():
        done.append(ep_a.call("bob", "echo", b"x", timeout=60.0))

    SimThread(world.kernel, client, "client").start()
    final = world.run()
    assert done == [b"x"]
    # Without timer cancellation the 60s timeout event would still be
    # queued and the run would coast to t=60 before quiescing.
    assert final < 1.0
    assert world.kernel.pending_events == 0


def test_many_calls_accumulate_no_timers(world):
    ep_a, ep_b = link_pair(world, latency=0.01)
    ep_b.bind("echo", lambda m: m.payload)

    def client():
        for _ in range(20):
            ep_a.call("bob", "echo", b"x", timeout=30.0)

    SimThread(world.kernel, client, "client").start()
    final = world.run()
    assert final < 1.0
    assert world.kernel.pending_events == 0


def test_killed_mid_call_cancels_timer(world):
    ep_a, ep_b = link_pair(world)
    # bob binds nothing: the call would only end by timeout at t=100.
    thread = SimThread(
        world.kernel,
        lambda: ep_a.call("bob", "void", b"", timeout=100.0),
        "client",
    )
    thread.start()
    world.kernel.schedule(1.0, thread.kill)
    final = world.run()
    # The kill at t=1 must take the pending timeout event with it.
    assert final == pytest.approx(1.0)
    assert world.kernel.pending_events == 0


def test_send_failure_cancels_timer(world):
    ep_a, ep_b = link_pair(world)
    outcome: list[str] = []

    def client():
        ep_a.close()
        try:
            ep_a.call("bob", "void", b"", timeout=50.0)
        except ChannelClosedError:
            outcome.append("refused")

    SimThread(world.kernel, client, "client").start()
    final = world.run()
    assert outcome == ["refused"]
    assert final == pytest.approx(0.0)
    assert world.kernel.pending_events == 0


def test_timeout_counted_and_late_reply_unmatched(world):
    ep_a, ep_b = link_pair(world, latency=5.0)  # reply lands at t=10
    ep_b.bind("echo", lambda m: m.payload)
    outcome: list[str] = []

    def client():
        try:
            ep_a.call("bob", "echo", b"x", timeout=1.0)
        except NetworkError:
            outcome.append("timeout")

    SimThread(world.kernel, client, "client").start()
    world.run()
    assert outcome == ["timeout"]
    assert ep_a.stats["call_timeouts"] == 1
    # The reply eventually arrived, found no waiter, and was counted.
    assert ep_a.stats["replies_unmatched"] == 1
    assert ep_a.stats["replies_duplicate"] == 0


def test_replayed_reply_counted_as_duplicate(world):
    ep_a, ep_b = link_pair(world)
    ep_b.bind("echo", lambda m: m.payload)
    # Tap the reply direction: every reply is delivered twice.
    replayer = Replayer(copies=1, should_replay=lambda m: m.is_reply)
    world.network.link("bob", "alice").add_tap(replayer)
    done: list[bytes] = []

    def client():
        done.append(ep_a.call("bob", "echo", b"x", timeout=10.0))

    SimThread(world.kernel, client, "client").start()
    world.run()
    assert done == [b"x"]  # the call itself is unaffected
    assert replayer.replayed_count == 1
    # The surplus copy was observed and dropped, not delivered twice:
    # counted as a duplicate (waiter still parked) or unmatched (waiter
    # already resumed), depending on delivery interleaving.
    assert (
        ep_a.stats["replies_duplicate"] + ep_a.stats["replies_unmatched"] == 1
    )

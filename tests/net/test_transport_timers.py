"""Timer hygiene and reply accounting on the endpoint transport.

A timed ``call`` schedules a timeout event on the kernel.  These tests
pin the invariant that *every* exit path — success, timeout, a send
failure, or the calling thread being killed mid-call — cancels that
timer, so abandoned calls never leave stale kernel events that would
drag the simulation's virtual clock forward (or keep a "finished" run
from quiescing).
"""

from __future__ import annotations

import pytest

from repro.credentials.rights import Rights
from repro.errors import ChannelClosedError, NetworkError
from repro.net.adversary import Replayer
from repro.server.testbed import Testbed
from repro.sim.threads import SimThread
from repro.util.retry import RetryPolicy


def link_pair(world, a="alice", b="bob", **kw):
    ep_a = world.add_plain(a)
    ep_b = world.add_plain(b)
    world.connect(a, b, **kw)
    return ep_a, ep_b


def test_successful_call_leaves_no_stale_timer(world):
    ep_a, ep_b = link_pair(world, latency=0.01)
    ep_b.bind("echo", lambda m: m.payload)
    done: list[bytes] = []

    def client():
        done.append(ep_a.call("bob", "echo", b"x", timeout=60.0))

    SimThread(world.kernel, client, "client").start()
    final = world.run()
    assert done == [b"x"]
    # Without timer cancellation the 60s timeout event would still be
    # queued and the run would coast to t=60 before quiescing.
    assert final < 1.0
    assert world.kernel.pending_events == 0


def test_many_calls_accumulate_no_timers(world):
    ep_a, ep_b = link_pair(world, latency=0.01)
    ep_b.bind("echo", lambda m: m.payload)

    def client():
        for _ in range(20):
            ep_a.call("bob", "echo", b"x", timeout=30.0)

    SimThread(world.kernel, client, "client").start()
    final = world.run()
    assert final < 1.0
    assert world.kernel.pending_events == 0


def test_killed_mid_call_cancels_timer(world):
    ep_a, ep_b = link_pair(world)
    # bob binds nothing: the call would only end by timeout at t=100.
    thread = SimThread(
        world.kernel,
        lambda: ep_a.call("bob", "void", b"", timeout=100.0),
        "client",
    )
    thread.start()
    world.kernel.schedule(1.0, thread.kill)
    final = world.run()
    # The kill at t=1 must take the pending timeout event with it.
    assert final == pytest.approx(1.0)
    assert world.kernel.pending_events == 0


def test_send_failure_cancels_timer(world):
    ep_a, ep_b = link_pair(world)
    outcome: list[str] = []

    def client():
        ep_a.close()
        try:
            ep_a.call("bob", "void", b"", timeout=50.0)
        except ChannelClosedError:
            outcome.append("refused")

    SimThread(world.kernel, client, "client").start()
    final = world.run()
    assert outcome == ["refused"]
    assert final == pytest.approx(0.0)
    assert world.kernel.pending_events == 0


def test_timeout_counted_and_late_reply_unmatched(world):
    ep_a, ep_b = link_pair(world, latency=5.0)  # reply lands at t=10
    ep_b.bind("echo", lambda m: m.payload)
    outcome: list[str] = []

    def client():
        try:
            ep_a.call("bob", "echo", b"x", timeout=1.0)
        except NetworkError:
            outcome.append("timeout")

    SimThread(world.kernel, client, "client").start()
    world.run()
    assert outcome == ["timeout"]
    assert ep_a.stats["call_timeouts"] == 1
    # The reply eventually arrived, found no waiter, and was counted.
    assert ep_a.stats["replies_unmatched"] == 1
    assert ep_a.stats["replies_duplicate"] == 0


def test_replayed_reply_counted_as_duplicate(world):
    ep_a, ep_b = link_pair(world)
    ep_b.bind("echo", lambda m: m.payload)
    # Tap the reply direction: every reply is delivered twice.
    replayer = Replayer(copies=1, should_replay=lambda m: m.is_reply)
    world.network.link("bob", "alice").add_tap(replayer)
    done: list[bytes] = []

    def client():
        done.append(ep_a.call("bob", "echo", b"x", timeout=10.0))

    SimThread(world.kernel, client, "client").start()
    world.run()
    assert done == [b"x"]  # the call itself is unaffected
    assert replayer.replayed_count == 1
    # The surplus copy was observed and dropped, not delivered twice:
    # counted as a duplicate (waiter still parked) or unmatched (waiter
    # already resumed), depending on delivery interleaving.
    assert (
        ep_a.stats["replies_duplicate"] + ep_a.stats["replies_unmatched"] == 1
    )


from repro.agents.agent import Agent, register_trusted_agent_class


@register_trusted_agent_class
class _TimerHopper(Agent):
    def __init__(self) -> None:
        self.hops = []

    def run(self):
        if self.hops:
            self.go(self.hops.pop(0), "run")
        self.complete()


# -- crash with calls in flight ---------------------------------------------
#
# A hard server crash closes the endpoint *and* kills the host's aux
# threads (heartbeat rounds, checkpoint pushes).  Any secure-channel
# call that was in flight toward the dead host must surface as a typed
# timeout to its caller, and every abandoned call must cancel its reply
# timer so the simulation still quiesces cleanly.


def foreground_pending(bed):
    """Uncancelled non-daemon events: the stale-timer count.

    A self-healing bed's survivors keep daemon heartbeat/sweep tickers
    queued forever by design; those never keep a run alive and are not
    leaked call timers.
    """
    return sum(
        1 for e in bed.kernel._queue if not e.cancelled and not e.daemon
    )


def selfheal_bed(n=2, seed=77, latency=0.005):
    return Testbed(
        n,
        seed=seed,
        latency=latency,
        self_healing=True,
        server_kwargs={
            "transfer_timeout": 5.0,
            "transfer_retry": RetryPolicy(
                attempts=3, base_delay=1.0, jitter=0.0
            ),
        },
    )


def test_crash_surfaces_typed_timeout_to_inflight_caller():
    bed = selfheal_bed()
    home, dest = bed.home, bed.servers[1]
    outcome: list[object] = []

    def caller():
        # Handshake while the peer is still alive; the call itself is
        # issued at t=1.0 and the crash lands while the request is on
        # the wire (latency 5ms, crash at t=1.002).
        channel = home.secure.connect(dest.name)
        bed.kernel.current_thread().sleep(1.0 - bed.kernel.now())
        try:
            channel.call("srv.status", b"{}", timeout=5.0)
        except NetworkError as exc:
            outcome.append(exc)

    SimThread(bed.kernel, caller, "caller").start()
    bed.faults().crash(dest, at=1.002)  # mid-call, no restart
    # until= lands between rejoin probes (every 10s): a probe's own
    # connect timer mid-flight is live machinery, not a leak.
    bed.run(until=59.0, detect_deadlock=False)
    assert len(outcome) == 1
    assert isinstance(outcome[0], NetworkError)  # typed, not a hang
    assert "timed out" in str(outcome[0])
    # The request hit a closed process and was dropped on the floor --
    # no reply was ever minted, so nothing arrives late or unmatched.
    assert dest.endpoint.stats["dropped_closed"] >= 1
    assert home.endpoint.stats["replies_unmatched"] == 0
    # The secure channel's reply timer was consumed (it *fired* -- that
    # is the timeout), and nothing else leaked: the run quiesces.
    assert foreground_pending(bed) == 0


def test_crash_midtransfer_is_typed_transfer_failure():
    bed = selfheal_bed(seed=78)
    home, dest = bed.home, bed.servers[1]
    agent = _TimerHopper()
    agent.hops = [dest.name]
    bed.launch(agent, Rights.all())
    bed.faults().crash(dest, at=0.001)  # dies under the handshake
    bed.run(until=120.0, detect_deadlock=False)
    # Exhausted retries produced the typed terminal outcome -- counted
    # once, agent parked as terminated, journal drained.
    assert home.stats["transfer_attempts"] == 3
    assert home.stats["transfers_failed"] == 1
    assert home.stats["transfers_out"] == 0
    assert len(home._journal) == 0
    record = home.domain_db.records()[0]
    assert record.status == "terminated"
    assert home.endpoint.stats["call_timeouts"] >= 3
    assert home.endpoint.stats["replies_unmatched"] == 0
    assert foreground_pending(bed) == 0


def test_crash_kills_aux_threads_and_heartbeat_timers():
    bed = selfheal_bed(seed=79)
    home, dest = bed.home, bed.servers[1]
    # Let the heartbeat plane settle into its rhythm, then crash a host
    # while its own heartbeat round is in flight.
    bed.faults().crash(dest, at=4.1)
    # Off the rejoin-probe cadence, as above.
    bed.run(until=59.0, detect_deadlock=False)
    assert all(not t.is_alive for t in dest._aux_threads) or not dest._aux_threads
    assert dest.membership is not None
    # The dead host's tickers were cancelled -- silence, not activity.
    sent_at_crash = dest.membership.stats["heartbeats_sent"]
    assert sent_at_crash <= 3 * 2  # two peers... only pre-crash rounds
    # The survivor noticed: suspicion then confirmation, by silence.
    assert home.membership.state_of(dest.name) == "confirmed-dead"
    assert foreground_pending(bed) == 0

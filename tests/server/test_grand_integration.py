"""The everything-at-once scenario.

One run exercising, simultaneously: remote name service, itinerary-driven
touring with a dead stop, group-based policy, metered+quota'd proxies
with billing to the home site, forwarding attenuation, mailbox
communication and the audit trail.  If subsystems interfere, this is
where it shows.
"""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.agents.itinerary import Itinerary
from repro.agents.patterns import ItineraryAgent
from repro.apps.marketplace import QuoteService
from repro.core.accounting import Tariff
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.principal import Group, GroupDirectory
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.server.testbed import Testbed

ITEM = "sextant"
BUYERS = URN.parse("urn:group:guild.org/buyers")


@register_trusted_agent_class
class GrandShopper(ItineraryAgent):
    def __init__(self) -> None:
        super().__init__()
        self.quotes = []

    def visit(self, stop):
        authority = stop.server.split(":")[2].split("/")[0]
        shop = self.host.get_resource(f"urn:resource:{authority}/shop")
        self.quotes.append((stop.server, shop.quote(ITEM)))

    def finish(self):
        best_server, best_price = min(self.quotes, key=lambda q: q[1])
        self.best = [best_server, best_price]
        self.co_locate_and_buy()

    def co_locate_and_buy(self):
        best_server = self.best[0]
        if self.host.server_name() != best_server:
            self.go(best_server, "co_locate_and_buy")
        authority = best_server.split(":")[2].split("/")[0]
        shop = self.host.get_resource(f"urn:resource:{authority}/shop")
        paid = shop.buy(ITEM)
        self.host.report_home({
            "paid": paid,
            "quotes": self.quotes,
            "skipped": self.skipped,
            "bill_preview": shop.usage_report().total,
        })
        self.complete()


def build_world():
    bed = Testbed(4, remote_name_service=True, authority="mkt{i}.org",
                  server_kwargs={"transfer_timeout": 10.0})
    groups = GroupDirectory()
    groups.add_group(Group(BUYERS, {bed.owner}))
    prices = {1: 80.0, 2: 60.0, 3: 95.0}
    for index, server in enumerate(bed.servers[1:], start=1):
        authority = server.name.split(":")[2].split("/")[0]
        policy = SecurityPolicy(
            rules=[
                PolicyRule("any", "*",
                           Rights.of("QuoteService.quote"), metered=True,
                           confine=False),
                PolicyRule("group", str(BUYERS),
                           Rights.of("QuoteService.buy",
                                     quotas={"QuoteService.buy": 1}),
                           metered=True, confine=False),
            ],
            groups=groups,
        )
        shop = QuoteService(
            URN.parse(f"urn:resource:{authority}/shop"),
            URN.parse(f"urn:principal:{authority}/merchant"),
            policy,
            catalog={ITEM: (prices[index], 2)},
            tariff=Tariff.of({"quote": 0.05, "buy": 1.0}),
        )
        server.install_resource(shop)
    return bed, prices


def test_grand_tour():
    bed, prices = build_world()
    # Stop 2 (cheapest) plus a dead server in the middle of the tour.
    dead = bed.servers[3]
    dead.endpoint.close()
    agent = GrandShopper()
    agent.itinerary = Itinerary.tour([s.name for s in bed.servers[1:]])
    image = bed.launch(agent, Rights.all())
    bed.run(detect_deadlock=False)

    [report] = [r["payload"] for r in bed.home.reports
                if "paid" in r.get("payload", {})]
    # Bought at the cheapest *reachable* shop.
    assert report["paid"] == 60.0
    assert len(report["quotes"]) == 2  # two reachable markets
    assert [s for s, _ in report["skipped"]] == [dead.name]
    # Metering on the final residency's proxy: just the one buy.
    assert report["bill_preview"] == pytest.approx(1.0)
    # Billing flowed home from both visited servers.
    bills = [r["payload"] for r in bed.home.reports
             if r["payload"].get("type") == "bill"]
    assert sum(b["charges"] for b in bills) == pytest.approx(
        0.05 * len(report["quotes"]) + 1.0
    )
    # The remote name service tracked the agent to its final stop.
    assert bed.name_service.lookup(image.name).location == bed.servers[2].name
    # Nothing hostile happened: no security kills anywhere.
    for server in bed.servers:
        assert server.stats["agents_killed_security"] == 0


def test_grand_tour_is_deterministic():
    def run():
        bed, _ = build_world()
        agent = GrandShopper()
        agent.itinerary = Itinerary.tour([s.name for s in bed.servers[1:]])
        bed.launch(agent, Rights.all())
        bed.run(detect_deadlock=False)
        [report] = [r["payload"] for r in bed.home.reports
                    if "paid" in r.get("payload", {})]
        return (report["paid"], tuple(map(tuple, report["quotes"])),
                bed.clock.now())

    assert run() == run()

"""Remote status queries, owner control commands, and transfer under attack."""

from __future__ import annotations

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.credentials.rights import Rights
from repro.net.adversary import Eavesdropper, Tamperer
from repro.server.testbed import Testbed
from repro.sim.threads import SimThread
from repro.util.rng import make_rng
from repro.util.serialization import decode, encode


@register_trusted_agent_class
class Sleeper(Agent):
    """Occupies a server for a long time (a runaway agent)."""

    def __init__(self) -> None:
        self.naps = 1000

    def run(self):
        for _ in range(self.naps):
            self.host.sleep(10.0)
        self.complete("woke up")


@register_trusted_agent_class
class Mover(Agent):
    def __init__(self) -> None:
        self.destination = ""
        self.payload = "sensitive itinerary data: credit-card=4242424242424242"

    def run(self):
        if self.destination:
            dest, self.destination = self.destination, ""
            self.go(dest, "run")
        self.complete()


def secure_query(bed, from_server, to_server, app_kind, body) -> dict:
    """Run a blocking secure call from one server to another."""
    result: list[dict] = []

    def client():
        channel = from_server.secure.connect(to_server.name)
        result.append(decode(channel.call(app_kind, encode(body))))

    SimThread(bed.kernel, client, "query", on_error="store").start()
    # Bounded run: long-lived agents (Sleeper) must not be run to completion.
    bed.run(until=bed.clock.now() + 50.0, detect_deadlock=False)
    assert result, "query produced no reply"
    return result[0]


class TestStatusQueries:
    def test_remote_status_of_resident(self):
        bed = Testbed(2)
        agent = Sleeper()
        image = bed.launch(agent, Rights.all(), at=bed.servers[1])
        bed.run(until=5.0)
        reply = secure_query(
            bed, bed.home, bed.servers[1], "agent.status",
            {"agent": str(image.name)},
        )
        assert reply["status"] == "running"
        assert reply["server"] == bed.servers[1].name
        assert reply["owner"] == str(bed.owner)

    def test_status_of_unknown_agent(self):
        bed = Testbed(2)
        reply = secure_query(
            bed, bed.home, bed.servers[1], "agent.status",
            {"agent": "urn:agent:umn.edu/ghost"},
        )
        assert "error" in reply


class TestControlCommands:
    def test_home_site_can_terminate(self):
        bed = Testbed(2)
        image = bed.launch(Sleeper(), Rights.all())
        # Move the agent's record onto home itself: launch at home; control
        # must come from home_site == home.name, i.e. a local loop. Use a
        # second server as host instead, launched with home as home_site.
        bed.run(until=1.0)
        # Agent is at home; terminate from home itself is local - test the
        # remote case: host at server 1 with home_site = home.
        agent2 = Sleeper()
        image2 = bed.launch(agent2, Rights.all(), at=bed.servers[1])
        bed.run(until=2.0)
        # image2's home_site is servers[1] (launch target). Terminate from
        # its own home site:
        reply = secure_query(
            bed, bed.servers[1], bed.servers[1], "agent.control",
            {"agent": str(image2.name), "command": "terminate"},
        )
        assert reply == {"status": "terminated"}
        bed.run(detect_deadlock=False)
        assert (
            bed.servers[1].resident_status(image2.name)["status"] == "terminated"
        )
        assert bed.servers[1].stats["agents_terminated_by_owner"] == 1

    def test_non_home_site_cannot_terminate(self):
        bed = Testbed(3)
        image = bed.launch(Sleeper(), Rights.all())  # home_site = home
        bed.run(until=1.0)
        reply = secure_query(
            bed, bed.servers[2], bed.home, "agent.control",
            {"agent": str(image.name), "command": "terminate"},
        )
        assert "error" in reply
        assert bed.home.stats["control_refused"] == 1
        assert bed.home.resident_status(image.name)["status"] == "running"

    def test_unknown_command(self):
        bed = Testbed(2)
        image = bed.launch(Sleeper(), Rights.all(), at=bed.servers[1])
        bed.run(until=1.0)
        reply = secure_query(
            bed, bed.servers[1], bed.servers[1], "agent.control",
            {"agent": str(image.name), "command": "dance"},
        )
        assert "unknown command" in reply["error"]


class TestTransferUnderAttack:
    def test_agent_state_not_visible_on_wire(self):
        bed = Testbed(2)
        spy = Eavesdropper()
        link, _ = (
            bed.network.link(bed.home.name, bed.servers[1].name),
            None,
        )
        link.add_tap(spy)
        agent = Mover()
        agent.destination = bed.servers[1].name
        bed.launch(agent, Rights.all())
        bed.run()
        assert spy.captured  # the transfer crossed the tapped link
        assert not spy.saw_substring(b"4242424242424242")
        assert bed.servers[1].stats["transfers_in"] == 1

    def test_tampered_transfer_detected_and_agent_not_started(self):
        bed = Testbed(2, server_kwargs={"transfer_timeout": 30.0})
        agent = Mover()
        agent.destination = bed.servers[1].name
        image = bed.launch(agent, Rights.all())
        bed.run(until=0.001)  # let the launch start
        # Attack every subsequent frame (handshake already done? attack all)
        link = bed.network.link(bed.home.name, bed.servers[1].name)
        link.add_tap(Tamperer(make_rng(9, "t"), rate=1.0))
        bed.run(detect_deadlock=False)
        # Receiver rejected the corrupted frame; sender timed out.
        assert bed.servers[1].stats["transfers_in"] == 0
        assert bed.home.stats["transfers_failed"] == 1
        assert bed.home.resident_status(image.name)["status"] == "terminated"

"""Child agents: creation by other agents, monitoring, creator identity."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.agents.transfer import AgentImage
from repro.apps.buffer import Buffer
from repro.core.policy import SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import SecurityException
from repro.naming.urn import URN
from repro.server.testbed import Testbed


@register_trusted_agent_class
class ChildWorker(Agent):
    def __init__(self) -> None:
        self.payload = None

    def run(self):
        buf = self.host.get_resource(self.target)
        buf.put(self.payload)
        self.complete()


@register_trusted_agent_class
class ParentAgent(Agent):
    """Carries pre-issued child credentials; spawns and monitors a child."""

    def __init__(self) -> None:
        self.child_image = None
        self.observations = []

    def run(self):
        child_domain = self.host.launch_child(self.child_image)
        self.observations.append(
            self.host.agent_status(self.child_image.name)["status"]
        )
        self.host.sleep(1.0)  # let the child run
        self.observations.append(
            self.host.agent_status(self.child_image.name)["status"]
        )
        self.host.report_home({"observations": self.observations,
                               "child_domain": child_domain})
        self.complete()


def make_world():
    bed = Testbed(2)
    target = URN.parse("urn:resource:site1.net/buf")
    buf = Buffer(target, URN.parse("urn:principal:site1.net/o"),
                 SecurityPolicy.allow_all(confine=False), capacity=4)
    bed.servers[1].install_resource(buf)
    return bed, target, buf


def child_image(bed, target, *, lifetime=1e6, local="child-1"):
    # Owner mints the child's credentials at home; creator is the parent.
    from repro.credentials.credentials import Credentials
    from repro.credentials.delegation import DelegatedCredentials

    creds = Credentials.issue(
        agent=URN.parse(f"urn:agent:umn.edu/owner/{local}"),
        owner=bed.owner,
        creator=URN.parse("urn:agent:umn.edu/owner/parent-1"),
        owner_keys=bed.owner_keys,
        owner_certificate=bed.owner_certificate,
        rights=Rights.of("Buffer.*"),
        now=bed.clock.now(),
        lifetime=lifetime,
    )
    child = ChildWorker()
    child.target = str(target)
    child.payload = "child was here"
    return AgentImage(
        name=creds.agent,
        credentials=DelegatedCredentials.wrap(creds),
        class_name="ChildWorker",
        source="",
        state=child.capture_state(),
        entry_method="run",
        home_site=bed.servers[1].name,
    )


def test_parent_spawns_and_monitors_child():
    bed, target, buf = make_world()
    parent = ParentAgent()
    parent.child_image = child_image(bed, target)
    bed.launch(parent, Rights.all(), at=bed.servers[1], agent_local="parent-1")
    bed.run()
    report = bed.servers[1].reports[-1]["payload"]
    assert report["observations"] == ["running", "completed"]
    assert buf.get() == "child was here"
    # Creator identity is recorded in the child's domain record.
    record = bed.servers[1].domain_db.by_agent(
        URN.parse("urn:agent:umn.edu/owner/child-1")
    )
    assert str(record.creator) == "urn:agent:umn.edu/owner/parent-1"


def test_child_with_expired_credentials_rejected():
    bed, target, buf = make_world()
    parent = ParentAgent()
    parent.child_image = child_image(bed, target, lifetime=0.5, local="child-2")
    bed.clock.advance(2.0)  # child credentials now stale
    image = bed.launch(parent, Rights.all(), at=bed.servers[1],
                       agent_local="parent-2")
    bed.run()
    # launch_child raised inside the parent; the security exception
    # terminated the parent, and the child never ran.
    assert bed.servers[1].resident_status(image.name)["status"] == "terminated"
    assert buf.size() == 0


def test_launch_child_requires_an_image():
    @register_trusted_agent_class
    class Confused(Agent):
        def run(self):
            try:
                self.host.launch_child({"not": "an image"})
            except Exception as exc:  # noqa: BLE001
                self.host.report_home({"error": str(exc)})
            self.complete()

    bed = Testbed(2)
    bed.launch(Confused(), Rights.all(), at=bed.servers[1])
    bed.run()
    assert "expects an AgentImage" in bed.servers[1].reports[-1]["payload"]["error"]


def test_child_rights_are_what_the_owner_granted():
    """A parent cannot grant its child more than the owner signed for."""
    bed, target, buf = make_world()
    # The child credentials grant only Buffer.get; the child tries put.
    from repro.credentials.credentials import Credentials
    from repro.credentials.delegation import DelegatedCredentials

    creds = Credentials.issue(
        agent=URN.parse("urn:agent:umn.edu/owner/weak-child"),
        owner=bed.owner,
        creator=URN.parse("urn:agent:umn.edu/owner/parent-1"),
        owner_keys=bed.owner_keys,
        owner_certificate=bed.owner_certificate,
        rights=Rights.of("Buffer.get"),
        now=bed.clock.now(),
        lifetime=1e6,
    )
    worker = ChildWorker()
    worker.target = str(target)
    worker.payload = "should not land"
    weak_image = AgentImage(
        name=creds.agent,
        credentials=DelegatedCredentials.wrap(creds),
        class_name="ChildWorker",
        source="",
        state=worker.capture_state(),
        entry_method="run",
        home_site=bed.servers[1].name,
    )
    parent = ParentAgent()
    parent.child_image = weak_image
    bed.launch(parent, Rights.all(), at=bed.servers[1], agent_local="parent-3")
    bed.run()
    assert buf.size() == 0
    child_status = bed.servers[1].resident_status(weak_image.name)
    assert child_status["status"] == "terminated"

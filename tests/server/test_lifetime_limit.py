"""Tests for the resident-lifetime (resource-consumption) defence."""

from __future__ import annotations

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.core.policy import SecurityPolicy
from repro.credentials.rights import Rights
from repro.server.testbed import Testbed


@register_trusted_agent_class
class Squatter(Agent):
    """Sleeps far longer than any reasonable residency."""

    def run(self):
        self.host.sleep(10_000.0)
        self.complete("finally")


@register_trusted_agent_class
class QuickGuest(Agent):
    def run(self):
        self.host.sleep(1.0)
        self.complete("done")


def test_squatter_is_evicted():
    bed = Testbed(1, server_kwargs={"resident_lifetime_limit": 60.0})
    image = bed.launch(Squatter(), Rights.all())
    bed.run(detect_deadlock=False)
    assert bed.clock.now() < 10_000.0  # eviction happened, no full sleep
    assert bed.home.resident_status(image.name)["status"] == "terminated"
    assert bed.home.stats["agents_killed_lifetime"] == 1
    denial = bed.home.audit.records(operation="agent.lifetime_limit")
    assert denial and not denial[0].allowed


def test_well_behaved_agents_unaffected():
    bed = Testbed(1, server_kwargs={"resident_lifetime_limit": 60.0})
    image = bed.launch(QuickGuest(), Rights.all())
    bed.run()
    assert bed.home.resident_status(image.name)["status"] == "completed"
    assert bed.home.stats["agents_killed_lifetime"] == 0


def test_departed_agent_not_double_counted():
    @register_trusted_agent_class
    class QuickHopper(Agent):
        def __init__(self) -> None:
            self.dest = ""

        def run(self):
            if self.dest:
                dest, self.dest = self.dest, ""
                self.go(dest, "run")
            self.host.sleep(1.0)
            self.complete()

    bed = Testbed(2, server_kwargs={"resident_lifetime_limit": 60.0})
    agent = QuickHopper()
    agent.dest = bed.servers[1].name
    image = bed.launch(agent, Rights.all())
    bed.run(detect_deadlock=False)
    # The agent departed home well before the limit; the stale timer on
    # the home server must not fire against its old domain.
    assert bed.home.stats["agents_killed_lifetime"] == 0
    assert bed.home.resident_status(image.name)["status"] == "departed"
    assert bed.servers[1].resident_status(image.name)["status"] == "completed"


def test_eviction_cleans_up_mailbox():
    @register_trusted_agent_class
    class SquatterWithMailbox(Agent):
        def run(self):
            self.host.create_mailbox(SecurityPolicy.allow_all())
            self.host.receive()  # blocks forever: nobody writes

    from repro.agents.mailbox import mailbox_name_of

    bed = Testbed(1, server_kwargs={"resident_lifetime_limit": 30.0})
    image = bed.launch(SquatterWithMailbox(), Rights.all())
    bed.run(detect_deadlock=False)
    assert bed.home.stats["agents_killed_lifetime"] == 1
    assert mailbox_name_of(image.name) not in bed.home.registry

"""Departure journal × appraisal chain: recovery must not re-seal.

The appraisal link is sealed *before* the departure is journaled, so
every retry, crash-recovery re-offer and dedup-absorbed retransmission
ships the identical sealed image — exactly one link per hop, never a
double-appended one, and never a tip that trips the receiver's replay
record.  The one legitimate rewrite is recovery's return-home diversion,
which replaces (not appends) the sender's own tip via ``reseal_tip``.
"""

from __future__ import annotations

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.agents.integrity import APPRAISAL_ATTRIBUTE
from repro.credentials.rights import Rights
from repro.net.adversary import Adversary
from repro.server.testbed import Testbed
from repro.util.retry import RetryPolicy


class AckDropper(Adversary):
    """Deterministically delete the first ``count`` frames of ``kind``."""

    def __init__(self, kind: str, count: int = 1) -> None:
        self.kind = kind
        self.remaining = count
        self.dropped = 0

    def intercept(self, message, now):
        if message.kind == self.kind and self.remaining > 0:
            self.remaining -= 1
            self.dropped += 1
            return []
        return [message]


@register_trusted_agent_class
class JournalHopper(Agent):
    def __init__(self) -> None:
        self.hops: list[str] = []

    def run(self):
        if self.hops:
            self.go(self.hops.pop(0), "run")
        self.complete()


def hopper_to(dest: str) -> JournalHopper:
    agent = JournalHopper()
    agent.hops = [dest]
    return agent


def retry_kwargs(**overrides):
    kw = {
        "transfer_timeout": 4.0,
        "transfer_retry": RetryPolicy(attempts=4, base_delay=1.0, jitter=0.0),
    }
    kw.update(overrides)
    return kw


def admitted_spy(server):
    """Capture every image the server actually starts hosting."""
    admitted = []
    original = server._start_resident
    server._start_resident = lambda img: (admitted.append(img),
                                          original(img))[1]
    return admitted


def test_receiver_crash_mid_admit_no_double_link():
    """The receiver dies before the handshake lands and restarts between
    retries.  Every re-offer replays the journaled image verbatim: the
    chain the survivor finally admits has exactly one link for the hop —
    sealed once, despite several attempts."""
    bed = Testbed(2, server_kwargs=retry_kwargs())
    home, dest = bed.home, bed.servers[1]
    bed.faults().crash(dest, at=0.001, restart_at=3.0)
    admitted = admitted_spy(dest)
    image = bed.launch(hopper_to(dest.name), Rights.all())
    bed.run(detect_deadlock=False)

    assert home.stats["transfer_retries"] >= 1  # the crash was felt
    assert dest.stats["agents_hosted"] == 1
    assert home.integrity.stats["links_sealed"] == 1  # once, not per attempt
    assert home.integrity.stats["links_resealed"] == 0
    assert len(admitted) == 1
    chain = admitted[0].attributes[APPRAISAL_ATTRIBUTE]
    assert len(chain) == 1 == len(admitted[0].trace)
    assert (chain[0].hop, chain[0].origin, chain[0].destination) == (
        0, home.name, dest.name
    )
    assert dest.stats["transfers_refused_integrity"] == 0
    assert dest.integrity.stats["appraisals_verified"] == 1
    assert len(home._journal) == 0  # departure resolved


def test_sender_crash_recovery_reoffers_sealed_image_verbatim():
    """Lost ack + sender crash: recovery re-offers under the same
    transfer id and the receiver answers from dedup.  No second seal, no
    replay alarm — the journaled bytes ARE the sealed bytes."""
    bed = Testbed(2, server_kwargs=retry_kwargs(
        transfer_retry=RetryPolicy(attempts=4, base_delay=2.0, jitter=0.0),
    ))
    home, dest = bed.home, bed.servers[1]
    tap = AckDropper("sec.data", count=1)
    bed.network.link(dest.name, home.name).add_tap(tap)
    image = bed.launch(hopper_to(dest.name), Rights.all())
    bed.faults().crash(home, at=1.0, restart_at=10.0)
    bed.run(detect_deadlock=False)

    assert tap.dropped == 1
    assert home.stats["recoveries_delivered"] == 1
    assert dest.stats["agents_hosted"] == 1
    assert dest.stats["transfers_duplicate_suppressed"] == 1
    assert home.integrity.stats["links_sealed"] == 1
    assert home.integrity.stats["links_resealed"] == 0
    # The dedup-cached refusal/accept path never re-ran verification, so
    # the replay record saw one admission — no false "replayed" alarm.
    assert dest.stats["transfers_refused_integrity"] == 0
    assert dest.integrity.stats["appraisals_verified"] == 1
    assert len(home._journal) == 0


def test_recovery_return_home_reseals_tip_not_appends():
    """Destination stays dead across a sender crash: recovery diverts
    the journaled agent home.  That is a *different* hop than sealed, so
    the tip is replaced in place — same hop index, new destination —
    and the chain still carries one link per hop."""
    bed = Testbed(2, server_kwargs=retry_kwargs(
        transfer_timeout=3.0,
        transfer_retry=RetryPolicy(attempts=2, base_delay=1.0, jitter=0.0),
    ))
    home, dest = bed.home, bed.servers[1]
    dest.endpoint.close()  # dead for the whole test
    admitted = admitted_spy(home)
    image = bed.launch(hopper_to(dest.name), Rights.all())
    bed.faults().crash(home, at=1.0, restart_at=8.0)
    bed.run(detect_deadlock=False)

    assert home.stats["recoveries_returned_home"] == 1
    assert home.integrity.stats["links_sealed"] == 1
    assert home.integrity.stats["links_resealed"] == 1
    # The relaunched copy carries a single link for hop 0, resealed for
    # the home site (never two links for one hop).
    relaunched = [
        img for img in admitted
        if img.attributes.get(APPRAISAL_ATTRIBUTE)
    ]
    assert len(relaunched) == 1
    chain = relaunched[0].attributes[APPRAISAL_ATTRIBUTE]
    assert len(chain) == 1
    assert (chain[0].hop, chain[0].origin, chain[0].destination) == (
        0, home.name, home.name
    )
    sts = [
        r.status
        for s in bed.servers
        for r in s.domain_db.records_of(image.name)
    ]
    assert sts.count("completed") == 1 and sts.count("running") == 0

"""Integration tests: agents living on servers (Fig. 1 end-to-end)."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.agents.itinerary import Itinerary
from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.server.testbed import Testbed

OWNER = URN.parse("urn:principal:store.com/admin")


def buffer_resource(server, local="buf", policy=None, **kw):
    authority = server.name.split(":")[2].split("/")[0]
    name = URN.parse(f"urn:resource:{authority}/{local}")
    buf = Buffer(name, OWNER, policy or SecurityPolicy.allow_all(), **kw)
    server.install_resource(buf)
    return name, buf


@register_trusted_agent_class
class DepositAgent(Agent):
    """Visits one server and deposits a value into its buffer."""

    def __init__(self) -> None:
        self.target = ""
        self.value = None

    def run(self):
        proxy = self.host.get_resource(self.target)
        proxy.put(self.value)
        self.complete({"deposited": self.value})


@register_trusted_agent_class
class TouringCollector(Agent):
    """Walks an itinerary, collecting buffer sizes, reporting at home."""

    def __init__(self) -> None:
        self.itinerary = None
        self.resource_local = "buf"
        self.sizes = []

    def run(self):
        proxy = self.host.get_resource(self._resource_name())
        self.sizes.append((self.host.server_name(), proxy.size()))
        self._next()

    def report(self):
        self.host.report_home({"sizes": self.sizes})
        self.complete()

    def _resource_name(self):
        authority = self.host.server_name().split(":")[2].split("/")[0]
        return f"urn:resource:{authority}/{self.resource_local}"

    def _next(self):
        stop = self.itinerary.advance()
        if stop is None:
            self.complete({"sizes": self.sizes})
        self.go(stop.server, stop.method)


class TestLocalHosting:
    def test_agent_uses_resource_and_completes(self):
        bed = Testbed(1)
        name, buf = buffer_resource(bed.home, policy=SecurityPolicy.allow_all(),
                                    capacity=4)
        agent = DepositAgent()
        agent.target = str(name)
        agent.value = "hello"
        image = bed.launch(agent, Rights.all())
        bed.run()
        assert buf.size() == 1
        assert buf.get() == "hello"
        status = bed.home.resident_status(image.name)
        assert status["status"] == "completed"
        assert status["bindings"] == 1
        assert bed.home.stats["agents_completed"] == 1

    def test_agent_without_rights_is_stopped(self):
        bed = Testbed(1)
        name, buf = buffer_resource(bed.home)
        agent = DepositAgent()
        agent.target = str(name)
        agent.value = "evil"
        image = bed.launch(agent, Rights.of("Buffer.get"))  # no put
        bed.run()
        assert buf.size() == 0
        status = bed.home.resident_status(image.name)
        assert status["status"] == "terminated"
        assert bed.home.stats["agents_killed_security"] == 1

    def test_buggy_agent_does_not_kill_server(self):
        @register_trusted_agent_class
        class Buggy(Agent):
            def run(self):
                raise ValueError("oops")

        bed = Testbed(1)
        bed.launch(Buggy(), Rights.all())
        bed.run()
        assert bed.home.stats["agents_failed"] == 1
        # Server still works: host another agent.
        name, buf = buffer_resource(bed.home)
        ok = DepositAgent()
        ok.target = str(name)
        ok.value = 1
        bed.launch(ok, Rights.all())
        bed.run()
        assert buf.size() == 1


class TestMigration:
    def make_tour(self, n=3):
        bed = Testbed(n, authority="store{i}.com")
        buffers = []
        for i, server in enumerate(bed.servers):
            _, buf = buffer_resource(server, capacity=10)
            buf.put(f"item-{i}")  # give each buffer a distinct size signature
            for _ in range(i):
                buf.put("pad")
            buffers.append(buf)
        return bed, buffers

    def test_itinerary_tour_and_report(self):
        bed, buffers = self.make_tour(3)
        stops = [s.name for s in bed.servers[1:]] + [bed.home.name]
        agent = TouringCollector()
        agent.itinerary = Itinerary.tour(
            [s.name for s in bed.servers], home=bed.home.name
        )
        agent.resource_local = "buf"
        image = bed.launch(agent, Rights.all())
        bed.run()
        # The report arrived home with one size per visited server.
        assert len(bed.home.reports) == 1
        report = bed.home.reports[0]
        assert report["agent"] == str(image.name)
        sizes = dict(report["payload"]["sizes"])
        assert set(sizes) == {s.name for s in bed.servers}
        assert sizes[bed.servers[1].name] == 2  # item + 1 pad
        # Every intermediate server shows a departed record.
        for server in bed.servers[:-1]:
            assert server.resident_status(image.name)["status"] == "departed"

    def test_name_service_tracks_migration(self):
        bed, _ = self.make_tour(2)
        agent = TouringCollector()
        agent.itinerary = Itinerary.tour([s.name for s in bed.servers])
        image = bed.launch(agent, Rights.all())
        assert bed.locate(image.name) == bed.home.name
        bed.run()
        assert bed.locate(image.name) == bed.servers[-1].name

    def test_transfer_stats(self):
        bed, _ = self.make_tour(2)
        agent = TouringCollector()
        agent.itinerary = Itinerary.tour([s.name for s in bed.servers])
        bed.launch(agent, Rights.all())
        bed.run()
        assert bed.home.stats["transfers_out"] == 1
        assert bed.servers[1].stats["transfers_in"] == 1

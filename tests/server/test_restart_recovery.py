"""Restart-time journal recovery interleaved with an active partition.

PR 2 pinned the calm-path recovery story: a crashed sender re-offers
journaled in-flight departures under the *same* transfer id, and the
receiver's dedup table answers idempotently.  These tests interleave
that recovery with a named partition that is still cutting the links
when the server comes back: the re-offer must keep retrying, land
exactly once after the heal, and never duplicate or strand the agent.
The membership plane rides along — peers that confirmed the crashed
server dead must believe its post-restart heartbeats only because the
incarnation number moved.
"""

from __future__ import annotations

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.agents.itinerary import Itinerary
from repro.agents.patterns import ItineraryAgent
from repro.credentials.rights import Rights
from repro.net.adversary import Adversary
from repro.obs.slo import healed_conservation_residual
from repro.server.recovery import CHECKPOINT_APP_KIND
from repro.server.testbed import Testbed
from repro.sim.threads import SimThread
from repro.util.retry import RetryPolicy
from repro.util.serialization import decode, encode


class AckDropper(Adversary):
    """Deterministically delete the first ``count`` messages of ``kind``."""

    def __init__(self, kind: str, count: int = 1) -> None:
        self.kind = kind
        self.remaining = count
        self.dropped = 0

    def intercept(self, message, now):
        if message.kind == self.kind and self.remaining > 0:
            self.remaining -= 1
            self.dropped += 1
            return []
        return [message]


@register_trusted_agent_class
class OneWayHopper(Agent):
    def __init__(self) -> None:
        self.hops = []

    def run(self):
        if self.hops:
            self.go(self.hops.pop(0), "run")
        self.complete({"ended_at": self.host.server_name()})


def selfheal_pair(seed=91):
    return Testbed(
        2,
        seed=seed,
        self_healing=True,
        server_kwargs={
            "transfer_timeout": 5.0,
            "transfer_retry": RetryPolicy(
                attempts=4, base_delay=1.0, jitter=0.0
            ),
        },
    )


def test_reoffer_lands_exactly_once_after_partition_heals():
    bed = selfheal_pair()
    home, dest = bed.home, bed.servers[1]
    # Drop the transfer *ack* (the first secure data frame dest->home,
    # well before the first heartbeat at t=2): the agent is admitted at
    # dest, but home's journal still holds the departure as in-flight.
    tap = AckDropper("sec.data", count=1)
    bed.network.link(dest.name, home.name).add_tap(tap)
    agent = OneWayHopper()
    agent.hops = [dest.name]
    image = bed.launch(agent, Rights.all())
    # Crash before the retransmission can learn the truth; while home is
    # down a partition window opens, and it is *still open* when the
    # server restarts and starts re-offering.
    bed.faults().crash(home, at=1.0, restart_at=10.0)
    bed.faults().named_partition(
        "win", [home.name], [dest.name], at=8.0, heal_at=18.0
    )
    # Up to just before the heal: recovery has been retrying into the
    # partition and the departure record is still unresolved.
    bed.run(until=17.9, detect_deadlock=False)
    assert tap.dropped == 1
    assert home.stats["restarts"] == 1
    assert len(home._journal) == 1
    assert home.stats["recoveries_delivered"] == 0
    # After the heal the next retry gets through.  The pre-crash offer
    # had already landed, so the receiver's dedup table answers the
    # re-offer idempotently: one admission, ever.
    bed.run(until=90.0, detect_deadlock=False)
    assert dest.stats["agents_hosted"] == 1
    assert dest.stats["transfers_duplicate_suppressed"] == 1
    assert home.stats["recoveries_attempted"] == 1
    assert home.stats["recoveries_delivered"] == 1
    assert home.stats["recoveries_returned_home"] == 0
    assert len(home._journal) == 0
    assert home.resident_status(image.name)["status"] == "departed"
    # The agent itself noticed nothing: it completed at dest, once.
    assert dest.stats["agents_completed"] == 1


def test_restarted_server_rejoins_with_a_new_incarnation():
    bed = selfheal_pair(seed=92)
    home, dest = bed.home, bed.servers[1]
    bed.faults().crash(home, at=1.0, restart_at=12.0)
    bed.run(until=40.0, detect_deadlock=False)
    # home fell silent before its first heartbeat: dest walked it
    # through suspected into confirmed-dead ...
    assert any(
        state == "confirmed-dead" and peer == home.name
        for _, state, peer in dest.membership.log
    )
    # ... and only believed the comeback because restart() bumped the
    # incarnation past the one it had confirmed dead.
    assert dest.membership.stats["peer_revivals"] == 1
    assert dest.membership.state_of(home.name) == "alive"
    assert home.membership.incarnation == 1  # bumped from 0 at restart
    assert dest.membership.view_of(home.name).incarnation == 1
    # No journaled departures existed, so recovery had nothing to do.
    assert home.stats["recoveries_attempted"] == 0


# -- flapping host: rebirth-triggered recovery --------------------------------
#
# A crash+restart cycle *faster* than the confirm-death threshold kills
# the host's residents without ever firing the confirmed-dead callback:
# flap safety holds the view at "suspected" until the new incarnation's
# heartbeat clears it.  The rebirth callback sweeps the checkpoint store
# instead, probing the reborn host per agent so a host that still
# accounts for the agent vetoes the re-home.


@register_trusted_agent_class
class DwellingTourist(ItineraryAgent):
    dwell = 60.0

    def __init__(self) -> None:
        super().__init__()
        self.visited: list[str] = []

    def visit(self, stop):
        self.visited.append(self.host.server_name())
        self.host.sleep(self.dwell)

    def finish(self):
        self.complete({"visited": self.visited})


def test_flapped_host_residents_are_rehomed_after_probe():
    bed = Testbed(
        3,
        seed=93,
        self_healing=True,
        server_kwargs={
            "transfer_timeout": 5.0,
            "transfer_retry": RetryPolicy(
                attempts=3, base_delay=1.0, jitter=0.0
            ),
        },
    )
    home, s1, s2 = bed.servers
    agent = DwellingTourist()
    agent.itinerary = Itinerary.tour([s1.name, s2.name])
    bed.launch(agent, Rights.all())
    # The tourist is dwelling at s1 when the flap hits: a 7s outage,
    # well inside the detector's confirm-death threshold.
    bed.faults().crash(s1, at=5.5, restart_at=12.5)
    bed.run(until=300.0, detect_deadlock=False)
    # Flap safety held: nobody ever confirmed s1 dead ...
    assert not any(
        state == "confirmed-dead" for _, state, _ in home.membership.log
    )
    # ... yet the crash really did kill the resident.
    assert s1.stats["agents_killed_crash"] == 1
    # The comeback heartbeat carried the bumped incarnation; home's
    # rebirth sweep probed s1 (which no longer accounts for the agent)
    # and re-homed from the escrow checkpoint.
    assert home.membership.stats["incarnation_advances"] >= 1
    assert s1.recovery.stats["probes_answered"] == 1
    assert home.recovery.stats["rehomes_vetoed_resident"] == 0
    rehomed = (
        home.recovery.stats["rehomes_placed"]
        + home.recovery.stats["rehomes_local"]
    )
    assert rehomed == 1
    assert home.recovery.rehome_log[0]["dead"] == s1.name
    # Exactly one completion, and the books balance after healing.
    assert sum(s.stats["agents_completed"] for s in bed.servers) == 1
    assert healed_conservation_residual(bed.servers)() == 0


def test_journal_recovery_is_vetoed_when_agent_was_rehomed_meanwhile():
    """The two recovery planes must not both resurrect one agent.

    An agent is journaled in-flight at s1 (its destination s2 is dead)
    when s1 hard-crashes for longer than the confirm-death threshold.
    The home site's escrow re-homing relaunches the agent while s1 is
    still down; when s1 finally restarts, its own journal recovery
    must notice — via the naming directory, which a newer admission
    always updates — that the entry is stale, and resolve it without
    re-offering.  Otherwise the agent forks.
    """
    bed = Testbed(
        3,
        seed=95,
        self_healing=True,
        server_kwargs={
            "transfer_timeout": 5.0,
            "transfer_retry": RetryPolicy(
                attempts=4, base_delay=1.0, jitter=0.0
            ),
        },
    )
    home, s1, s2 = bed.servers
    s2.endpoint.close()  # the journaled destination is dead throughout
    agent = DwellingTourist()
    agent.dwell = 2.0
    agent.itinerary = Itinerary.tour([s1.name, s2.name])
    image = bed.launch(agent, Rights.all())
    # The departure s1->s2 is parked in s1's journal, retrying, when s1
    # dies; the 14s outage is past the confirm-death threshold.
    bed.faults().crash(s1, at=4.0, restart_at=18.0)
    bed.run(until=300.0, detect_deadlock=False)
    # Home confirmed s1 dead and re-homed from escrow while s1 was down
    # (s2 being dead too, the agent relaunched at home, the always-legal
    # fallback).
    assert home.recovery.stats["rehomes_local"] == 1
    # The restarted s1 found the stale journal entry and stood down.
    assert s1.stats["recoveries_attempted"] == 1
    assert s1.stats["recoveries_superseded"] == 1
    assert s1.stats["recoveries_delivered"] == 0
    assert s1.stats["recovery_stranded"] == 0
    assert len(s1._journal) == 0
    # One line of history: the agent completed exactly once.
    statuses = [
        r.status
        for server in bed.servers
        for r in server.domain_db.records_of(image.name)
    ]
    assert statuses.count("completed") == 1
    assert statuses.count("running") == 0
    assert healed_conservation_residual(bed.servers)() == 0


def test_checkpoint_probe_reports_residency():
    bed = selfheal_pair(seed=94)
    home, dest = bed.home, bed.servers[1]
    agent = DwellingTourist()
    agent.itinerary = Itinerary.tour([dest.name])
    image = bed.launch(agent, Rights.all())
    answers: dict[str, str] = {}

    def prober():
        bed.kernel.current_thread().sleep(2.0)  # let the agent settle in
        channel = home.secure.connect(dest.name)
        for label, name in (
            ("resident", str(image.name)),
            ("unknown", "urn:agent:ghost"),
        ):
            reply = decode(
                channel.call(
                    CHECKPOINT_APP_KIND,
                    encode({"op": "probe", "agent": name}),
                    timeout=5.0,
                )
            )
            answers[label] = reply["state"]

    SimThread(bed.kernel, prober, "prober").start()
    bed.run(until=10.0, detect_deadlock=False)
    assert answers == {"resident": "resident", "unknown": "unknown"}
    assert dest.recovery.stats["probes_answered"] == 2

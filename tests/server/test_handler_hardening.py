"""Hostile/malformed inputs to every server-side handler.

A 1998 agent server on the open internet is, above all, a parser of
untrusted bytes.  Every handler must answer garbage with a counted,
audited refusal — never an exception escaping into the kernel.
"""

from __future__ import annotations

import pytest

from repro.credentials.rights import Rights
from repro.server.testbed import Testbed
from repro.sim.threads import SimThread
from repro.util.serialization import decode, encode


def secure_send(bed, src, dst, app_kind, payload: bytes, *, call=False):
    """Ship raw bytes over an authenticated channel between two servers."""
    result: list = []

    def client():
        channel = src.secure.connect(dst.name)
        if call:
            result.append(channel.call(app_kind, payload, timeout=30.0))
        else:
            channel.send(app_kind, payload)

    SimThread(bed.kernel, client, "tester", on_error="store").start()
    bed.run(detect_deadlock=False)
    return result


class TestTransferHandler:
    def test_non_image_payload_refused(self):
        bed = Testbed(2)
        [raw] = secure_send(
            bed, bed.home, bed.servers[1], "atp.transfer",
            encode({"not": "an image"}), call=True,
        )
        reply = decode(raw)
        assert reply["status"] == "refused"
        assert "not an agent image" in reply["reason"]
        assert bed.servers[1].stats["transfers_refused"] == 1

    def test_undecodable_payload_refused(self):
        bed = Testbed(2)
        [raw] = secure_send(
            bed, bed.home, bed.servers[1], "atp.transfer",
            b"\xff\xfe garbage", call=True,
        )
        assert decode(raw)["status"] == "refused"

    def test_refusals_are_audited(self):
        bed = Testbed(2)
        secure_send(bed, bed.home, bed.servers[1], "atp.transfer",
                    encode(123), call=True)
        denials = bed.servers[1].audit.records(operation="atp.admit",
                                               allowed=False)
        assert len(denials) == 1
        assert denials[0].domain == bed.home.name  # the authenticated peer


class TestStatusHandler:
    @pytest.mark.parametrize("payload", [
        encode({"agent": "not a urn"}),
        encode({"wrong_key": 1}),
        encode([1, 2, 3]),
        b"binary trash",
    ])
    def test_bad_queries_get_error_replies(self, payload):
        bed = Testbed(2)
        [raw] = secure_send(bed, bed.home, bed.servers[1], "agent.status",
                            payload, call=True)
        # Even an undecodable body gets a structured error reply — the
        # channel layer delivered it intact; only the application payload
        # is junk.
        assert "error" in decode(raw)


class TestControlHandler:
    def test_malformed_control_gets_error(self):
        bed = Testbed(2)
        [raw] = secure_send(bed, bed.home, bed.servers[1], "agent.control",
                            encode({"agent": 42}), call=True)
        assert "error" in decode(raw)


class TestReportHandler:
    def test_malformed_report_counted_not_stored(self):
        bed = Testbed(2)
        secure_send(bed, bed.home, bed.servers[1], "agent.report",
                    b"\x00 not a report")
        assert bed.servers[1].stats["reports_malformed"] == 1
        assert bed.servers[1].reports == []

    def test_wellformed_report_tagged_with_peer(self):
        bed = Testbed(2)
        secure_send(bed, bed.home, bed.servers[1], "agent.report",
                    encode({"agent": "x", "payload": {"v": 1}}))
        [report] = bed.servers[1].reports
        assert report["via"] == bed.home.name
        assert report["payload"] == {"v": 1}


class TestServerSurvivesAll:
    def test_server_still_hosts_after_garbage_storm(self):
        from repro.agents.agent import Agent, register_trusted_agent_class

        @register_trusted_agent_class
        class AfterStorm(Agent):
            def run(self):
                self.complete("fine")

        bed = Testbed(2)
        for kind in ("atp.transfer", "agent.status", "agent.control",
                     "agent.report"):
            secure_send(bed, bed.home, bed.servers[1], kind, b"\x01garbage")
        image = bed.launch(AfterStorm(), Rights.all(), at=bed.servers[1])
        bed.run(detect_deadlock=False)
        assert bed.servers[1].resident_status(image.name)["status"] == "completed"

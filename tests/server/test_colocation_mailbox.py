"""Agent-to-agent communication: mailboxes, co-location, worker threads."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.agents.mailbox import mailbox_name_of
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.server.testbed import Testbed


@register_trusted_agent_class
class Listener(Agent):
    """Creates a mailbox and reads N messages."""

    def __init__(self) -> None:
        self.expect = 1
        self.sender_pattern = "*"
        self.inbox = []

    def run(self):
        self.host.create_mailbox(
            SecurityPolicy(
                rules=[
                    PolicyRule(
                        "agent", self.sender_pattern,
                        Rights.of("AgentMailbox.deliver", "AgentMailbox.pending"),
                    )
                ]
            )
        )
        while len(self.inbox) < self.expect:
            sender, message = self.host.receive()
            self.inbox.append((sender, message))
        self.host.report_home({"inbox": self.inbox})
        self.complete()


@register_trusted_agent_class
class Speaker(Agent):
    """Locates a listener, co-locates, and delivers a message."""

    def __init__(self) -> None:
        self.target_agent = ""
        self.message = ""

    def run(self):
        where = self.host.locate(self.target_agent)
        if where != self.host.server_name():
            self.go(where, "run")
        mailbox = self.host.get_resource(self.host.mailbox_of(self.target_agent))
        delivered = mailbox.deliver(self.message)
        self.complete({"delivered": delivered})


class TestMailbox:
    def test_colocated_delivery_with_authenticated_sender(self):
        bed = Testbed(2)
        listener = Listener()
        listener.expect = 1
        l_image = bed.launch(listener, Rights.all(), at=bed.servers[1],
                             agent_local="listener")
        speaker = Speaker()
        speaker.target_agent = str(l_image.name)
        speaker.message = "psst"
        s_image = bed.launch(speaker, Rights.all(), agent_local="speaker")
        bed.run()
        # Speaker located the listener via the name service and hopped over.
        assert bed.home.stats["transfers_out"] == 1
        report = bed.servers[1].reports[-1]["payload"]
        assert report["inbox"] == [(str(s_image.name), "psst")]

    def test_policy_rejects_unwelcome_sender(self):
        bed = Testbed(1)
        listener = Listener()
        listener.expect = 1
        listener.sender_pattern = "urn:agent:umn.edu/owner/friend*"
        l_image = bed.launch(listener, Rights.all(), agent_local="listener")

        stranger = Speaker()
        stranger.target_agent = str(l_image.name)
        stranger.message = "spam"
        stranger_image = bed.launch(stranger, Rights.all(), agent_local="stranger")

        friend = Speaker()
        friend.target_agent = str(l_image.name)
        friend.message = "hello"
        friend_image = bed.launch(friend, Rights.all(), agent_local="friend-1")
        bed.run()
        report = bed.home.reports[-1]["payload"]
        # Only the friend's message landed; the stranger got AccessDenied
        # at get_proxy time and was terminated by the security exception.
        assert report["inbox"] == [(str(friend_image.name), "hello")]
        assert bed.home.resident_status(stranger_image.name)["status"] == "terminated"

    def test_mailbox_is_ephemeral(self):
        bed = Testbed(1)
        listener = Listener()
        listener.expect = 1
        l_image = bed.launch(listener, Rights.all(), agent_local="listener")
        speaker = Speaker()
        speaker.target_agent = str(l_image.name)
        speaker.message = "bye"
        bed.launch(speaker, Rights.all(), agent_local="speaker")
        bed.run()
        # Listener completed; its mailbox registration is gone.
        assert mailbox_name_of(l_image.name) not in bed.home.registry

    def test_mailbox_name_derivation(self):
        agent = URN.parse("urn:agent:umn.edu/owner/worker-3")
        assert str(mailbox_name_of(agent)) == (
            "urn:resource:umn.edu/owner/worker-3/mailbox"
        )

    def test_double_mailbox_rejected(self):
        @register_trusted_agent_class
        class Greedy(Agent):
            def run(self):
                self.host.create_mailbox(SecurityPolicy.allow_all())
                try:
                    self.host.create_mailbox(SecurityPolicy.allow_all())
                except Exception as exc:  # noqa: BLE001
                    self.host.report_home({"error": str(exc)})
                self.complete()

        bed = Testbed(2)
        bed.launch(Greedy(), Rights.all(), at=bed.servers[1])
        bed.run()
        assert "already has a mailbox" in bed.servers[1].reports[-1]["payload"]["error"]


class TestWorkerThreads:
    def test_spawn_and_join_in_own_group(self):
        @register_trusted_agent_class
        class Parallel(Agent):
            def run(self):
                results = []

                def worker(k):
                    def body():
                        self.host.sleep(k * 0.1)
                        return k * k

                    return body

                handles = [self.host.spawn_thread(worker(k), f"w{k}")
                           for k in (1, 2, 3)]
                for handle in handles:
                    results.append(handle.join())
                self.host.report_home({"results": results})
                self.complete()

        bed = Testbed(2)
        bed.launch(Parallel(), Rights.all(), at=bed.servers[1])
        bed.run()
        assert bed.servers[1].reports[-1]["payload"]["results"] == [1, 4, 9]

    def test_worker_failure_surfaces_at_join(self):
        @register_trusted_agent_class
        class FragileParent(Agent):
            def run(self):
                def boom():
                    raise ValueError("worker died")

                handle = self.host.spawn_thread(boom)
                try:
                    handle.join()
                except ValueError as exc:
                    self.host.report_home({"caught": str(exc)})
                self.complete()

        bed = Testbed(2)
        bed.launch(FragileParent(), Rights.all(), at=bed.servers[1])
        bed.run()
        assert bed.servers[1].reports[-1]["payload"]["caught"] == "worker died"

    def test_worker_runs_in_agent_domain(self):
        """Proxy confinement must hold for agent-spawned threads too."""

        @register_trusted_agent_class
        class Delegating(Agent):
            def __init__(self) -> None:
                self.buffer_name = ""

            def run(self):
                proxy = self.host.get_resource(self.buffer_name)

                def worker():
                    proxy.put("from worker thread")
                    return proxy.size()

                size = self.host.spawn_thread(worker).join()
                self.host.report_home({"size": size})
                self.complete()

        from repro.apps.buffer import Buffer

        bed = Testbed(2)
        name = URN.parse("urn:resource:site1.net/buf")
        buf = Buffer(name, URN.parse("urn:principal:site1.net/o"),
                     SecurityPolicy.allow_all(confine=True), capacity=4)
        bed.servers[1].install_resource(buf)
        agent = Delegating()
        agent.buffer_name = str(name)
        bed.launch(agent, Rights.all(), at=bed.servers[1])
        bed.run()
        # The worker thread's group is a child of the agent's, so the
        # confined proxy accepted the call.
        assert bed.servers[1].reports[-1]["payload"]["size"] == 1
        assert buf.get() == "from worker thread"

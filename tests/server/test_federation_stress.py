"""Federation-scale stress: many agents, hostile links, global invariants.

Eight servers, a few dozen agents with randomized itineraries, adversaries
on several links.  After the dust settles:

* **conservation** — every launched agent reaches exactly one terminal
  state somewhere (no limbo, no duplication of completions);
* **containment** — no resource method an agent wasn't granted ever
  executed (checked against every server's audit trail and buffers);
* **detection** — attacked frames were rejected, never delivered.
"""

from __future__ import annotations

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.net.adversary import Replayer, Tamperer
from repro.server.testbed import Testbed
from repro.util.rng import make_rng

N_SERVERS = 8
N_AGENTS = 30


@register_trusted_agent_class
class StressRoamer(Agent):
    """Visits a random route, appending a token at allowed buffers."""

    def __init__(self) -> None:
        self.route = []
        self.token = ""
        self.appended = 0

    def run(self):
        authority = self.host.server_name().split(":")[2].split("/")[0]
        try:
            buf = self.host.get_resource(f"urn:resource:{authority}/drop")
            buf.put(self.token)
            self.appended += 1
        except Exception:  # noqa: BLE001 - denied at some servers, that's fine
            pass
        if self.route:
            nxt = self.route.pop(0)
            self.go(nxt, "run")
        self.host.report_home({"appended": self.appended})
        self.complete()


def build_federation(seed=2026):
    bed = Testbed(N_SERVERS, seed=seed, topology="full",
                  server_kwargs={"transfer_timeout": 30.0})
    rng = make_rng(seed, "stress")
    buffers = {}
    for index, server in enumerate(bed.servers):
        authority = server.name.split(":")[2].split("/")[0]
        # Even-indexed servers allow put; odd ones are read-only.
        if index % 2 == 0:
            policy = SecurityPolicy(rules=[
                PolicyRule("any", "*", Rights.of("Buffer.put", "Buffer.size")),
            ])
        else:
            policy = SecurityPolicy(rules=[
                PolicyRule("any", "*", Rights.of("Buffer.size")),
            ])
        buf = Buffer(URN.parse(f"urn:resource:{authority}/drop"),
                     URN.parse(f"urn:principal:{authority}/o"), policy)
        server.install_resource(buf)
        buffers[server.name] = (index, buf)
    # Hostile taps on a few interior links (both attack classes).
    names = [s.name for s in bed.servers]
    bed.network.link(names[2], names[3]).add_tap(
        Tamperer(make_rng(seed, "tamper"), rate=0.4)
    )
    bed.network.link(names[4], names[5]).add_tap(Replayer(copies=1))
    return bed, rng, buffers


def test_federation_invariants():
    bed, rng, buffers = build_federation()
    names = [s.name for s in bed.servers]
    launched = []
    for i in range(N_AGENTS):
        agent = StressRoamer()
        route_len = rng.randrange(1, 5)
        agent.route = [names[rng.randrange(N_SERVERS)] for _ in range(route_len)]
        agent.token = f"tok-{i}"
        image = bed.launch(agent, Rights.of("Buffer.put", "Buffer.size"),
                           agent_local=f"roamer-{i}")
        launched.append(image)
    bed.run(detect_deadlock=False)

    # --- conservation: every agent has >= 1 record, exactly one of which
    # is terminal-but-not-departed (completed/terminated), across servers.
    terminal_counts = {str(img.name): 0 for img in launched}
    for server in bed.servers:
        for record in server.domain_db._records.values():
            key = str(record.agent)
            assert record.status in ("completed", "terminated", "departed",
                                     "running")
            assert record.status != "running", (
                f"{key} still running on {server.name}"
            )
            if record.status in ("completed", "terminated"):
                terminal_counts[key] += 1
    for agent_name, count in terminal_counts.items():
        assert count == 1, f"{agent_name} has {count} terminal records"

    # --- containment: odd servers' buffers stayed empty (put never granted).
    for server_name, (index, buf) in buffers.items():
        if index % 2 == 1:
            assert buf.size() == 0, f"write leaked into read-only {server_name}"

    # --- accounting: everything reported was really stored.  (Strict
    # equality can't hold: an agent killed mid-route by the tampered link
    # appended tokens but never lived to report them.)
    reported_appends = sum(
        r["payload"]["appended"]
        for s in bed.servers
        for r in s.reports
        if "appended" in r.get("payload", {})
    )
    stored = sum(buf.size() for _idx, buf in buffers.values())
    assert reported_appends <= stored
    killed = sum(s.stats["transfers_failed"] +
                 s.stats["transfers_refused_remote"] for s in bed.servers)
    if killed == 0:
        assert reported_appends == stored

    # --- detection: attacked links produced rejections, not deliveries.
    # A tampered frame can fail at any layer: AEAD tag (rejected_tampered),
    # outer frame decode (rejected_malformed), or a handshake flight
    # (handshake_*); corrupted *replies* are dropped by correlation-id
    # mismatch and surface as sender-side transfer failures instead.
    rejected = sum(
        s.secure.stats["rejected_tampered"]
        + s.secure.stats["rejected_replayed"]
        + s.secure.stats["rejected_malformed"]
        + s.secure.stats["handshake_malformed"]
        + s.secure.stats["handshake_rejected"]
        + s.stats["transfers_failed"]
        for s in bed.servers
    )
    tampered = sum(
        tap.tampered_count
        for link in [bed.network.link(names[2], names[3])]
        for tap in link._taps
    )
    if tampered:
        assert rejected > 0


def test_federation_is_deterministic():
    def fingerprint() -> tuple:
        bed, rng, buffers = build_federation(seed=911)
        names = [s.name for s in bed.servers]
        for i in range(10):
            agent = StressRoamer()
            agent.route = [names[rng.randrange(N_SERVERS)] for _ in range(3)]
            agent.token = f"tok-{i}"
            bed.launch(agent, Rights.of("Buffer.put", "Buffer.size"),
                       agent_local=f"d-{i}")
        bed.run(detect_deadlock=False)
        return (
            bed.clock.now(),
            tuple(sorted(
                (s.name, s.stats["agents_hosted"], s.stats["transfers_in"])
                for s in bed.servers
            )),
            tuple(sorted(buf.size() for _i, buf in buffers.values())),
        )

    assert fingerprint() == fingerprint()

"""Cross-domain federation: servers under different certificate authorities.

Two administrative domains (east/west), each with its own CA.  Servers
hold TrustStores: the gateway trusts both authorities, an isolationist
server trusts only its own.  Agents signed under the west CA can work on
the gateway but are refused — at admission, with full audit — by the
east-only server.
"""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.credentials.credentials import Credentials
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.rights import Rights
from repro.crypto.cert import CertificateAuthority
from repro.crypto.keys import KeyPair
from repro.crypto.trust import TrustStore
from repro.naming.urn import URN
from repro.net.network import Network
from repro.server.agent_server import AgentServer
from repro.server.admission import AdmissionPolicy
from repro.sim.kernel import Kernel
from repro.util.rng import make_rng


@register_trusted_agent_class
class FederationHopper(Agent):
    def __init__(self) -> None:
        self.dest = ""

    def run(self):
        if self.dest and self.host.server_name() != self.dest:
            dest, self.dest = self.dest, ""
            self.go(dest, "run")
        self.complete()


class TwoDomainWorld:
    def __init__(self, seed: int = 42) -> None:
        self.kernel = Kernel()
        self.network = Network(self.kernel, seed=seed)
        clock = self.kernel.clock
        self.east_ca = CertificateAuthority("east-ca", make_rng(seed, "e"), clock)
        self.west_ca = CertificateAuthority("west-ca", make_rng(seed, "w"), clock)
        both = TrustStore.of(clock, self.east_ca, self.west_ca)
        east_only = TrustStore.of(clock, self.east_ca)

        self.gateway = self._server(
            "urn:server:east.org/gateway", self.east_ca, both, seed
        )
        self.fortress = self._server(
            "urn:server:east.org/fortress", self.east_ca, east_only, seed
        )
        self.network.connect(self.gateway.name, self.fortress.name)

        # A west-domain owner.
        self.owner = URN.parse("urn:principal:west.org/traveller")
        self.owner_keys = KeyPair.generate(make_rng(seed, "owner"), bits=512)
        self.owner_cert = self.west_ca.issue(str(self.owner), self.owner_keys.public)

    def _server(self, name, own_ca, trust, seed) -> AgentServer:
        self.network.add_node(name)
        keys = KeyPair.generate(make_rng(seed, f"k:{name}"), bits=512)
        return AgentServer(
            name=name,
            kernel=self.kernel,
            network=self.network,
            trust_anchor=trust,
            keys=keys,
            certificate=own_ca.issue(name, keys.public),
            rng=make_rng(seed, f"r:{name}"),
            admission=AdmissionPolicy(trust, self.kernel.clock),
        )

    def west_image(self, agent: Agent, dest: str = "") -> object:
        from repro.agents.transfer import capture_image

        agent.dest = dest
        cred = Credentials.issue(
            agent=URN.parse("urn:agent:west.org/traveller/a1"),
            owner=self.owner,
            creator=self.owner,
            owner_keys=self.owner_keys,
            owner_certificate=self.owner_cert,
            rights=Rights.all(),
            now=self.kernel.clock.now(),
        )
        return capture_image(
            agent,
            credentials=DelegatedCredentials.wrap(cred),
            entry_method="run",
            home_site=self.gateway.name,
        )


def test_gateway_accepts_foreign_domain_agent():
    world = TwoDomainWorld()
    image = world.west_image(FederationHopper())
    world.gateway.launch(image)
    world.kernel.run()
    assert world.gateway.resident_status(image.name)["status"] == "completed"


def test_isolationist_server_refuses_foreign_agent():
    world = TwoDomainWorld()
    image = world.west_image(FederationHopper(), dest=world.fortress.name)
    world.gateway.launch(image)
    world.kernel.run(detect_deadlock=False)
    # The fortress refused the transfer at admission.
    assert world.fortress.stats["transfers_refused"] == 1
    assert world.fortress.stats["agents_hosted"] == 0
    assert world.gateway.stats["transfers_refused_remote"] == 1
    refusal = world.fortress.audit.records(operation="atp.admit", allowed=False)
    assert refusal and "untrusted authority" in refusal[0].detail


def test_direct_launch_refused_too():
    from repro.errors import CredentialError

    world = TwoDomainWorld()
    image = world.west_image(FederationHopper())
    with pytest.raises(CredentialError, match="untrusted authority"):
        world.fortress.launch(image)


def test_cross_ca_secure_channel_works_when_both_trusted():
    """Gateway (east cert) ↔ a west server: mutual auth across CAs."""
    world = TwoDomainWorld()
    west_server = world._server(
        "urn:server:west.org/s1",
        world.west_ca,
        TrustStore.of(world.kernel.clock, world.east_ca, world.west_ca),
        42,
    )
    world.network.connect(world.gateway.name, west_server.name)
    from repro.sim.threads import SimThread

    outcomes = []

    def client():
        channel = world.gateway.secure.connect(west_server.name)
        outcomes.append(channel.peer)

    SimThread(world.kernel, client, "x").start()
    world.kernel.run()
    assert outcomes == [west_server.name]

"""Grant leases: renewal, lapse-as-revocation, and the restart sweep.

Under supervision every grant's expiration time is a renewable lease on
the kernel clock.  Holders extend it through the proxy's ``renew_lease``;
missing the deadline *is* revocation (the paper's 5.5 expiration
extension, made bidirectional).  On server restart the supervisor
re-validates every recorded grant from the domain database: unexpired
leases survive the crash, lapsed ones are swept.
"""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import ProxyExpiredError, ProxyRevokedError
from repro.naming.urn import URN
from repro.server.supervisor import SupervisorConfig
from repro.server.testbed import Testbed

LEASED = "urn:resource:site0.net/leased"
OWNER = URN.parse("urn:principal:site0.net/o")

OUTCOMES: dict[str, object] = {}


@pytest.fixture(autouse=True)
def _reset_outcomes():
    OUTCOMES.clear()
    yield


def leased_buffer() -> Buffer:
    policy = SecurityPolicy(
        rules=[PolicyRule("any", "*", Rights.of("Buffer.*"), confine=False)]
    )
    return Buffer(URN.parse(LEASED), OWNER, policy)


def supervised_bed(lease: float = 50.0) -> Testbed:
    bed = Testbed(
        1,
        supervision=SupervisorConfig(
            lease_duration=lease, invoke_deadline=None
        ),
    )
    bed.home.install_resource(leased_buffer())
    return bed


@register_trusted_agent_class
class LeaseHolder(Agent):
    """Renews once in time, then deliberately overstays the lease."""

    def run(self):
        proxy = self.host.get_resource(LEASED)
        OUTCOMES["initial_deadline"] = proxy.proxy_info()["expires_at"]
        self.host.sleep(30.0)
        OUTCOMES["renewed_deadline"] = proxy.renew_lease()  # t=30 -> 80
        self.host.sleep(40.0)
        proxy.size()  # t=70 < 80: the renewal kept the grant alive
        OUTCOMES["call_after_renewal"] = "ok"
        self.host.sleep(20.0)  # t=90 > 80: the lease has lapsed
        try:
            proxy.size()
        except ProxyExpiredError as exc:
            OUTCOMES["expired_call"] = "denied"
            OUTCOMES["expired_context"] = dict(exc.context)
        try:
            proxy.renew_lease()
        except ProxyExpiredError as exc:
            OUTCOMES["lapse_context"] = dict(exc.context)
        # Lapse IS revocation: the proxy is now permanently dead, and a
        # further renewal attempt reports revoked, not expired.
        OUTCOMES["revoked_after_lapse"] = proxy.proxy_info()["revoked"]
        try:
            proxy.renew_lease()
        except ProxyRevokedError:
            OUTCOMES["renew_after_lapse"] = "revoked"
        self.complete()


@register_trusted_agent_class
class SleepyHolder(Agent):
    """Takes a grant then sleeps; the server will crash underneath it."""

    def run(self):
        self.host.get_resource(LEASED)
        self.host.sleep(10_000.0)
        self.complete()


@register_trusted_agent_class
class FreshRequester(Agent):
    """A post-restart arrival running the ordinary Fig. 6 protocol."""

    def run(self):
        proxy = self.host.get_resource(LEASED)
        proxy.put("hello")
        OUTCOMES["fresh"] = "ok"
        OUTCOMES["fresh_deadline"] = proxy.proxy_info()["expires_at"]
        self.complete()


def test_renewal_extends_and_lapse_revokes():
    bed = supervised_bed(lease=50.0)
    bed.launch(LeaseHolder(), Rights.all(), agent_local="holder")
    bed.run()
    assert OUTCOMES["initial_deadline"] == pytest.approx(50.0)
    assert OUTCOMES["renewed_deadline"] == pytest.approx(80.0)
    assert OUTCOMES["call_after_renewal"] == "ok"
    assert OUTCOMES["expired_call"] == "denied"
    expired = OUTCOMES["expired_context"]
    assert expired["method"] == "size"
    assert expired["deadline"] == pytest.approx(80.0)
    assert OUTCOMES["revoked_after_lapse"] is True
    assert OUTCOMES["renew_after_lapse"] == "revoked"
    context = OUTCOMES["lapse_context"]
    assert context["resource"] == "Buffer"
    assert context["deadline"] == pytest.approx(80.0)


def test_restart_sweeps_lapsed_lease_and_fresh_binding_succeeds():
    bed = supervised_bed(lease=50.0)
    holder = bed.launch(SleepyHolder(), Rights.all(), agent_local="sleepy")
    # Crash at t=10 (lease still valid), restart at t=70 (lease lapsed
    # at t=50 while the server was down).
    bed.faults().crash(bed.home, at=10.0, restart_at=70.0)
    bed.run(detect_deadlock=False)

    supervisor = bed.home.supervisor
    assert supervisor.stats["leases_swept"] == 1
    record = bed.home.domain_db.by_agent(holder.name)
    assert record.bindings
    assert record.bindings[0].proxy.proxy_info()["revoked"] is True
    sweeps = bed.home.audit.records(operation="supervisor.lease_sweep")
    assert sweeps and not sweeps[0].allowed

    # The old proxy is dead, but the server is healthy: a fresh Fig. 6
    # request binds and invokes normally, with a fresh lease.
    bed.launch(FreshRequester(), Rights.all(), agent_local="fresh")
    bed.run(detect_deadlock=False)
    assert OUTCOMES["fresh"] == "ok"
    assert OUTCOMES["fresh_deadline"] == pytest.approx(bed.clock.now(), abs=51.0)


def test_restart_revalidates_unexpired_lease():
    bed = supervised_bed(lease=500.0)
    holder = bed.launch(SleepyHolder(), Rights.all(), agent_local="sleepy2")
    bed.faults().crash(bed.home, at=10.0, restart_at=30.0)
    bed.run(detect_deadlock=False)
    supervisor = bed.home.supervisor
    assert supervisor.stats["leases_swept"] == 0
    assert supervisor.stats["leases_revalidated"] >= 1
    record = bed.home.domain_db.by_agent(holder.name)
    assert record.bindings[0].proxy.proxy_info()["revoked"] is False


def test_policy_lifetime_takes_precedence_over_default_lease():
    # An explicit rule lifetime is the lease; the supervisor default
    # only fills in when the policy says nothing.
    bed = Testbed(
        1,
        supervision=SupervisorConfig(lease_duration=500.0, invoke_deadline=None),
    )
    policy = SecurityPolicy(
        rules=[PolicyRule("any", "*", Rights.of("Buffer.*"), confine=False,
                          lifetime=25.0)]
    )
    bed.home.install_resource(Buffer(URN.parse(LEASED), OWNER, policy))
    bed.launch(FreshRequester(), Rights.all(), agent_local="short")
    bed.run()
    assert OUTCOMES["fresh_deadline"] == pytest.approx(25.0, abs=1.0)


def test_unsupervised_grants_have_no_default_lease():
    bed = Testbed(1)
    bed.home.install_resource(leased_buffer())
    bed.launch(FreshRequester(), Rights.all(), agent_local="plain")
    bed.run()
    assert OUTCOMES["fresh"] == "ok"
    assert OUTCOMES["fresh_deadline"] is None

"""Section 5.2 subcontracting: forwarding servers attenuate credentials."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.buffer import Buffer
from repro.core.policy import SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.server.testbed import Testbed


@register_trusted_agent_class
class HopAndUse(Agent):
    """Runs at each hop, trying both put and get on the local buffer."""

    def __init__(self) -> None:
        self.hops = []
        self.outcomes = []

    def run(self):
        authority = self.host.server_name().split(":")[2].split("/")[0]
        try:
            proxy = self.host.get_resource(f"urn:resource:{authority}/buf")
            outcome = {"server": self.host.server_name(), "enabled": sorted(
                proxy.proxy_info()["enabled"]
            )}
        except Exception as exc:  # noqa: BLE001
            outcome = {"server": self.host.server_name(), "error": str(exc)}
        self.outcomes.append(outcome)
        if self.hops:
            nxt = self.hops.pop(0)
            self.go(nxt, "run")
        self.host.report_home({"outcomes": self.outcomes})
        self.complete()


def install_buffer(server):
    authority = server.name.split(":")[2].split("/")[0]
    buf = Buffer(URN.parse(f"urn:resource:{authority}/buf"),
                 URN.parse(f"urn:principal:{authority}/o"),
                 SecurityPolicy.allow_all(confine=False), capacity=4)
    server.install_resource(buf)
    return buf


def test_forwarding_server_attenuates_rights():
    bed = Testbed(3)
    for server in bed.servers:
        install_buffer(server)
    # The middle server subcontracts onward agents down to read-only.
    bed.servers[1].forward_restriction = Rights.of(
        "Buffer.get", "Buffer.size", "Buffer.resource_*"
    )
    agent = HopAndUse()
    agent.hops = [bed.servers[1].name, bed.servers[2].name]
    bed.launch(agent, Rights.of("Buffer.*"))
    bed.run()
    outcomes = bed.home.reports[-1]["payload"]["outcomes"]
    by_server = {o["server"]: o for o in outcomes}
    # Full interface at home and at the restricting server itself...
    assert "put" in by_server[bed.home.name]["enabled"]
    assert "put" in by_server[bed.servers[1].name]["enabled"]
    # ...but after server 1 forwarded it, put is gone downstream.
    assert "put" not in by_server[bed.servers[2].name]["enabled"]
    assert "get" in by_server[bed.servers[2].name]["enabled"]


def test_attenuation_is_permanent_down_the_chain():
    """Even a later permissive hop cannot restore what was removed."""
    bed = Testbed(4)
    for server in bed.servers:
        install_buffer(server)
    bed.servers[1].forward_restriction = Rights.of("Buffer.get", "Buffer.size")
    bed.servers[2].forward_restriction = Rights.all()  # "grants" everything
    agent = HopAndUse()
    agent.hops = [s.name for s in bed.servers[1:]]
    bed.launch(agent, Rights.of("Buffer.*"))
    bed.run()
    outcomes = bed.home.reports[-1]["payload"]["outcomes"]
    final = outcomes[-1]
    assert final["server"] == bed.servers[3].name
    assert "put" not in final["enabled"]


def test_forwarded_credentials_still_verify_at_admission():
    bed = Testbed(3)
    for server in bed.servers:
        install_buffer(server)
    bed.servers[1].forward_restriction = Rights.of("Buffer.get", "Buffer.size")
    agent = HopAndUse()
    agent.hops = [bed.servers[1].name, bed.servers[2].name]
    bed.launch(agent, Rights.of("Buffer.*"))
    bed.run()
    # The extended chain passed admission at server 2 (no refusals).
    assert bed.servers[2].stats["transfers_in"] == 1
    assert bed.servers[2].stats["transfers_refused"] == 0


def test_delegation_visible_in_credential_chain():
    bed = Testbed(2)
    install_buffer(bed.servers[1])
    bed.home.forward_restriction = Rights.of("Buffer.get", "Buffer.size")
    agent = HopAndUse()
    agent.hops = [bed.servers[1].name]
    image = bed.launch(agent, Rights.of("Buffer.*"))
    bed.run()
    record = bed.servers[1].domain_db.by_agent(image.name)
    creds = record.domain.credentials
    assert len(creds.links) == 1
    assert str(creds.links[0].delegator) == bed.home.name

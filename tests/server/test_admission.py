"""Tests for admission control on arriving agent images."""

from __future__ import annotations

import dataclasses

import pytest

from repro.agents.agent import Agent
from repro.agents.transfer import capture_image
from repro.credentials.rights import Rights
from repro.errors import (
    CodeVerificationError,
    CredentialError,
    CredentialExpiredError,
    TransferError,
)
from repro.naming.urn import URN
from repro.server.admission import AdmissionPolicy


@pytest.fixture()
def policy(env):
    return AdmissionPolicy(env.ca, env.clock)


def make_image(env, **kw):
    agent = Agent()
    agent.data = list(range(10))
    defaults = dict(
        credentials=env.credentials(Rights.all()),
        entry_method="capture_state",
        home_site="urn:server:h.net/s0",
    )
    defaults.update(kw)
    return capture_image(agent, **defaults)


def test_valid_trusted_image_accepted(env, policy):
    policy.validate(make_image(env))


def test_valid_untrusted_image_accepted(env, policy):
    image = make_image(env, source="class Visitor(Agent):\n    def run(self):\n        pass\n")
    image = dataclasses.replace(image, class_name="Visitor")
    policy.validate(image)


def test_oversized_image_rejected(env, policy):
    policy.max_image_bytes = 64
    with pytest.raises(TransferError, match="exceeds limit"):
        policy.validate(make_image(env))


def test_credential_name_mismatch_rejected(env, policy):
    image = make_image(env)
    forged = dataclasses.replace(
        image, name=URN.parse("urn:agent:umn.edu/somebody-else")
    )
    with pytest.raises(CredentialError, match="credentials bind"):
        policy.validate(forged)


def test_expired_credentials_rejected(env, policy):
    image = make_image(env, credentials=env.credentials(Rights.all(), lifetime=5.0))
    env.clock.advance(10.0)
    with pytest.raises(CredentialExpiredError):
        policy.validate(image)


def test_tampered_credentials_rejected(env, policy):
    image = make_image(env)
    base = image.credentials.base
    forged_base = dataclasses.replace(base, rights=Rights.all())
    # Re-sign nothing: the signature no longer matches if rights differed.
    forged_base = dataclasses.replace(base, creator=URN.parse("urn:principal:x.com/m"))
    forged = dataclasses.replace(
        image,
        credentials=dataclasses.replace(image.credentials, base=forged_base),
    )
    with pytest.raises(CredentialError):
        policy.validate(forged)


def test_malicious_source_rejected(env, policy):
    image = make_image(env, source="import os\nos.remove('/')\n")
    with pytest.raises(CodeVerificationError):
        policy.validate(image)


def test_untrusted_code_can_be_banned_site_wide(env):
    policy = AdmissionPolicy(env.ca, env.clock, accept_untrusted_code=False)
    image = make_image(env, source="class V(Agent):\n    pass\n")
    with pytest.raises(CodeVerificationError, match="does not accept"):
        policy.validate(image)


def test_bad_entry_method_rejected(env, policy):
    image = dataclasses.replace(make_image(env), entry_method="_sneak")
    with pytest.raises(TransferError, match="invalid entry method"):
        policy.validate(image)
    image = dataclasses.replace(make_image(env), entry_method="not an ident")
    with pytest.raises(TransferError):
        policy.validate(image)


def test_bad_class_name_rejected(env, policy):
    image = dataclasses.replace(make_image(env), class_name="evil; import os")
    with pytest.raises(TransferError, match="invalid class name"):
        policy.validate(image)


def test_non_agent_urn_rejected(env, policy):
    image = make_image(env)
    # Forge both name and credentials subject to a server URN — credentials
    # construction forbids it, so tamper the image only.
    forged = dataclasses.replace(image, name=URN.parse("urn:server:x.com/s"))
    with pytest.raises(CredentialError):
        policy.validate(forged)

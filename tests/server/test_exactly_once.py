"""Exactly-once agent transfer: retries, dedup, crash recovery.

The transfer protocol composes at-least-once sending (bounded retries
with backoff) with an idempotent receiver (transfer-id deduplication) to
get exactly-once *hosting*: under lost requests, lost acks, replayed
frames, lossy links and sender crashes, an agent is admitted at most
once per handoff and is never silently stranded.

The loss-matrix tests read ``REPRO_STRESS_SEED`` (default 1000) so CI
can sweep seeds; the deterministic scenarios pin their own adversaries.
"""

from __future__ import annotations

import os

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.agents.itinerary import Itinerary
from repro.agents.patterns import ItineraryAgent
from repro.credentials.rights import Rights
from repro.errors import ReproError
from repro.net.adversary import Adversary, Replayer
from repro.server.journal import DedupTable
from repro.server.testbed import Testbed
from repro.util.retry import RetryPolicy

STRESS_SEED = int(os.environ.get("REPRO_STRESS_SEED", "1000"))


class KindDropper(Adversary):
    """Deterministically delete the first ``count`` messages of ``kind``."""

    def __init__(self, kind: str, count: int = 1) -> None:
        self.kind = kind
        self.remaining = count
        self.dropped = 0

    def intercept(self, message, now):
        if message.kind == self.kind and self.remaining > 0:
            self.remaining -= 1
            self.dropped += 1
            return []
        return [message]


@register_trusted_agent_class
class XOnceHopper(Agent):
    def __init__(self) -> None:
        self.hops = []

    def run(self):
        if self.hops:
            self.go(self.hops.pop(0), "run")
        self.host.report_home({"made_it": self.host.server_name()})
        self.complete()


@register_trusted_agent_class
class XOnceTourist(ItineraryAgent):
    def __init__(self) -> None:
        super().__init__()
        self.path = []

    def visit(self, stop):
        self.path.append(self.host.server_name())

    def finish(self):
        self.complete({"path": self.path, "skipped": self.skipped})


@register_trusted_agent_class
class XOnceHomesick(XOnceTourist):
    home_on_failure = True


def hopper_to(dest: str) -> XOnceHopper:
    agent = XOnceHopper()
    agent.hops = [dest]
    return agent


def statuses_of(bed: Testbed, agent) -> list[str]:
    """Every residency status for ``agent``, across all servers."""
    out: list[str] = []
    for server in bed.servers:
        out.extend(r.status for r in server.domain_db.records_of(agent))
    return out


def retry_kwargs(**overrides):
    kw = {
        "transfer_timeout": 5.0,
        "transfer_retry": RetryPolicy(attempts=4, base_delay=1.0, jitter=0.0),
    }
    kw.update(overrides)
    return kw


# ---------------------------------------------------------------------------
# Deterministic single-fault scenarios
# ---------------------------------------------------------------------------


def test_lost_transfer_request_is_retried_and_delivered_once():
    bed = Testbed(2, server_kwargs=retry_kwargs())
    home, dest = bed.home, bed.servers[1]
    # Delete the first ciphertext frame home->dest: the transfer request.
    tap = KindDropper("sec.data", count=1)
    bed.network.link(home.name, dest.name).add_tap(tap)
    image = bed.launch(hopper_to(dest.name), Rights.all())
    bed.run(detect_deadlock=False)
    assert tap.dropped == 1
    assert home.stats["transfer_attempts"] == 2
    assert home.stats["transfer_retries"] == 1
    assert home.stats["transfers_out"] == 1
    assert home.stats["transfers_failed"] == 0
    assert dest.stats["agents_hosted"] == 1
    assert dest.stats["transfers_duplicate_suppressed"] == 0
    assert dest.resident_status(image.name)["status"] == "completed"
    assert statuses_of(bed, image.name).count("running") == 0
    assert len(home._journal) == 0  # departure resolved


def test_lost_accept_ack_is_suppressed_as_duplicate():
    bed = Testbed(2, server_kwargs=retry_kwargs())
    home, dest = bed.home, bed.servers[1]
    # Delete the first ciphertext frame dest->home: the "accepted" ack.
    tap = KindDropper("sec.data", count=1)
    bed.network.link(dest.name, home.name).add_tap(tap)
    image = bed.launch(hopper_to(dest.name), Rights.all())
    bed.run(detect_deadlock=False)
    assert tap.dropped == 1
    # The retransmission was answered from the dedup table — the agent
    # was admitted exactly once, and the sender still got its ack.
    assert dest.stats["agents_hosted"] == 1
    assert dest.stats["transfers_in"] == 1
    assert dest.stats["transfers_duplicate_suppressed"] == 1
    assert home.stats["transfers_out"] == 1
    assert home.stats["transfers_failed"] == 0
    sts = statuses_of(bed, image.name)
    assert sts.count("completed") == 1 and sts.count("running") == 0
    assert len(home._journal) == 0


def test_retry_exhaustion_is_terminal_and_accounted_once():
    bed = Testbed(2, server_kwargs=retry_kwargs(
        transfer_retry=RetryPolicy(attempts=3, base_delay=1.0, jitter=0.0),
        transfer_timeout=3.0,
    ))
    home, dest = bed.home, bed.servers[1]
    dest.endpoint.close()  # destination dead: every attempt times out
    image = bed.launch(hopper_to(dest.name), Rights.all())
    bed.run(detect_deadlock=False)
    assert home.stats["transfer_attempts"] == 3
    assert home.stats["transfers_failed"] == 1  # terminal, counted once
    assert home.stats["transfers_out"] == 0
    assert home.resident_status(image.name)["status"] == "terminated"
    assert len(home._journal) == 0


# ---------------------------------------------------------------------------
# Crash recovery
# ---------------------------------------------------------------------------


def test_sender_crash_mid_transfer_recovers_delivered_once():
    bed = Testbed(2, server_kwargs=retry_kwargs(
        transfer_retry=RetryPolicy(attempts=4, base_delay=2.0, jitter=0.0),
    ))
    home, dest = bed.home, bed.servers[1]
    # The ack is lost, so the sender is parked awaiting a retry when it
    # crashes; the agent has already landed (and run) at the destination.
    tap = KindDropper("sec.data", count=1)
    bed.network.link(dest.name, home.name).add_tap(tap)
    image = bed.launch(hopper_to(dest.name), Rights.all())
    bed.faults().crash(home, at=1.0, restart_at=10.0)
    bed.run(detect_deadlock=False)
    # Recovery re-offered under the *same* transfer id; the receiver's
    # dedup table answered idempotently — one admission, ever.
    assert dest.stats["agents_hosted"] == 1
    assert dest.stats["transfers_duplicate_suppressed"] == 1
    assert home.stats["recoveries_delivered"] == 1
    assert len(home._journal) == 0
    sts = statuses_of(bed, image.name)
    assert sts.count("completed") == 1 and sts.count("running") == 0
    assert home.resident_status(image.name)["status"] == "departed"


def test_sender_crash_with_dead_destination_returns_home():
    bed = Testbed(2, server_kwargs=retry_kwargs(
        transfer_timeout=3.0,
        transfer_retry=RetryPolicy(attempts=2, base_delay=1.0, jitter=0.0),
    ))
    home, dest = bed.home, bed.servers[1]
    dest.endpoint.close()  # destination dead for the whole test
    image = bed.launch(hopper_to(dest.name), Rights.all())
    bed.faults().crash(home, at=1.0, restart_at=8.0)
    bed.run(detect_deadlock=False)
    # The destination never came back; the in-flight agent was not
    # stranded — it was relaunched at its home site (which is here).
    assert dest.stats["agents_hosted"] == 0
    assert home.stats["recoveries_returned_home"] == 1
    assert home.stats["recovery_stranded"] == 0
    assert len(home._journal) == 0
    sts = statuses_of(bed, image.name)
    assert sts.count("completed") == 1 and sts.count("running") == 0
    # The relaunched copy ran at home and reported locally.
    assert any(
        r["payload"].get("made_it") == home.name
        for r in home.reports
        if isinstance(r.get("payload"), dict)
    )


def test_receiver_crash_then_restart_delivered_once():
    bed = Testbed(2, server_kwargs=retry_kwargs(
        transfer_timeout=4.0,
        transfer_retry=RetryPolicy(attempts=4, base_delay=1.0, jitter=0.0),
    ))
    home, dest = bed.home, bed.servers[1]
    # The receiver dies before the handshake lands and comes back
    # between retries; the sender's channel-drop-on-retry gets a fresh
    # handshake with the restarted process.
    bed.faults().crash(dest, at=0.001, restart_at=3.0)
    image = bed.launch(hopper_to(dest.name), Rights.all())
    bed.run(detect_deadlock=False)
    assert dest.stats["agents_hosted"] == 1
    assert home.stats["transfers_out"] == 1
    assert home.stats["transfer_retries"] >= 1
    sts = statuses_of(bed, image.name)
    assert sts.count("completed") == 1 and sts.count("running") == 0


def test_restart_requires_a_crash():
    bed = Testbed(1)
    with pytest.raises(ReproError):
        bed.home.restart()


# ---------------------------------------------------------------------------
# Failure-policy plumbing
# ---------------------------------------------------------------------------


def test_home_on_failure_diverts_straight_home():
    bed = Testbed(3, server_kwargs=retry_kwargs(
        transfer_timeout=3.0,
        transfer_retry=RetryPolicy(attempts=2, base_delay=0.5, jitter=0.0),
    ))
    home, s1, s2 = bed.servers
    s2.endpoint.close()  # the second stop is dead
    agent = XOnceHomesick()
    agent.itinerary = Itinerary.tour([s1.name, s2.name])
    image = bed.launch(agent, Rights.all())
    bed.run(detect_deadlock=False)
    sts = statuses_of(bed, image.name)
    assert sts.count("completed") == 1 and sts.count("running") == 0
    # Two home residencies: the launch and the homecoming.
    home_records = home.domain_db.records_of(image.name)
    assert len(home_records) == 2
    assert {r.status for r in home_records} == {"departed", "completed"}


def test_itinerary_divert_inserts_before_remaining():
    itinerary = Itinerary.tour(["a", "b", "c"])
    itinerary.advance()
    itinerary.divert("x", "probe")
    assert [s.server for s in itinerary.remaining()] == ["x", "b", "c"]
    assert itinerary.current().method == "probe"


def test_dedup_table_is_bounded_lru():
    table = DedupTable(capacity=2)
    table.put(("p", "a"), b"1")
    table.put(("p", "b"), b"2")
    assert table.get(("p", "a")) == b"1"  # refreshes "a"
    table.put(("p", "c"), b"3")  # evicts "b", the least recently used
    assert ("p", "b") not in table
    assert ("p", "a") in table and ("p", "c") in table
    assert table.evictions == 1 and table.hits == 1


def test_hostile_transfer_id_is_refused():
    from repro.errors import TransferError

    bed = Testbed(2, server_kwargs=retry_kwargs())
    dest = bed.servers[1]
    agent = XOnceHopper()
    image = bed.launch(agent, Rights.all())
    bed.run(detect_deadlock=False)
    # An attacker-controlled id outside the admission bound must never
    # become a dedup key (memory-exhaustion defence).
    for bad_tid in ("y" * 129, "", 12345):
        with pytest.raises(TransferError):
            dest.admission.validate(image.with_attributes(transfer_id=bad_tid))
    # A well-formed id passes.
    dest.admission.validate(image.with_attributes(transfer_id="t-1"))


# ---------------------------------------------------------------------------
# The loss matrix: seeded stress with replay adversity
# ---------------------------------------------------------------------------


def _run_five_hop_tour(loss: float, seed: int) -> tuple[Testbed, object]:
    bed = Testbed(
        6,
        seed=seed,
        loss_rate=loss,
        server_kwargs={
            "transfer_timeout": 10.0,
            "transfer_retry": RetryPolicy(attempts=6, base_delay=1.0,
                                          jitter=0.25),
        },
    )
    # On top of the Bernoulli loss, replay every frame on the first leg:
    # the secure channel rejects the wire replays and the dedup table
    # absorbs application-level retransmissions.
    bed.network.link(bed.home.name, bed.servers[1].name).add_tap(
        Replayer(copies=1)
    )
    agent = XOnceTourist()
    agent.itinerary = Itinerary.tour([s.name for s in bed.servers[1:]])
    image = bed.launch(agent, Rights.all())
    bed.run(detect_deadlock=False)
    return bed, image


@pytest.mark.parametrize("loss", [0.1, 0.3])
def test_five_hop_tour_conservation_under_loss(loss):
    """Seed-independent invariants (CI sweeps REPRO_STRESS_SEED).

    The protocol guarantees exactly-once hosting per *handoff*.  The one
    irreducible residual is two-generals: if a delivery's ack AND every
    retransmission die, the sender must presume failure while the copy
    lives on.  Conservation pins that residual exactly: every completion
    beyond the first is matched one-for-one by a hosting the sender
    never got to account (``hosted - out == completions``) — agents are
    never silently lost, and never duplicated without a written trace.
    """
    bed, image = _run_five_hop_tour(loss, STRESS_SEED)
    sts = statuses_of(bed, image.name)
    assert sts.count("running") == 0  # no stranded copies, anywhere
    assert sts.count("completed") >= 1  # the tour always finishes
    assert set(sts) <= {"departed", "completed", "terminated"}
    hosted = sum(s.stats["agents_hosted"] for s in bed.servers)
    out = sum(s.stats["transfers_out"] for s in bed.servers)
    assert hosted - out == sts.count("completed")


def test_five_hop_tour_loss30_with_replay_is_exactly_once():
    """The acceptance scenario, on a pinned verified seed: 30% loss plus
    a replaying adversary, and the agent is hosted exactly once per hop
    — no duplicates, nothing lost, one completion."""
    bed, image = _run_five_hop_tour(0.3, seed=1000)
    sts = statuses_of(bed, image.name)
    assert sts.count("running") == 0
    assert sts.count("completed") == 1
    hosted = sum(s.stats["agents_hosted"] for s in bed.servers)
    out = sum(s.stats["transfers_out"] for s in bed.servers)
    assert hosted == 1 + out
    # The adversity was real: frames were replayed and retries happened.
    retries = sum(s.stats["transfer_retries"] for s in bed.servers)
    assert retries >= 1

"""Capability tokens across migration: carry, redeem in O(1), die on retire.

The token is the piece of the access matrix an agent takes with it
(section 5.5): minted at its first bind, carried in agent state across
hops, redeemed on return without a policy consult.  Retirement semantics
matter — a *departed* agent keeps its authority (it is mid-tour), while
a completed or terminated one has its holder epoch bumped, killing every
token it ever carried, wherever the copies went.
"""

from __future__ import annotations

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.buffer import Buffer
from repro.core.policy import SecurityPolicy
from repro.core.token import CapabilityToken, default_token_authority
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.server.testbed import Testbed

OWNER = URN.parse("urn:principal:store.com/admin")

OUTCOMES: dict[str, object] = {}


def install_buffer(server, local="buf", **kw):
    authority = server.name.split(":")[2].split("/")[0]
    name = URN.parse(f"urn:resource:{authority}/{local}")
    buf = Buffer(name, OWNER, SecurityPolicy.allow_all(confine=False), **kw)
    server.install_resource(buf)
    return name, buf


@register_trusted_agent_class
class TouringClient(Agent):
    """Binds at home, tours a remote server, redeems its token on return."""

    def run(self):
        here = self.host.server_name()
        if not self.token_hex:  # first hop: bind and remember the ticket
            proxy = self.host.get_resource(self.target)
            proxy.put("stashed before the tour")
            self.token_hex = proxy.capability_token().to_wire().hex()
            OUTCOMES["minted_token"] = self.token_hex
            self.go(self.away, "run")
        elif here == self.away:  # abroad: the ticket stays fresh mid-tour
            token = CapabilityToken.from_wire(bytes.fromhex(self.token_hex))
            OUTCOMES["fresh_mid_tour"] = default_token_authority().is_fresh(
                token, self.host.now()
            )
            self.go(self.home_name, "run")
        else:  # back home: redeem — O(1), no re-mint, no policy consult
            authority = default_token_authority()
            minted_before = authority.stats["minted"]
            proxy = self.host.get_resource(
                self.target, token=bytes.fromhex(self.token_hex)
            )
            OUTCOMES["redeem_minted_delta"] = (
                authority.stats["minted"] - minted_before
            )
            OUTCOMES["redeemed_value"] = proxy.get()
            OUTCOMES["redeemed_token_matches"] = (
                proxy.capability_token().to_wire().hex() == self.token_hex
            )
            self.complete()


def test_token_survives_tour_and_redeems_without_reminting():
    OUTCOMES.clear()
    bed = Testbed(2)
    name, _ = install_buffer(bed.home)
    agent = TouringClient()
    agent.target = str(name)
    agent.token_hex = ""
    agent.home_name = bed.home.name
    agent.away = bed.servers[1].name
    image = bed.launch(agent, Rights.all())
    bed.run()
    # Departing home did NOT revoke: the agent is mid-tour, not retired.
    assert OUTCOMES["fresh_mid_tour"] is True
    # The return redeem was the fast path: same token, zero new mints.
    assert OUTCOMES["redeem_minted_delta"] == 0
    assert OUTCOMES["redeemed_token_matches"] is True
    assert OUTCOMES["redeemed_value"] == "stashed before the tour"
    # Completion retired the agent: its holder epoch moved, so every
    # copy of the token it carried is now stale — revoked in O(1).
    token = CapabilityToken.from_wire(
        bytes.fromhex(OUTCOMES["minted_token"])
    )
    assert not default_token_authority().is_fresh(token, bed.clock.now())


@register_trusted_agent_class
class TokenLingerer(Agent):
    """Binds, stashes its ticket, then sleeps far past the test horizon."""

    def run(self):
        proxy = self.host.get_resource(self.target)
        OUTCOMES["wire"] = proxy.capability_token().to_wire().hex()
        self.host.sleep(10_000.0)  # never completes on its own
        self.complete()


def test_terminated_agent_tokens_revoked_everywhere():
    OUTCOMES.clear()
    bed = Testbed(1)
    name, _ = install_buffer(bed.home)
    agent = TokenLingerer()
    agent.target = str(name)
    image = bed.launch(agent, Rights.all())
    bed.run(until=50.0)  # long enough to bind, far short of the sleep
    token = CapabilityToken.from_wire(bytes.fromhex(OUTCOMES["wire"]))
    assert default_token_authority().is_fresh(token, bed.clock.now())
    domain_id = bed.home.domain_db.by_agent(image.name).domain_id
    assert bed.home.terminate_resident(domain_id)
    # The kill bumped the holder epoch: the stashed ticket is dead.
    assert not default_token_authority().is_fresh(token, bed.clock.now())

"""Per-server verifier policies: sites choose what shipped code may do."""

from __future__ import annotations

import pytest

from repro.credentials.rights import Rights
from repro.sandbox.verifier import VerifierPolicy
from repro.server.testbed import Testbed

STATS_AGENT = """
import statistics

class Analyst(Agent):
    def run(self):
        mean = statistics.fmean(self.samples)
        self.host.report_home({"mean": mean})
        self.complete()
"""


def test_widened_allowlist_admits_richer_agents():
    bed = Testbed(1)
    bed.home.admission.verifier_policy = VerifierPolicy(
        allowed_imports=frozenset({"math", "statistics"})
    )
    bed.launch_source(STATS_AGENT, "Analyst", Rights.all(),
                      state={"samples": [1.0, 2.0, 3.0]})
    bed.run()
    assert bed.home.reports[-1]["payload"]["mean"] == pytest.approx(2.0)


def test_default_allowlist_rejects_the_same_agent():
    bed = Testbed(1)
    with pytest.raises(Exception, match="import of 'statistics'"):
        bed.launch_source(STATS_AGENT, "Analyst", Rights.all(),
                          state={"samples": [1.0]})


def test_policies_differ_per_server():
    """A permissive gateway and a strict interior server coexist: the
    agent is admitted at hop 1 and refused at hop 2."""
    hop_source = """
import statistics

class RovingAnalyst(Agent):
    def run(self):
        if self.next_stop:
            nxt, self.next_stop = self.next_stop, ""
            self.go(nxt, "run")
        self.complete()
"""
    bed = Testbed(2, server_kwargs={"transfer_timeout": 10.0})
    bed.home.admission.verifier_policy = VerifierPolicy(
        allowed_imports=frozenset({"math", "statistics"})
    )
    # servers[1] keeps the strict default allowlist.
    image = bed.launch_source(
        hop_source, "RovingAnalyst", Rights.all(),
        state={"next_stop": bed.servers[1].name},
    )
    bed.run(detect_deadlock=False)
    assert bed.servers[1].stats["transfers_refused"] == 1
    assert bed.home.resident_status(image.name)["status"] == "terminated"


def test_loop_budget_configurable_per_server():
    bed = Testbed(1)
    bed.home.admission.verifier_policy = VerifierPolicy(max_loop_iterations=50)
    image = bed.launch_source(
        "class Counter(Agent):\n"
        "    def run(self):\n"
        "        total = 0\n"
        "        for i in range(200):\n"
        "            total = total + i\n"
        "        self.complete()\n",
        "Counter",
        Rights.all(),
    )
    bed.run()
    assert bed.home.resident_status(image.name)["status"] == "terminated"
    retire = bed.home.audit.records(operation="agent.retire")[-1]
    assert "execution budget" in retire.detail

"""Failure injection: lossy links, partitions, crashed servers.

The paper's availability story is thin (1998); these tests pin what our
implementation guarantees today: transfers either complete or fail
*detectably* (timeout → sender-side terminal status), never silently
duplicating or losing an agent without trace.
"""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.credentials.rights import Rights
from repro.server.testbed import Testbed


@register_trusted_agent_class
class SimpleHopper(Agent):
    def __init__(self) -> None:
        self.hops = []

    def run(self):
        if self.hops:
            nxt = self.hops.pop(0)
            self.go(nxt, "run")
        self.host.report_home({"made_it": self.host.server_name()})
        self.complete()


def hopper_to(dest):
    agent = SimpleHopper()
    agent.hops = [dest]
    return agent


def test_partitioned_link_transfer_times_out():
    bed = Testbed(2, server_kwargs={"transfer_timeout": 10.0})
    bed.network.set_link_state(bed.home.name, bed.servers[1].name, False)
    image = bed.launch(hopper_to(bed.servers[1].name), Rights.all())
    bed.run(detect_deadlock=False)
    assert bed.home.resident_status(image.name)["status"] == "terminated"
    assert bed.home.stats["transfers_failed"] == 1
    assert bed.servers[1].stats["agents_hosted"] == 0
    # The failure is visible in the audit trail.
    retire = bed.home.audit.records(operation="agent.retire")[-1]
    assert "transfer failed" in retire.detail


def test_partition_heals_next_agent_succeeds():
    bed = Testbed(2, server_kwargs={"transfer_timeout": 10.0})
    bed.network.set_link_state(bed.home.name, bed.servers[1].name, False)
    bed.launch(hopper_to(bed.servers[1].name), Rights.all(), agent_local="a1")
    bed.run(detect_deadlock=False)
    bed.network.set_link_state(bed.home.name, bed.servers[1].name, True)
    image = bed.launch(hopper_to(bed.servers[1].name), Rights.all(),
                       agent_local="a2")
    bed.run(detect_deadlock=False)
    assert bed.servers[1].resident_status(image.name)["status"] == "completed"


def test_multihop_routing_around_failed_link():
    """With an alternate route, the transfer never notices the failure."""
    bed = Testbed(3, topology="full", server_kwargs={"transfer_timeout": 30.0})
    bed.network.set_link_state(bed.home.name, bed.servers[1].name, False)
    image = bed.launch(hopper_to(bed.servers[1].name), Rights.all())
    bed.run(detect_deadlock=False)
    # Routed via server 2.
    assert bed.servers[1].resident_status(image.name)["status"] == "completed"
    via = bed.network.link(bed.home.name, bed.servers[2].name)
    assert via.stats["bytes"] > 0


def test_crashed_destination_server():
    bed = Testbed(2, server_kwargs={"transfer_timeout": 10.0})
    bed.servers[1].endpoint.close()  # the server process died
    image = bed.launch(hopper_to(bed.servers[1].name), Rights.all())
    bed.run(detect_deadlock=False)
    assert bed.home.resident_status(image.name)["status"] == "terminated"
    assert bed.home.stats["transfers_failed"] == 1


def test_very_lossy_link_breaks_transfer_detectably():
    bed = Testbed(2, loss_rate=0.9, seed=77,
                  server_kwargs={"transfer_timeout": 10.0})
    image = bed.launch(hopper_to(bed.servers[1].name), Rights.all())
    bed.run(detect_deadlock=False)
    status = bed.home.resident_status(image.name)["status"]
    hosted = bed.servers[1].stats["agents_hosted"]
    # Either the whole exchange got lucky and completed, or the sender
    # terminated the agent after its timeout — never a silent limbo.
    if hosted:
        assert bed.servers[1].resident_status(image.name)["status"] in (
            "completed", "running"
        )
    else:
        assert status == "terminated"
        assert bed.home.stats["transfers_failed"] == 1


def test_transfer_accounting_under_loss():
    """At-most-once hosting, and every launch reaches a terminal account.

    Retransmissions are dedup'd by transfer id on the receiver, so the
    agent is never *hosted* twice; the residual two-generals case (every
    ack AND every retry lost) leaves the destination hosting while the
    sender records a failure, so sender-side "failed" can overcount
    actual losses — see tests/server/test_exactly_once.py.
    """
    bed = Testbed(2, loss_rate=0.3, seed=5,
                  server_kwargs={"transfer_timeout": 15.0})
    n = 10
    for i in range(n):
        bed.launch(hopper_to(bed.servers[1].name), Rights.all(),
                   agent_local=f"h{i}")
    bed.run(detect_deadlock=False)
    hosted = bed.servers[1].stats["agents_hosted"]
    out = bed.home.stats["transfers_out"]
    failed = bed.home.stats["transfers_failed"]
    refused = bed.home.stats["transfers_refused_remote"]
    # Sender side: every launch ends in exactly one terminal account.
    assert out + failed + refused == n
    # Receiver side: at most one hosting per launch, and at least every
    # acknowledged transfer.
    assert out <= hosted <= n

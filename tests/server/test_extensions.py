"""Tests for hop limits, co-location, and the security report."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.buffer import Buffer
from repro.core.policy import SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import MigrationError
from repro.naming.urn import URN
from repro.server.admission import AdmissionPolicy
from repro.server.testbed import Testbed


@register_trusted_agent_class
class PingPong(Agent):
    """Bounces between two servers forever (a runaway agent)."""

    def __init__(self) -> None:
        self.other = {}

    def run(self):
        self.go(self.other[self.host.server_name()], "run")


class TestHopLimit:
    def test_runaway_agent_stopped_at_hop_limit(self):
        bed = Testbed(2)
        for server in bed.servers:
            server.admission.max_trace_length = 6
        agent = PingPong()
        agent.other = {
            bed.home.name: bed.servers[1].name,
            bed.servers[1].name: bed.home.name,
        }
        bed.launch(agent, Rights.all())
        bed.run(detect_deadlock=False)
        total_hops = (
            bed.home.stats["transfers_out"] + bed.servers[1].stats["transfers_out"]
        )
        assert total_hops <= 6
        refusals = (
            bed.home.stats["transfers_refused"]
            + bed.servers[1].stats["transfers_refused"]
        )
        assert refusals == 1  # the 7th hop was refused at admission

    def test_trace_records_the_route(self):
        @register_trusted_agent_class
        class Tourist(Agent):
            def __init__(self) -> None:
                self.stops = []

            def run(self):
                if self.stops:
                    nxt = self.stops.pop(0)
                    self.go(nxt, "run")
                self.complete()

        bed = Testbed(3)
        agent = Tourist()
        agent.stops = [bed.servers[1].name, bed.servers[2].name]
        image = bed.launch(agent, Rights.all())
        bed.run()
        record = bed.servers[2].domain_db.by_agent(image.name)
        # The record's image trace isn't stored; the transfer counters are.
        assert bed.home.stats["transfers_out"] == 1
        assert bed.servers[1].stats["transfers_out"] == 1


class TestCoLocate:
    def test_co_locate_with_resource(self):
        @register_trusted_agent_class
        class Follower(Agent):
            def __init__(self) -> None:
                self.target = ""

            def run(self):
                self.co_locate(self.target, method="arrived")
                self.arrived()

            def arrived(self):
                self.host.report_home({"at": self.host.server_name()})
                self.complete()

        bed = Testbed(3)
        # Register a resource name in the name service at server 2.
        target = URN.parse("urn:resource:site2.net/special")
        bed.name_service.register(target, bed.servers[2].name)
        agent = Follower()
        agent.target = str(target)
        bed.launch(agent, Rights.all())
        bed.run()
        assert bed.home.reports[-1]["payload"]["at"] == bed.servers[2].name

    def test_co_locate_already_there_is_noop(self):
        @register_trusted_agent_class
        class Stayer(Agent):
            def __init__(self) -> None:
                self.target = ""

            def run(self):
                self.co_locate(self.target)
                self.host.report_home({"at": self.host.server_name()})
                self.complete()

        bed = Testbed(2)
        target = URN.parse("urn:resource:site0.net/local-thing")
        bed.name_service.register(target, bed.home.name)
        agent = Stayer()
        agent.target = str(target)
        bed.launch(agent, Rights.all())
        bed.run()
        assert bed.home.stats["transfers_out"] == 0
        assert bed.home.reports[-1]["payload"]["at"] == bed.home.name

    def test_co_locate_unknown_name(self):
        @register_trusted_agent_class
        class Lost(Agent):
            def run(self):
                try:
                    self.co_locate("urn:agent:x.net/ghost")
                except MigrationError as exc:
                    self.host.report_home({"error": str(exc)})
                self.complete()

        bed = Testbed(1)
        bed.launch(Lost(), Rights.all())
        bed.run()
        assert "cannot locate" in bed.home.reports[-1]["payload"]["error"]


class TestSecurityReport:
    def test_report_aggregates_denials(self):
        @register_trusted_agent_class
        class Probe(Agent):
            def __init__(self) -> None:
                self.target = ""

            def run(self):
                proxy = self.host.get_resource(self.target)
                proxy.put("will be denied")

        bed = Testbed(1)
        name = URN.parse("urn:resource:site0.net/buf")
        from repro.core.policy import PolicyRule

        buf = Buffer(name, URN.parse("urn:principal:site0.net/o"),
                     SecurityPolicy(rules=[
                         PolicyRule("any", "*", Rights.of("Buffer.get"))
                     ]))
        bed.home.install_resource(buf)
        probe = Probe()
        probe.target = str(name)
        bed.launch(probe, Rights.all())
        bed.run()
        report = bed.home.security_report()
        assert report["denials_total"] >= 1
        assert report["agents_killed_security"] == 1
        assert "proxy.invoke" in report["denials_by_operation"]
        assert report["server"] == bed.home.name

    def test_clean_server_reports_zero(self):
        bed = Testbed(1)
        report = bed.home.security_report()
        assert report["denials_total"] == 0
        assert report["channel_frames_rejected"] == 0

"""Tests for the Testbed world-builder itself."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.credentials.rights import Rights
from repro.errors import ReproError
from repro.server.testbed import Testbed


def test_topologies_connect_expected_links():
    full = Testbed(4, topology="full")
    names = [s.name for s in full.servers]
    assert full.network.path(names[0], names[3]) == [names[0], names[3]]

    line = Testbed(4, topology="line")
    names = [s.name for s in line.servers]
    assert line.network.path(names[0], names[3]) == names

    star = Testbed(4, topology="star")
    names = [s.name for s in star.servers]
    assert star.network.path(names[1], names[3]) == [names[1], names[0], names[3]]


def test_unknown_topology_rejected():
    with pytest.raises(ValueError, match="topology"):
        Testbed(2, topology="donut")


def test_at_least_one_server():
    with pytest.raises(ValueError):
        Testbed(0)


def test_server_named():
    bed = Testbed(2)
    assert bed.server_named(bed.servers[1].name) is bed.servers[1]
    with pytest.raises(ReproError):
        bed.server_named("urn:server:nowhere.net/x")


def test_credentials_verify_against_testbed_ca():
    bed = Testbed(1)
    creds = bed.credentials_for(Rights.of("Buffer.*"))
    creds.verify(bed.ca, bed.clock.now())
    assert creds.owner == bed.owner


def test_launch_without_name_registration():
    @register_trusted_agent_class
    class Quiet(Agent):
        def run(self):
            self.complete()

    bed = Testbed(1)
    image = bed.launch(Quiet(), Rights.all(), register_name=False)
    bed.run()
    assert not bed.name_service.contains(image.name)
    assert bed.home.resident_status(image.name)["status"] == "completed"


def test_deterministic_worlds():
    """Two testbeds with the same seed produce identical keys and names."""
    a, b = Testbed(2, seed=77), Testbed(2, seed=77)
    assert a.owner_keys.public == b.owner_keys.public
    assert [s.name for s in a.servers] == [s.name for s in b.servers]
    assert (
        a.servers[1].secure.certificate.public_key
        == b.servers[1].secure.certificate.public_key
    )
    c = Testbed(2, seed=78)
    assert a.owner_keys.public != c.owner_keys.public


def test_server_kwargs_passthrough():
    bed = Testbed(1, server_kwargs={"transfer_timeout": 5.0,
                                    "resident_lifetime_limit": 99.0})
    assert bed.home.transfer_timeout == 5.0
    assert bed.home.resident_lifetime_limit == 99.0

"""The transfer-failure split: breaker fast-fails vs exhausted retries.

``transfers_failed`` used to double as both "every retry failed" and
"the circuit breaker refused to even try", with a second counter
(``transfer_breaker_fastfail``) bumped alongside it.  Both are now
computed aliases over the two disjoint base counters, so dashboards keep
their keys while operators can finally tell the cases apart.
"""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.credentials.rights import Rights
from repro.server.testbed import Testbed
from repro.util.retry import RetryPolicy


@register_trusted_agent_class
class OneHopper(Agent):
    def __init__(self) -> None:
        self.dest = ""

    def run(self):
        if self.dest:
            dest, self.dest = self.dest, ""
            self.go(dest, "run")
        self.complete()


def hopper_to(dest):
    agent = OneHopper()
    agent.dest = dest
    return agent


@pytest.fixture()
def dead_destination_world():
    """Two servers, the link down, a hair-trigger breaker."""
    bed = Testbed(
        2,
        server_kwargs={
            "transfer_timeout": 5.0,
            "transfer_retry": RetryPolicy(attempts=2, base_delay=0.5,
                                          jitter=0.0),
            "breaker_failure_threshold": 2,
            "breaker_reset_timeout": 1000.0,
        },
    )
    bed.network.set_link_state(bed.home.name, bed.servers[1].name, False)
    return bed


def test_exhaustion_and_fastfail_hit_separate_counters(dead_destination_world):
    bed = dead_destination_world
    dest = bed.servers[1].name

    # First departure: both attempts time out -> retries exhausted.
    # (Its two failures also open the destination's breaker.)
    a1 = bed.launch(hopper_to(dest), Rights.all(), agent_local="a1")
    bed.run(detect_deadlock=False)
    stats = bed.home.stats
    assert stats["transfers_failed_exhausted"] == 1
    assert stats["transfers_failed_breaker"] == 0
    assert stats["transfers_failed"] == 1  # alias: sum of the two
    assert stats["transfer_breaker_fastfail"] == 0
    assert bed.home.resident_status(a1.name)["status"] == "terminated"

    # Second departure: the open breaker refuses before any attempt.
    a2 = bed.launch(hopper_to(dest), Rights.all(), agent_local="a2")
    bed.run(detect_deadlock=False)
    assert stats["transfers_failed_exhausted"] == 1
    assert stats["transfers_failed_breaker"] == 1
    assert stats["transfers_failed"] == 2
    assert stats["transfer_breaker_fastfail"] == 1  # legacy alias tracks it
    assert bed.home.resident_status(a2.name)["status"] == "terminated"


def test_aliases_are_read_only(dead_destination_world):
    stats = dead_destination_world.home.stats
    with pytest.raises(ValueError):
        stats.add("transfers_failed")
    with pytest.raises(ValueError):
        stats.add("transfer_breaker_fastfail")


def test_scrape_surfaces_alias_and_parts(dead_destination_world):
    bed = dead_destination_world
    bed.launch(hopper_to(bed.servers[1].name), Rights.all())
    bed.run(detect_deadlock=False)
    scrape = bed.scrape()
    home = bed.home.name
    assert scrape[f"server.transfers_failed{{server={home}}}"] == 1
    assert scrape[f"server.transfers_failed_exhausted{{server={home}}}"] == 1

"""The lease/heartbeat failure detector's state machine, end to end.

Every transition here is driven through real heartbeat traffic over
secure channels — no view poking.  The invariants: silence (and only
silence) walks a peer alive → suspected → confirmed-dead; a heartbeat
inside the suspicion window clears it; and a confirmed corpse is only
revived by a heartbeat carrying a *higher* incarnation (flap safety:
a healed partition does not resurrect a peer that never restarted).
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.server.membership import MembershipConfig
from repro.server.testbed import Testbed
from repro.util.retry import RetryPolicy


def bed_of(n=3, seed=51, **membership):
    return Testbed(
        n,
        seed=seed,
        self_healing=True,
        membership_config=MembershipConfig(**membership) if membership else None,
        server_kwargs={
            "transfer_timeout": 5.0,
            "transfer_retry": RetryPolicy(
                attempts=3, base_delay=1.0, jitter=0.0
            ),
        },
    )


def test_steady_state_everyone_stays_alive():
    bed = bed_of()
    bed.run(until=60.0, detect_deadlock=False)
    for server in bed.servers:
        others = [s for s in bed.servers if s is not server]
        assert server.membership.alive_peers() == sorted(
            s.name for s in others
        )
        for other in others:
            view = server.membership.view_of(other.name)
            assert view.state == "alive"
            assert view.state_since == 0.0  # never even suspected
        assert server.membership.stats["heartbeats_sent"] > 0
        assert server.membership.stats["suspicions_cleared"] == 0
        assert server.membership.log == []


def test_silence_walks_suspected_then_confirmed_dead():
    bed = bed_of()
    victim, observer = bed.servers[2], bed.servers[0]
    bed.faults().crash(victim, at=7.0)  # no restart: permanent silence
    bed.run(until=40.0, detect_deadlock=False)
    transitions = [
        (state, peer) for _, state, peer in observer.membership.log
    ]
    assert transitions == [
        ("suspected", victim.name), ("confirmed-dead", victim.name)
    ]
    suspected_at = observer.membership.log[0][0]
    confirmed_at = observer.membership.log[1][0]
    # Timing follows the config: ~5s of silence to suspect, ~10s to
    # confirm (quantised by the 1s sweep and the 2s heartbeat period).
    assert 7.0 + 5.0 <= suspected_at <= 7.0 + 5.0 + 3.0
    assert 7.0 + 10.0 <= confirmed_at <= 7.0 + 10.0 + 3.0
    assert observer.membership.state_of(victim.name) == "confirmed-dead"
    assert not observer.membership.is_alive(victim.name)
    assert victim.name not in observer.membership.alive_peers()
    audit = observer.audit.records(operation="membership.confirm_dead")
    assert len(audit) == 1 and audit[0].target == victim.name


def test_heartbeat_inside_suspicion_window_clears_it():
    bed = bed_of()
    victim, observer = bed.servers[2], bed.servers[0]
    # Cut every link of the victim for 6s: long enough to be suspected
    # (5s), far too short to be confirmed dead (10s).
    bed.faults().named_partition(
        "blip", [victim.name],
        [s.name for s in bed.servers if s is not victim],
        at=5.0, heal_at=11.0,
    )
    bed.run(until=40.0, detect_deadlock=False)
    assert observer.membership.stats["suspicions_cleared"] >= 1
    assert observer.membership.state_of(victim.name) == "alive"
    states = [state for _, state, _ in observer.membership.log]
    assert "confirmed-dead" not in states


def test_confirmed_dead_is_only_revived_by_a_higher_incarnation():
    bed = bed_of()
    victim, observer = bed.servers[2], bed.servers[0]
    # A long partition (no crash!) walks the victim into confirmed-dead
    # at incarnation 0.  When it heals, the victim's heartbeats still
    # carry incarnation 0 -- a corpse talking is a flap, not a revival.
    bed.faults().named_partition(
        "long", [victim.name],
        [s.name for s in bed.servers if s is not victim],
        at=2.0, heal_at=25.0,
    )
    bed.run(until=24.9, detect_deadlock=False)
    assert observer.membership.state_of(victim.name) == "confirmed-dead"
    assert observer.membership.stats["peer_revivals"] == 0
    assert observer.membership.view_of(victim.name).incarnation == 0
    # After the heal, rejoin probes carry the verdict "you are dead to
    # me at incarnation 0" to the victim; it refutes by outbidding the
    # buried incarnation, and only *that* higher incarnation revives it.
    # Both sides reconverge without an operator.
    bed.run(until=90.0, detect_deadlock=False)
    assert victim.membership.stats["refutations"] >= 1
    assert victim.membership.incarnation >= 1
    assert observer.membership.stats["peer_revivals"] >= 1
    assert observer.membership.state_of(victim.name) == "alive"
    assert observer.membership.view_of(victim.name).incarnation >= 1
    for a in bed.servers:
        for b in bed.servers:
            if a is not b:
                assert a.membership.state_of(b.name) == "alive"


def test_death_callback_fires_exactly_once_per_confirmation():
    bed = bed_of()
    victim, observer = bed.servers[2], bed.servers[0]
    fired: list[tuple[str, int]] = []
    observer.membership.on_confirmed_dead(
        lambda peer, incarnation: fired.append((peer, incarnation))
    )
    bed.faults().crash(victim, at=3.0)
    bed.run(until=60.0, detect_deadlock=False)
    # Sweeps keep running for 40+ virtual seconds after confirmation;
    # the callback still fires only on the *transition*.
    assert fired == [(victim.name, 0)]


def test_load_and_draining_are_gossiped():
    bed = bed_of()
    target, observer = bed.servers[1], bed.servers[0]
    bed.kernel.schedule(5.0, target.drain)
    bed.run(until=20.0, detect_deadlock=False)
    assert observer.membership.is_draining(target.name)
    assert not observer.membership.is_draining(bed.servers[2].name)
    assert observer.membership.load_of(target.name) == 0.0


def test_config_validation():
    with pytest.raises(ReproError):
        MembershipConfig(heartbeat_period=0.0)
    with pytest.raises(ReproError):
        MembershipConfig(suspect_after=12.0, confirm_after=6.0)
    with pytest.raises(ReproError):
        MembershipConfig(dead_probe_every=0)

"""Failure-tolerant itineraries via the ``transfer_failed`` hook."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.credentials.rights import Rights
from repro.server.testbed import Testbed


@register_trusted_agent_class
class ResilientTourist(Agent):
    """Tries candidate servers in order until one accepts it."""

    def __init__(self) -> None:
        self.candidates = []
        self.failures = []

    def run(self):
        if self.host.server_name() != self.origin:
            self.host.report_home({"arrived_at": self.host.server_name(),
                                   "failures": self.failures})
            self.complete()
        self._try_next()

    def transfer_failed(self, destination, reason):
        self.failures.append(destination)
        self._try_next()

    def _try_next(self):
        if not self.candidates:
            self.host.report_home({"arrived_at": None,
                                   "failures": self.failures})
            self.complete()
        nxt = self.candidates.pop(0)
        self.go(nxt, "run")


@register_trusted_agent_class
class StubbornAgent(Agent):
    """Keeps retrying the same dead destination forever."""

    def __init__(self) -> None:
        self.dest = ""
        self.attempts = 0

    def run(self):
        self.go(self.dest, "run")

    def transfer_failed(self, destination, reason):
        self.attempts += 1
        self.go(destination, "run")  # never learns


def test_hook_routes_around_dead_server():
    bed = Testbed(3, server_kwargs={"transfer_timeout": 10.0})
    bed.network.set_link_state(bed.home.name, bed.servers[1].name, False)
    # Full topology: still reachable via server 2 — so close that too.
    bed.network.set_link_state(bed.servers[2].name, bed.servers[1].name, False)
    agent = ResilientTourist()
    agent.origin = bed.home.name
    agent.candidates = [bed.servers[1].name, bed.servers[2].name]
    bed.launch(agent, Rights.all())
    bed.run(detect_deadlock=False)
    report = bed.home.reports[-1]["payload"]
    assert report["arrived_at"] == bed.servers[2].name
    assert report["failures"] == [bed.servers[1].name]


def test_hook_receives_refusal_reason():
    @register_trusted_agent_class
    class ReasonCollector(Agent):
        def __init__(self) -> None:
            self.dest = ""

        def run(self):
            if self.host.server_name() != self.dest:
                self.go(self.dest, "run")
            self.complete()

        def transfer_failed(self, destination, reason):
            self.host.report_home({"reason": reason})
            self.complete()

    bed = Testbed(2)
    bed.servers[1].admission.accept_untrusted_code = True
    bed.servers[1].admission.max_image_bytes = 10  # refuses everything
    agent = ReasonCollector()
    agent.dest = bed.servers[1].name
    bed.launch(agent, Rights.all())
    bed.run(detect_deadlock=False)
    reason = bed.home.reports[-1]["payload"]["reason"]
    assert "refused by" in reason and "exceeds limit" in reason


def test_retry_budget_bounds_stubborn_agents():
    bed = Testbed(2, server_kwargs={"transfer_timeout": 5.0})
    bed.network.set_link_state(bed.home.name, bed.servers[1].name, False)
    agent = StubbornAgent()
    agent.dest = bed.servers[1].name
    image = bed.launch(agent, Rights.all())
    bed.run(detect_deadlock=False)
    status = bed.home.resident_status(image.name)
    assert status["status"] == "terminated"
    from repro.server.agent_server import AgentServer

    assert bed.home.stats["transfers_failed"] == AgentServer.MAX_TRANSFER_RETRIES + 1


def test_agents_without_hook_keep_old_behavior():
    @register_trusted_agent_class
    class Hookless(Agent):
        def __init__(self) -> None:
            self.dest = ""

        def run(self):
            self.go(self.dest, "run")

    bed = Testbed(2, server_kwargs={"transfer_timeout": 5.0})
    bed.network.set_link_state(bed.home.name, bed.servers[1].name, False)
    agent = Hookless()
    agent.dest = bed.servers[1].name
    image = bed.launch(agent, Rights.all())
    bed.run(detect_deadlock=False)
    assert bed.home.resident_status(image.name)["status"] == "terminated"
    assert bed.home.stats["transfers_failed"] == 1

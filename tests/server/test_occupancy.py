"""Tests for the server's resident-occupancy metrics."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.credentials.rights import Rights
from repro.server.testbed import Testbed


@register_trusted_agent_class
class TimedResident(Agent):
    def __init__(self) -> None:
        self.stay = 1.0

    def run(self):
        self.host.sleep(self.stay)
        self.complete()


def test_current_residents_tracks_live_threads():
    bed = Testbed(1)
    agent = TimedResident()
    agent.stay = 10.0
    bed.launch(agent, Rights.all())
    assert bed.home.current_residents() == 1
    bed.run(until=5.0)
    assert bed.home.current_residents() == 1
    bed.run()
    assert bed.home.current_residents() == 0


def test_average_residents_time_weighted():
    bed = Testbed(1)
    # One resident for 10s starting at t=0, then nothing until t=40.
    agent = TimedResident()
    agent.stay = 10.0
    bed.launch(agent, Rights.all())
    bed.run()
    bed.run(until=40.0)
    # Occupied 10 of 40 seconds → average 0.25.
    assert bed.home.average_residents() == pytest.approx(10.0 / 40.0, rel=0.05)


def test_average_with_overlapping_residents():
    bed = Testbed(1)
    for stay in (10.0, 10.0):
        agent = TimedResident()
        agent.stay = stay
        bed.launch(agent, Rights.all())
    bed.run()
    bed.run(until=20.0)
    # Two residents for 10 of 20 seconds → average 1.0.
    assert bed.home.average_residents() == pytest.approx(1.0, rel=0.05)


def test_departed_agents_leave_occupancy():
    @register_trusted_agent_class
    class QuickMover(Agent):
        def __init__(self) -> None:
            self.dest = ""

        def run(self):
            if self.dest:
                dest, self.dest = self.dest, ""
                self.go(dest, "run")
            self.host.sleep(5.0)
            self.complete()

    bed = Testbed(2)
    agent = QuickMover()
    agent.dest = bed.servers[1].name
    bed.launch(agent, Rights.all())
    bed.run()
    assert bed.home.current_residents() == 0
    assert bed.servers[1].current_residents() == 0
    assert bed.servers[1].average_residents() > 0

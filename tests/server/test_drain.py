"""Graceful drain: migrate residents out, refuse new work, conserve.

``AgentServer.drain()`` is the planned-maintenance half of the
self-healing plane: it marks the server draining (gossiped in its
heartbeats, typed refusals for new admissions), then migrates every
resident to a load-chosen survivor using the same placement scorer the
crash-recovery path uses.  The agents themselves just keep touring —
a drained hop looks like any other migration to them.
"""

from __future__ import annotations

import pytest

from repro.agents.agent import register_trusted_agent_class
from repro.agents.itinerary import Itinerary
from repro.agents.patterns import ItineraryAgent
from repro.credentials.rights import Rights
from repro.errors import TransferError
from repro.obs.slo import healed_conservation_residual
from repro.server.testbed import Testbed
from repro.util.retry import RetryPolicy


@register_trusted_agent_class
class DrainTourist(ItineraryAgent):
    """Dwells at every stop long enough to be caught by a drain."""

    dwell = 30.0

    def __init__(self) -> None:
        super().__init__()
        self.visited: list[str] = []

    def visit(self, stop):
        self.visited.append(self.host.server_name())
        self.host.sleep(self.dwell)

    def finish(self):
        self.host.report_home({"visited": self.visited})
        self.complete({"visited": self.visited})


def bed_of(n=3, seed=61):
    return Testbed(
        n,
        seed=seed,
        self_healing=True,
        server_kwargs={
            "transfer_timeout": 5.0,
            "transfer_retry": RetryPolicy(
                attempts=3, base_delay=1.0, jitter=0.0
            ),
        },
    )


def tourist(*stops):
    agent = DrainTourist()
    agent.itinerary = Itinerary.tour(list(stops))
    return agent


def test_drain_migrates_residents_and_they_complete_elsewhere():
    bed = bed_of()
    s0, s1, s2 = bed.servers
    for _ in range(2):
        bed.launch(tourist(s1.name, s2.name), Rights.all())
    # Both tourists are dwelling at s1 when the drain starts.
    bed.kernel.schedule(2.0, s1.drain)
    bed.run(until=300.0, detect_deadlock=False)
    # Migration is an ordinary departure, just server-initiated:
    assert s1.stats["drains"] == 1
    assert s1.stats["drained_out"] == 2
    assert s1.stats["agents_killed_drain"] == 0  # nobody was stranded
    assert s1.stats["drain_failed"] == 0
    assert len(s1._threads) == 0 and len(s1._resident_images) == 0
    # Every tourist finished its tour exactly once, elsewhere.
    assert sum(s.stats["agents_completed"] for s in bed.servers) == 2
    tours = {
        r["agent"]: r["payload"]["visited"]
        for r in s0.reports
        if isinstance(r["payload"], dict) and "visited" in r["payload"]
    }
    assert len(tours) == 2
    # The drain did not lose the dwell at s1: state went with the agent.
    assert all(visited == [s1.name, s2.name] for visited in tours.values())
    assert healed_conservation_residual(bed.servers)() == 0
    drains = s1.audit.records(operation="agent.drain")
    assert len(drains) == 2


def test_draining_server_refuses_new_admissions_typed():
    bed = bed_of(seed=62)
    s0, s1, s2 = bed.servers
    s1.drain()
    bed.run(until=10.0, detect_deadlock=False)
    # Gossiped: peers see the draining flag and stop placing work there.
    assert s0.membership.is_draining(s1.name)
    # A tour routed through the draining server is refused with a typed
    # TransferError; the itinerary driver records the skip and goes on.
    bed.launch(tourist(s1.name, s2.name), Rights.all())
    bed.run(until=200.0, detect_deadlock=False)
    assert s1.stats["transfers_refused_draining"] >= 1
    assert s1.stats["agents_hosted"] == 0
    assert sum(s.stats["agents_completed"] for s in bed.servers) == 1
    report = s0.reports[-1]["payload"]
    assert report["visited"] == [s2.name]
    assert healed_conservation_residual(bed.servers)() == 0


def test_draining_server_refuses_local_launch():
    bed = bed_of(seed=63)
    s1 = bed.servers[1]
    s1.drain()
    with pytest.raises(TransferError, match="draining"):
        bed.launch(tourist(s1.name), Rights.all(), at=s1)


def test_drain_with_no_survivors_relaunches_locally():
    # A lone server has nowhere to send its residents: the drain falls
    # back to killing and relaunching them in place, counted honestly.
    bed = bed_of(n=1, seed=64)
    home = bed.home
    bed.launch(tourist(home.name), Rights.all())
    bed.kernel.schedule(2.0, home.drain)
    bed.run(until=200.0, detect_deadlock=False)
    assert home.stats["drains"] == 1
    assert home.stats["drained_out"] == 0
    assert home.stats["drain_failed"] == 1
    assert home.stats["agents_killed_drain"] == 1
    # The relaunched resident resumed its tour and completed here.
    assert home.stats["agents_completed"] == 1
    assert healed_conservation_residual(bed.servers)() == 0

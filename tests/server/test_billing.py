"""Billing settlement: charges follow the agent home (section 2)."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.database import QueryStore
from repro.core.accounting import Tariff
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.server.testbed import Testbed


@register_trusted_agent_class
class PayingVisitor(Agent):
    def __init__(self) -> None:
        self.target = ""
        self.queries = 3

    def run(self):
        store = self.host.get_resource(self.target)
        for _ in range(self.queries):
            store.query("*")
        self.complete({"done": True})


def metered_store(server, price=0.5):
    authority = server.name.split(":")[2].split("/")[0]
    name = URN.parse(f"urn:resource:{authority}/paid-db")
    policy = SecurityPolicy(
        rules=[PolicyRule("any", "*", Rights.all(), metered=True, confine=False)]
    )
    store = QueryStore(name, URN.parse(f"urn:principal:{authority}/o"), policy,
                       initial={"k": 1}, tariff=Tariff.of({"query": price}))
    server.install_resource(store)
    return name


def test_bill_arrives_at_home_site():
    bed = Testbed(2)
    name = metered_store(bed.servers[1])
    agent = PayingVisitor()
    agent.target = str(name)

    # Launch at home; the agent must hop to the store first.
    @register_trusted_agent_class
    class TravellingPayer(PayingVisitor):
        def run(self):
            if self.host.server_name() != self.away:
                self.go(self.away, "run")
            super_target = self.target
            store = self.host.get_resource(super_target)
            for _ in range(self.queries):
                store.query("*")
            self.complete({"done": True})

    traveller = TravellingPayer()
    traveller.target = str(name)
    traveller.away = bed.servers[1].name
    bed.launch(traveller, Rights.all())
    bed.run()
    bills = [r for r in bed.home.reports if r["payload"].get("type") == "bill"]
    assert len(bills) == 1
    assert bills[0]["payload"]["charges"] == pytest.approx(1.5)
    assert bills[0]["payload"]["server"] == bed.servers[1].name
    assert bed.servers[1].stats["bills_sent"] == 1


def test_no_bill_when_nothing_charged():
    bed = Testbed(2)
    # Unmetered resource at server 1.
    authority = bed.servers[1].name.split(":")[2].split("/")[0]
    name = URN.parse(f"urn:resource:{authority}/free-db")
    store = QueryStore(name, URN.parse(f"urn:principal:{authority}/o"),
                       SecurityPolicy.allow_all(confine=False), initial={"k": 1})
    bed.servers[1].install_resource(store)

    @register_trusted_agent_class
    class FreeRider(Agent):
        def __init__(self) -> None:
            self.target = ""
            self.away = ""

        def run(self):
            if self.host.server_name() != self.away:
                self.go(self.away, "run")
            self.host.get_resource(self.target).query("*")
            self.complete({"done": True})

    agent = FreeRider()
    agent.target = str(name)
    agent.away = bed.servers[1].name
    bed.launch(agent, Rights.all())
    bed.run()
    assert bed.servers[1].stats["bills_sent"] == 0
    assert not [r for r in bed.home.reports
                if r["payload"].get("type") == "bill"]


def test_local_agent_bill_stays_in_domain_db():
    """home == here: no network bill, but the account is queryable."""
    bed = Testbed(1)
    name = metered_store(bed.home)
    agent = PayingVisitor()
    agent.target = str(name)
    image = bed.launch(agent, Rights.all())
    bed.run()
    assert bed.home.stats["bills_sent"] == 0
    assert bed.home.resident_status(image.name)["charges"] == pytest.approx(1.5)

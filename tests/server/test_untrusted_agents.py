"""Untrusted (source-carrying) agents: the full sandbox path end-to-end.

These are the tests that exercise the complete Java-model analogue:
verifier → namespace load → protection domain → proxies — against both
well-behaved and hostile shipped code.
"""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.server.testbed import Testbed

OWNER = URN.parse("urn:principal:store.com/admin")


def install_buffer(server, policy=None, local="buf", **kw):
    authority = server.name.split(":")[2].split("/")[0]
    name = URN.parse(f"urn:resource:{authority}/{local}")
    buf = Buffer(name, OWNER, policy or SecurityPolicy.allow_all(), **kw)
    server.install_resource(buf)
    return name, buf


GOOD_VISITOR = """
class Visitor(Agent):
    def run(self):
        proxy = self.host.get_resource(self.target)
        proxy.put(self.value)
        self.complete({"ok": True})
"""


def test_untrusted_agent_runs_and_uses_proxy():
    bed = Testbed(1)
    name, buf = install_buffer(bed.home, capacity=4)
    image = bed.launch_source(
        GOOD_VISITOR, "Visitor", Rights.all(),
        state={"target": str(name), "value": "from afar"},
    )
    bed.run()
    assert buf.get() == "from afar"
    assert bed.home.resident_status(image.name)["status"] == "completed"


def test_untrusted_agent_migrates_with_its_code():
    source = """
class Hopper(Agent):
    def run(self):
        self.visited = self.visited + [self.host.server_name()]
        if self.next_stops:
            nxt = self.next_stops[0]
            self.next_stops = self.next_stops[1:]
            self.go(nxt, "run")
        self.host.report_home({"visited": self.visited})
        self.complete()
"""
    bed = Testbed(3)
    image = bed.launch_source(
        source, "Hopper", Rights.all(),
        state={"visited": [], "next_stops": [s.name for s in bed.servers[1:]]},
    )
    bed.run()
    # Came back around: report delivered to home from the last server.
    assert len(bed.home.reports) == 1
    assert bed.home.reports[0]["payload"]["visited"] == [s.name for s in bed.servers]
    # Each hop re-verified and re-loaded the code in a fresh namespace.
    assert bed.servers[1].stats["transfers_in"] == 1
    assert bed.servers[2].stats["transfers_in"] == 1


def test_malicious_source_refused_at_transfer():
    bed = Testbed(1)
    with pytest.raises(Exception, match="import of 'os'"):
        bed.launch_source(
            "import os\nclass Visitor(Agent):\n    def run(self):\n        pass\n",
            "Visitor",
            Rights.all(),
        )
    assert bed.home.stats["agents_hosted"] == 0


def test_malicious_source_refused_when_arriving_over_network():
    """A forwarding server cannot launder bad code past admission."""
    evil_hop = """
class TwoFaced(Agent):
    def run(self):
        self.go(self.second, "run")
"""
    bed = Testbed(2)
    # Launch a *valid* agent whose next hop would be fine — then check the
    # refusal path by having server 1 refuse all code.
    bed.servers[1].admission.accept_untrusted_code = False
    image = bed.launch_source(
        evil_hop, "TwoFaced", Rights.all(),
        state={"second": bed.servers[1].name},
    )
    bed.run()
    assert bed.servers[1].stats["transfers_refused"] == 1
    assert bed.home.stats["transfers_refused_remote"] == 1
    assert bed.home.resident_status(image.name)["status"] == "terminated"


def test_impostor_class_rejected_at_load():
    impostor = """
class Agent:
    def run(self):
        pass
"""
    bed = Testbed(1)
    image = bed.launch_source(impostor, "Agent", Rights.all())
    bed.run()
    # Verification passes (the code is harmless Python) but the namespace
    # load rejects shadowing the trusted Agent binding.
    status = bed.home.resident_status(image.name)
    assert status["status"] == "terminated"
    retire = bed.home.audit.records(operation="agent.retire")
    assert any("shadow trusted" in r.detail for r in retire)


def test_proxy_private_ref_unreachable_from_agent_code():
    """Fig. 5's encapsulation: the verifier blocks `proxy._ref`."""
    thief = """
class Thief(Agent):
    def run(self):
        proxy = self.host.get_resource(self.target)
        raw = proxy._ref
        raw.put("stolen direct access")
"""
    bed = Testbed(1)
    with pytest.raises(Exception, match="underscore attribute '_ref'"):
        bed.launch_source(thief, "Thief", Rights.all(), state={"target": "x"})


def test_disabled_method_stops_untrusted_agent():
    taker = """
class Taker(Agent):
    def run(self):
        proxy = self.host.get_resource(self.target)
        proxy.put("should never land")
"""
    bed = Testbed(1)
    policy = SecurityPolicy(
        rules=[PolicyRule("any", "*", Rights.of("Buffer.get", "Buffer.size"))]
    )
    name, buf = install_buffer(bed.home, policy=policy)
    image = bed.launch_source(
        taker, "Taker", Rights.all(), state={"target": str(name)}
    )
    bed.run()
    assert buf.size() == 0
    assert bed.home.resident_status(image.name)["status"] == "terminated"
    assert bed.home.stats["agents_killed_security"] == 1


def test_agents_isolated_from_each_other():
    """Two co-resident agents cannot see each other's namespaces."""
    writer = """
class Writer(Agent):
    def run(self):
        secret_constant = "writer-private"
        self.host.sleep(5.0)
        self.complete()
"""
    prober = """
class Prober(Agent):
    def run(self):
        try:
            leak = secret_constant
        except NameError:
            self.host.report_home({"leaked": False})
            self.complete()
        self.host.report_home({"leaked": True, "value": leak})
        self.complete()
"""
    bed = Testbed(2)
    target = bed.servers[1]
    bed.launch_source(writer, "Writer", Rights.all(), at=target)
    bed.launch_source(prober, "Prober", Rights.all(), at=target)
    bed.run()
    reports = [r["payload"] for r in target.reports]
    assert reports == [{"leaked": False}]

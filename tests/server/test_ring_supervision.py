"""Protection rings: trust tiers buy less bookkeeping, never fewer gates.

Ring assignment happens once, at admission, from *authenticated*
credential fields; the proxy bakes the resulting dispatch path in at
instantiation.  The invariants pinned here:

* ring 0 (trusted launcher) skips audit bookkeeping — but supervision's
  admission quota, bulkheads and deadlines still interpose, because
  safety interlocks are not a matter of trust;
* ring 1 (the default, and the only ring when no :class:`RingPolicy` is
  configured) behaves exactly as the pre-ring code did;
* ring 2 (code-carrying / untrusted) leaves a per-invocation audit
  trail on top of the standard checks.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.agents.transfer import capture_image
from repro.apps.buffer import Buffer
from repro.core.policy import SecurityPolicy
from repro.core.token import RING_TRUSTED, RING_UNTRUSTED, RING_VERIFIED
from repro.credentials.rights import Rights
from repro.errors import ResourceOverloadedError
from repro.naming.urn import URN
from repro.server.admission import AdmissionPolicy, RingPolicy
from repro.server.supervisor import SupervisorConfig
from repro.server.testbed import Testbed

OWNER = URN.parse("urn:principal:store.com/admin")

OUTCOMES: dict[str, object] = {}


@pytest.fixture(autouse=True)
def _reset_outcomes():
    OUTCOMES.clear()
    yield


def install_buffer(server, local="buf", **kw):
    authority = server.name.split(":")[2].split("/")[0]
    name = URN.parse(f"urn:resource:{authority}/{local}")
    buf = Buffer(name, OWNER, SecurityPolicy.allow_all(confine=False), **kw)
    server.install_resource(buf)
    return name, buf


# -- classification ----------------------------------------------------------


def make_image(env, *, source="", owner=None):
    agent = Agent()
    image = capture_image(
        agent,
        credentials=env.credentials(Rights.all(), owner=owner),
        entry_method="capture_state",
        home_site="urn:server:h.net/s0",
        source=source,
    )
    if source:
        image = dataclasses.replace(image, class_name="Visitor")
    return image


class TestRingClassification:
    def test_default_policy_is_everything_ring_1(self, env):
        policy = AdmissionPolicy(env.ca, env.clock)
        assert policy.ring_policy is None
        assert policy.classify_ring(make_image(env)) == RING_VERIFIED
        assert policy.classify_ring(
            make_image(env, source="class Visitor(Agent):\n    pass\n")
        ) == RING_VERIFIED

    def test_trusted_owner_glob_maps_to_ring_0(self, env):
        ring_policy = RingPolicy(trusted_owners=("urn:principal:umn.edu/*",))
        assert ring_policy.classify(make_image(env)) == RING_TRUSTED

    def test_trusted_agent_glob_maps_to_ring_0(self, env):
        ring_policy = RingPolicy(trusted_agents=("urn:agent:umn.edu/*",))
        assert ring_policy.classify(make_image(env)) == RING_TRUSTED

    def test_carried_code_maps_to_ring_2(self, env):
        ring_policy = RingPolicy()
        image = make_image(env, source="class Visitor(Agent):\n    pass\n")
        assert ring_policy.classify(image) == RING_UNTRUSTED

    def test_trusted_match_wins_over_carried_code(self, env):
        ring_policy = RingPolicy(trusted_owners=("urn:principal:umn.edu/*",))
        image = make_image(env, source="class Visitor(Agent):\n    pass\n")
        assert ring_policy.classify(image) == RING_TRUSTED

    def test_untrusted_owner_glob_maps_to_ring_2(self, env):
        ring_policy = RingPolicy(
            untrusted_owners=("urn:principal:shady.example/*",)
        )
        image = make_image(
            env, owner=URN.parse("urn:principal:shady.example/eve")
        )
        assert ring_policy.classify(image) == RING_UNTRUSTED

    def test_unmatched_falls_to_configured_default(self, env):
        ring_policy = RingPolicy(code_is_untrusted=False,
                                 default=RING_UNTRUSTED)
        assert ring_policy.classify(make_image(env)) == RING_UNTRUSTED


# -- ring 0: less bookkeeping, same interlocks -------------------------------


@register_trusted_agent_class
class TrustedWorker(Agent):
    """Ring-0 resident: uses its proxy, then probes the grant quota."""

    def run(self):
        proxy = self.host.get_resource(self.target)
        OUTCOMES["ring"] = proxy.proxy_info()["ring"]
        proxy.put("launcher business")
        OUTCOMES["value"] = proxy.get()
        try:
            extra = self.host.get_resource(self.target)
            OUTCOMES["second_grant"] = type(extra).__name__
        except ResourceOverloadedError as exc:
            OUTCOMES["second_grant"] = type(exc).__name__
        self.complete()


def test_ring0_skips_audit_but_not_supervision_gates():
    bed = Testbed(1, supervision=SupervisorConfig(domain_grant_quota=1))
    bed.home.admission.ring_policy = RingPolicy(
        trusted_owners=(str(bed.owner),)
    )
    name, _ = install_buffer(bed.home)
    agent = TrustedWorker()
    agent.target = str(name)
    image = bed.launch(agent, Rights.all())
    bed.run()
    assert bed.home.resident_status(image.name)["status"] == "completed"
    assert OUTCOMES["ring"] == RING_TRUSTED
    assert OUTCOMES["value"] == "launcher business"
    # The supervision admission quota interposed despite ring 0: trust
    # never disables a safety interlock.
    assert OUTCOMES["second_grant"] == "ResourceOverloadedError"
    # ...but no resource-access audit bookkeeping was paid.
    assert bed.home.audit.records(operation="resource.get_proxy") == []
    assert bed.home.audit.records(operation="proxy.invoke") == []


def test_ring1_default_leaves_no_per_call_audit_trail():
    bed = Testbed(1)
    name, _ = install_buffer(bed.home)
    agent = TrustedWorker()
    agent.target = str(name)
    bed.launch(agent, Rights.all())
    bed.run()
    assert OUTCOMES["ring"] == RING_VERIFIED
    # Standard checks: get_proxy is audited, per-call successes are not.
    assert bed.home.audit.records(
        operation="resource.get_proxy", allowed=True
    ) != []
    assert bed.home.audit.records(operation="proxy.invoke") == []


# -- ring 2: full mediation --------------------------------------------------

VISITOR = """
class Visitor(Agent):
    def run(self):
        proxy = self.host.get_resource(self.target)
        proxy.put("from afar")
        proxy.size()
        self.host.report_home({"ring": proxy.proxy_info()["ring"]})
        self.complete()
"""


def test_ring2_audits_every_invocation():
    bed = Testbed(1)
    bed.home.admission.ring_policy = RingPolicy()
    name, buf = install_buffer(bed.home, capacity=4)
    image = bed.launch_source(
        VISITOR, "Visitor", Rights.all(), state={"target": str(name)}
    )
    bed.run()
    assert bed.home.resident_status(image.name)["status"] == "completed"
    assert bed.home.reports[-1]["payload"] == {"ring": RING_UNTRUSTED}
    invoked = bed.home.audit.records(operation="proxy.invoke", allowed=True)
    targets = [rec.target for rec in invoked]
    assert any(t.endswith(".put") for t in targets)
    assert any(t.endswith(".size") for t in targets)
    assert all(rec.detail == "ring2" for rec in invoked)

"""Resource supervision: bulkheads, quarantine and runaway containment.

The seeded acceptance scenario: one resource method wedges (injected
resource fault) and one runaway agent hammers it, while well-behaved
agents work other resources on the same server.  The supervisor must
contain the blast radius — workers finish, the runaway is killed and
audited with its proxies revoked, the wedged resource is quarantined and
then recovers through the single-probe path once the fault clears.

Runs deterministically under ``REPRO_STRESS_SEED`` (the CI stress job
replays it with several seeds).
"""

from __future__ import annotations

import os

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import (
    InvocationDeadlineError,
    ReproError,
    ResourceOverloadedError,
    ResourceQuarantinedError,
    SupervisionError,
)
from repro.naming.urn import URN
from repro.server.supervisor import SupervisorConfig
from repro.server.testbed import Testbed

STRESS_SEED = int(os.environ.get("REPRO_STRESS_SEED", "1000"))

WEDGY = "urn:resource:site0.net/wedgy"
STEADY = "urn:resource:site0.net/steady"
OWNER = URN.parse("urn:principal:site0.net/o")

# Agents report through module-level scratch (reset per test).
OUTCOMES: dict[str, object] = {}


@pytest.fixture(autouse=True)
def _reset_outcomes():
    OUTCOMES.clear()
    yield


def open_policy() -> SecurityPolicy:
    return SecurityPolicy(
        rules=[PolicyRule("any", "*", Rights.of("Buffer.*"), confine=False)]
    )


def make_buffer(name: str) -> Buffer:
    return Buffer(URN.parse(name), OWNER, open_policy())


@register_trusted_agent_class
class RunawayAgent(Agent):
    """Hammers the wedgy resource; every wedged call overruns its
    deadline until the watchdog kills the whole agent."""

    def run(self):
        proxy = self.host.get_resource(WEDGY)
        for _ in range(50):
            try:
                proxy.size()
            except ReproError as exc:
                OUTCOMES.setdefault("runaway_errors", []).append(type(exc).__name__)
            self.host.sleep(1.0)
        self.complete("survived")


@register_trusted_agent_class
class WorkerAgent(Agent):
    """Well-behaved: spaced calls against the *other* resource."""

    def __init__(self) -> None:
        self.label = "w"

    def run(self):
        proxy = self.host.get_resource(STEADY)
        ok = 0
        for i in range(20):
            try:
                proxy.put(i)
                ok += 1
            except ReproError:
                pass
            self.host.sleep(1.0)
        OUTCOMES[self.label] = ok
        self.complete(ok)


@register_trusted_agent_class
class QuarantineWitness(Agent):
    """Calls the wedged resource mid-quarantine: must be shed fast."""

    def run(self):
        self.host.sleep(18.0)
        proxy = self.host.get_resource(WEDGY)
        before = self.host.now()
        try:
            proxy.size()
            OUTCOMES["witness"] = "allowed"
        except ResourceQuarantinedError as exc:
            # Shed fast-fails: no time passes, and the error carries
            # structured context instead of a parseable message.
            OUTCOMES["witness"] = "quarantined"
            OUTCOMES["witness_elapsed"] = self.host.now() - before
            OUTCOMES["witness_context"] = dict(exc.context)
        except ReproError as exc:
            OUTCOMES["witness"] = type(exc).__name__
        self.complete()


@register_trusted_agent_class
class RecoveryProbe(Agent):
    """Calls the quarantined resource after the fault clears: its call
    is the recovery probe that closes the breaker."""

    def run(self):
        self.host.sleep(60.0)
        proxy = self.host.get_resource(WEDGY)
        try:
            proxy.size()
            OUTCOMES["probe"] = "ok"
        except ReproError as exc:
            OUTCOMES["probe"] = type(exc).__name__
        self.complete()


def scenario_config() -> SupervisorConfig:
    return SupervisorConfig(
        lease_duration=None,  # leases are exercised in test_leases.py
        invoke_deadline=2.0,
        resource_concurrency=8,
        domain_inflight_quota=8,
        degraded_after=1,
        quarantine_after=3,
        probe_after=10.0,
        runaway_strikes=3,
    )


def test_wedged_resource_and_runaway_are_contained():
    bed = Testbed(1, seed=STRESS_SEED, supervision=scenario_config())
    bed.home.install_resource(make_buffer(WEDGY))
    bed.home.install_resource(make_buffer(STEADY))
    # The wedge: every call on the resource parks its invoker far past
    # the 2s invocation deadline, for a 40s window.
    bed.faults().resource_fault(
        bed.home, WEDGY, at=5.0, duration=40.0, mode="wedge", wedge_for=60.0
    )

    runaway = bed.launch(RunawayAgent(), Rights.all(), agent_local="runaway")
    workers = []
    for i in range(3):
        agent = WorkerAgent()
        agent.label = f"worker-{i}"
        workers.append(
            bed.launch(agent, Rights.all(), agent_local=f"worker-{i}")
        )
    bed.launch(QuarantineWitness(), Rights.all(), agent_local="witness")
    bed.launch(RecoveryProbe(), Rights.all(), agent_local="probe")
    bed.run(detect_deadlock=False)

    supervisor = bed.home.supervisor

    # Well-behaved agents on the other resource complete >= 95%.
    total = sum(OUTCOMES[f"worker-{i}"] for i in range(3))
    assert total >= 0.95 * (3 * 20)
    for image in workers:
        assert bed.home.resident_status(image.name)["status"] == "completed"

    # The runaway struck out (deadline overruns), was killed and audited.
    assert "InvocationDeadlineError" in OUTCOMES["runaway_errors"]
    assert bed.home.resident_status(runaway.name)["status"] == "terminated"
    assert supervisor.stats["agents_killed_runaway"] == 1
    assert bed.home.stats["agents_killed_runaway"] == 1
    kills = bed.home.audit.records(operation="agent.runaway_kill")
    assert kills and not kills[0].allowed
    overruns = bed.home.audit.records(operation="supervisor.overrun")
    assert len(overruns) == supervisor.stats["invocation_deadline_overruns"] >= 3

    # ... and its proxies were revoked through the per-domain index.
    record = bed.home.domain_db.by_agent(runaway.name)
    assert record.bindings
    assert all(b.proxy.proxy_info()["revoked"] for b in record.bindings)

    # Mid-window callers were shed fast with structured context.
    assert OUTCOMES["witness"] == "quarantined"
    assert OUTCOMES["witness_elapsed"] == 0.0
    assert OUTCOMES["witness_context"]["resource"] == WEDGY
    assert OUTCOMES["witness_context"]["method"] == "size"

    # The resource went healthy -> quarantined -> (probe) -> healthy.
    assert supervisor.stats["quarantines"] >= 1
    assert OUTCOMES["probe"] == "ok"
    assert supervisor.stats["recoveries"] >= 1
    assert supervisor.health_of(URN.parse(WEDGY)).state == "healthy"
    health_audit = bed.home.audit.records(operation="supervisor.health")
    assert any("quarantined" in r.detail for r in health_audit)
    assert any("-> healthy" in r.detail for r in health_audit)

    # Fault bookkeeping: the injector logged both edges of the window.
    kinds = [kind for _, kind, _ in bed.faults().log]
    assert "resource_fault_begin" in kinds and "resource_fault_end" in kinds


# ---------------------------------------------------------------------------
# Guard mechanics (driven directly, no agents needed)
# ---------------------------------------------------------------------------


def guarded_testbed(config: SupervisorConfig) -> Testbed:
    bed = Testbed(1, supervision=config)
    bed.home.install_resource(make_buffer(STEADY))
    return bed


def test_bulkhead_sheds_over_cap_and_recovers():
    bed = guarded_testbed(
        SupervisorConfig(resource_concurrency=1, invoke_deadline=None)
    )
    guard = bed.home.supervisor.guard_of(URN.parse(STEADY))
    first = guard.begin("dom-a", "get")
    with pytest.raises(ResourceOverloadedError) as shed:
        guard.begin("dom-b", "get")
    assert shed.value.context["limit"] == 1
    assert shed.value.context["domain"] == "dom-b"
    assert isinstance(shed.value, SupervisionError)  # availability, not security
    assert guard.bulkhead.shed == 1
    guard.finish(first, None)
    # The slot frees up: the next admission succeeds.
    second = guard.begin("dom-b", "get")
    guard.finish(second, None)
    assert guard.bulkhead.in_flight == 0
    assert guard.bulkhead.peak == 1


def test_domain_inflight_quota_sheds_one_domain_only():
    bed = guarded_testbed(
        SupervisorConfig(
            resource_concurrency=8, domain_inflight_quota=1,
            invoke_deadline=None,
        )
    )
    guard = bed.home.supervisor.guard_of(URN.parse(STEADY))
    hog = guard.begin("dom-hog", "get")
    with pytest.raises(ResourceOverloadedError) as shed:
        guard.begin("dom-hog", "put")
    assert shed.value.context["domain"] == "dom-hog"
    # Other domains are unaffected: that is the point of a *per-domain* quota.
    other = guard.begin("dom-polite", "get")
    guard.finish(other, None)
    guard.finish(hog, None)
    assert bed.home.supervisor.stats["invocations_shed_domain"] == 1


def test_quarantine_single_probe_and_recovery():
    bed = guarded_testbed(
        SupervisorConfig(
            invoke_deadline=None, degraded_after=1, quarantine_after=2,
            probe_after=5.0,
        )
    )
    supervisor = bed.home.supervisor
    guard = supervisor.guard_of(URN.parse(STEADY))
    for _ in range(2):
        ticket = guard.begin("dom", "get")
        guard.finish(ticket, RuntimeError("boom"))
    assert guard.health.state == "quarantined"
    with pytest.raises(ResourceQuarantinedError):
        guard.begin("dom", "get")
    # Dwell past probe_after: the breaker half-opens...
    bed.kernel.schedule_at(10.0, lambda: None)
    bed.run()
    probe = guard.begin("dom", "get")
    assert probe.probe
    # ...but only ONE probe is admitted; a stampede is still shed.
    with pytest.raises(ResourceQuarantinedError):
        guard.begin("dom-2", "get")
    guard.finish(probe, None)
    assert guard.health.state == "healthy"
    assert supervisor.stats["recoveries"] == 1
    assert supervisor.stats["probes_succeeded"] == 1
    # A fresh call is admitted normally again.
    after = guard.begin("dom-3", "get")
    guard.finish(after, None)


def test_failed_probe_reopens_quarantine():
    bed = guarded_testbed(
        SupervisorConfig(
            invoke_deadline=None, degraded_after=1, quarantine_after=2,
            probe_after=5.0,
        )
    )
    guard = bed.home.supervisor.guard_of(URN.parse(STEADY))
    for _ in range(2):
        ticket = guard.begin("dom", "get")
        guard.finish(ticket, RuntimeError("boom"))
    bed.kernel.schedule_at(10.0, lambda: None)
    bed.run()
    probe = guard.begin("dom", "get")
    assert probe.probe
    guard.finish(probe, RuntimeError("still broken"))
    assert guard.health.state == "quarantined"
    assert bed.home.supervisor.stats["probes_failed"] == 1
    with pytest.raises(ResourceQuarantinedError):
        guard.begin("dom", "get")


def test_grant_admission_quota():
    bed = guarded_testbed(
        SupervisorConfig(invoke_deadline=None, domain_grant_quota=0)
    )
    guard = bed.home.supervisor.guard_of(URN.parse(STEADY))
    with pytest.raises(ResourceOverloadedError) as shed:
        guard.admit_grant("dom-greedy", held=0)
    assert shed.value.context["limit"] == 0
    assert bed.home.supervisor.stats["grants_shed"] == 1


def test_registry_concurrency_cap_control():
    from repro.sandbox.threadgroup import enter_group

    bed = guarded_testbed(SupervisorConfig(invoke_deadline=None))
    guard = bed.home.supervisor.guard_of(URN.parse(STEADY))
    with enter_group(bed.home.server_domain.thread_group):
        bed.home.registry.set_concurrency_cap(URN.parse(STEADY), 2)
    assert guard.bulkhead.limit == 2


def test_unsupervised_server_has_plain_proxies():
    bed = Testbed(1)
    resource = make_buffer(STEADY)
    bed.home.install_resource(resource)
    assert bed.home.supervisor is None
    assert resource._supervision is None


def test_supervision_errors_are_not_security_exceptions():
    # Sheds are availability failures: agents must be able to retry them
    # without tripping security-violation handling.
    from repro.errors import SecurityException

    for exc_type in (
        ResourceOverloadedError, ResourceQuarantinedError,
        InvocationDeadlineError,
    ):
        assert issubclass(exc_type, SupervisionError)
        assert not issubclass(exc_type, SecurityException)

"""Parent control commands over children (section 4)."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.agents.transfer import AgentImage
from repro.credentials.credentials import Credentials
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.server.testbed import Testbed


@register_trusted_agent_class
class SleepyChild(Agent):
    def run(self):
        self.host.sleep(10_000.0)
        self.complete()


def child_image(bed, creator_local: str, child_local: str):
    creds = Credentials.issue(
        agent=URN.parse(f"urn:agent:umn.edu/owner/{child_local}"),
        owner=bed.owner,
        creator=URN.parse(f"urn:agent:umn.edu/owner/{creator_local}"),
        owner_keys=bed.owner_keys,
        owner_certificate=bed.owner_certificate,
        rights=Rights.all(),
        now=bed.clock.now(),
        lifetime=1e6,
    )
    return AgentImage(
        name=creds.agent,
        credentials=DelegatedCredentials.wrap(creds),
        class_name="SleepyChild",
        source="",
        state={},
        entry_method="run",
        home_site=bed.home.name,
    )


@register_trusted_agent_class
class SupervisingParent(Agent):
    def __init__(self) -> None:
        self.child_image = None
        self.timeline = []

    def run(self):
        self.host.launch_child(self.child_image)
        self.timeline.append(self.host.agent_status(self.child_image.name)["status"])
        self.host.sleep(5.0)
        killed = self.host.terminate_child(self.child_image.name)
        self.timeline.append(("killed", killed))
        self.timeline.append(self.host.agent_status(self.child_image.name)["status"])
        self.host.report_home({"timeline": self.timeline})
        self.complete()


def test_creator_can_terminate_its_child():
    bed = Testbed(2)
    parent = SupervisingParent()
    parent.child_image = child_image(bed, "parent-1", "child-k1")
    bed.launch(parent, Rights.all(), at=bed.servers[1], agent_local="parent-1")
    bed.run(detect_deadlock=False)
    timeline = bed.servers[1].reports[-1]["payload"]["timeline"]
    assert timeline == ["running", ("killed", True), "terminated"]
    assert bed.servers[1].stats["agents_terminated_by_creator"] == 1
    assert bed.clock.now() < 10_000.0  # the child never finished its nap


def test_non_creator_cannot_terminate():
    @register_trusted_agent_class
    class Assassin(Agent):
        def __init__(self) -> None:
            self.target = ""

        def run(self):
            try:
                self.host.terminate_child(self.target)
                outcome = "killed"
            except Exception as exc:  # noqa: BLE001
                outcome = f"denied: {exc}"
            self.host.report_home({"outcome": outcome})
            self.complete()

    bed = Testbed(2)
    victim_image = child_image(bed, "legit-parent", "child-k2")
    bed.servers[1].launch(victim_image)
    assassin = Assassin()
    assassin.target = str(victim_image.name)
    bed.launch(assassin, Rights.all(), at=bed.servers[1],
               agent_local="assassin")
    bed.run(until=100.0, detect_deadlock=False)
    outcome = bed.servers[1].reports[-1]["payload"]["outcome"]
    assert outcome.startswith("denied")
    assert bed.servers[1].resident_status(victim_image.name)["status"] == "running"
    denial = bed.servers[1].audit.records(
        operation="agent.terminate_child", allowed=False
    )
    assert denial

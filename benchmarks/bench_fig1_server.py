"""F1 — the agent server structure (Fig. 1), end to end.

Hosting throughput and a latency breakdown across the pictured
components: admission validation (credentials + code), protection-domain
creation, and the full launch→complete round trip — for trusted-class
agents and for source-carrying (verified + namespace-loaded) agents.
"""

from __future__ import annotations

import time

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.agents.transfer import capture_image
from repro.credentials.rights import Rights
from repro.server.testbed import Testbed

from _common import time_op, write_table


@register_trusted_agent_class
class NopAgent(Agent):
    def run(self):
        self.complete()


NOP_SOURCE = """
class NopVisitor(Agent):
    def run(self):
        self.complete()
"""


def host_n_trusted(n: int) -> float:
    bed = Testbed(1)
    for i in range(n):
        bed.launch(NopAgent(), Rights.all(), agent_local=f"nop-{i}")
    start = time.perf_counter()
    bed.run()
    return time.perf_counter() - start


def host_n_untrusted(n: int) -> float:
    bed = Testbed(1)
    for i in range(n):
        bed.launch_source(NOP_SOURCE, "NopVisitor", Rights.all(),
                          agent_local=f"nopv-{i}")
    start = time.perf_counter()
    bed.run()
    return time.perf_counter() - start


def test_host_50_trusted_agents(benchmark):
    benchmark.pedantic(host_n_trusted, args=(50,), rounds=3, iterations=1)


def test_host_50_untrusted_agents(benchmark):
    benchmark.pedantic(host_n_untrusted, args=(50,), rounds=3, iterations=1)


def test_admission_validation(benchmark):
    bed = Testbed(1)
    agent = NopAgent()
    image = capture_image(
        agent,
        credentials=bed.credentials_for(Rights.all()),
        entry_method="run",
        home_site=bed.home.name,
    )
    benchmark(bed.home.admission.validate, image)


def test_table_f1(benchmark):
    def build():
        bed = Testbed(1)
        creds_image = capture_image(
            NopAgent(),
            credentials=bed.credentials_for(Rights.all()),
            entry_method="run",
            home_site=bed.home.name,
        )
        validate_ns = time_op(
            lambda: bed.home.admission.validate(creds_image),
            target_seconds=0.05,
        )
        rows = [["admission validate (credential verify)", validate_ns / 1e3, ""]]
        for n in (10, 100):
            wall = host_n_trusted(n)
            rows.append([
                f"host {n} trusted agents (launch→complete)",
                wall / n * 1e6,
                f"{n / wall:,.0f} agents/s",
            ])
        for n in (10, 100):
            wall = host_n_untrusted(n)
            rows.append([
                f"host {n} untrusted agents (verify+namespace)",
                wall / n * 1e6,
                f"{n / wall:,.0f} agents/s",
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "F1",
        "agent server hosting cost and throughput (Fig. 1)",
        ["operation", "µs/agent", "throughput"],
        rows,
        seed=1000,
        notes=(
            "per-agent cost is dominated by admission's RSA credential"
            " verification plus, for untrusted agents, AST verification and"
            " namespace construction; thread-group/domain bookkeeping is"
            " comparatively free."
        ),
    )

"""F7 — the ``get_proxy`` authorization upcall (Fig. 7).

``get_proxy`` cost as the *policy* grows (rule count) and as the agent's
*credential chain* grows (delegation depth).  This is the work the proxy
design front-loads out of the per-call path, so its scaling matters for
binding-heavy workloads.
"""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.crypto.keys import KeyPair
from repro.naming.urn import URN
from repro.util.rng import make_rng

from _common import BenchWorld, time_op, write_table

OWNER = URN.parse("urn:principal:bench.org/owner")


def policy_with_rules(n_rules: int) -> SecurityPolicy:
    rules = [
        PolicyRule("owner", f"urn:principal:elsewhere{i}.org/*", Rights.all())
        for i in range(n_rules - 1)
    ]
    rules.append(
        PolicyRule("owner", "urn:principal:bench.org/*",
                   Rights.of("Buffer.*"), confine=False)
    )
    return SecurityPolicy(rules=rules)


def make_buffer(policy: SecurityPolicy) -> Buffer:
    return Buffer(URN.parse("urn:resource:bench.org/b"), OWNER, policy)


@pytest.fixture(scope="module")
def world():
    return BenchWorld()


def delegated(world, depth: int):
    creds = world.credentials(Rights.of("Buffer.*"))
    delegator = URN.parse("urn:server:relay.org/s")
    keys = KeyPair.generate(make_rng(99, "relay"), bits=512)
    cert = world.ca.issue(str(delegator), keys.public)
    for _ in range(depth):
        creds = creds.extend(
            delegator=delegator,
            delegator_keys=keys,
            delegator_certificate=cert,
            restriction=Rights.of("Buffer.*"),
            now=world.clock.now(),
            lifetime=1e9,
        )
    return creds


@pytest.mark.parametrize("n_rules", [1, 16, 128])
def test_get_proxy_vs_rules(benchmark, world, n_rules):
    buf = make_buffer(policy_with_rules(n_rules))
    domain = world.agent_domain(Rights.all())
    context = world.context(domain)
    benchmark(buf.get_proxy, domain.credentials, context)


@pytest.mark.parametrize("depth", [0, 4, 8])
def test_get_proxy_vs_delegation_depth(benchmark, world, depth):
    buf = make_buffer(policy_with_rules(1))
    creds = delegated(world, depth)
    domain = world.agent_domain(Rights.all())
    context = world.context(domain)
    benchmark(buf.get_proxy, creds, context)


def _cold_warm(buf, credentials, context):
    """(cold ns, warm ns) for one configuration.

    Cold flushes the grant cache before every bind — every ``get_proxy``
    re-runs the full policy decision, as every one did before the fast
    path existed.  Warm is the steady state: an already-seen credential
    repeatedly re-binding against an unchanged policy.
    """
    def cold_bind():
        buf.flush_grant_cache()
        buf.get_proxy(credentials, context)

    cold = time_op(cold_bind, target_seconds=0.02)
    buf.get_proxy(credentials, context)  # prime the cache
    warm = time_op(lambda: buf.get_proxy(credentials, context),
                   target_seconds=0.02)
    return cold, warm


def _token_redeem(buf, credentials, context):
    """(cold get_proxy ns, redeem_token ns) — the PR 6 re-bind fast path.

    Cold is the full authorization (cache flushed); redeem presents the
    capability token minted at first bind, which manufactures the proxy
    from the token's own fields — no policy decision at any rule count.
    """
    proxy = buf.get_proxy(credentials, context)
    token = proxy.capability_token()

    def cold_bind():
        buf.flush_grant_cache()
        buf.get_proxy(credentials, context)

    cold = time_op(cold_bind, target_seconds=0.02)
    redeem = time_op(
        lambda: buf.redeem_token(token, credentials, context),
        target_seconds=0.02,
    )
    return cold, redeem


def test_table_f7(benchmark, world):
    def build():
        rows = []
        domain = world.agent_domain(Rights.all())
        context = world.context(domain)
        for n_rules in (1, 4, 16, 64, 128):
            buf = make_buffer(policy_with_rules(n_rules))
            cold, warm = _cold_warm(buf, domain.credentials, context)
            rows.append([f"rules={n_rules}, depth=0", cold, warm,
                         f"{cold / warm:.1f}x"])
        for depth in (0, 2, 4, 8):
            buf = make_buffer(policy_with_rules(1))
            creds = delegated(world, depth)
            cold, warm = _cold_warm(buf, creds, context)
            rows.append([f"rules=1, depth={depth}", cold, warm,
                         f"{cold / warm:.1f}x"])
        for n_rules in (1, 128):
            buf = make_buffer(policy_with_rules(n_rules))
            cold, redeem = _token_redeem(buf, domain.credentials, context)
            rows.append([f"token redeem, rules={n_rules}", cold, redeem,
                         f"{cold / redeem:.1f}x"])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "F7",
        "get_proxy cost vs policy size and delegation depth (Fig. 7)",
        ["configuration", "cold ns/get_proxy", "warm ns/get_proxy", "speedup"],
        rows,
        seed=4000,
        notes=(
            "cold = grant cache flushed before each bind (full policy"
            " decision, the pre-fast-path behavior); warm = repeat binding"
            " by an already-seen credential (memoized grant, keyed on"
            " chain fingerprint + policy version).  Cold cost is linear in"
            " rule count and chain depth; warm cost is flat in rule count"
            " (only the chain hash still scales with depth) — the decision"
            " is paid once per (credential, policy version), never per"
            " re-bind, never per call.  The token-redeem rows compare a"
            " cold bind against presenting the capability token minted at"
            " first bind: redemption reads only the token's own fields, so"
            " its cost is flat in rule count."
        ),
    )
    # The acceptance bar for the fast path: at the largest policy size a
    # repeat binding must be at least 3x cheaper than a fresh decision.
    largest = next(r for r in rows if r[0] == "rules=128, depth=0")
    assert largest[1] / largest[2] >= 3.0, (
        f"grant cache speedup at 128 rules below 3x: {largest}"
    )

"""F7 — the ``get_proxy`` authorization upcall (Fig. 7).

``get_proxy`` cost as the *policy* grows (rule count) and as the agent's
*credential chain* grows (delegation depth).  This is the work the proxy
design front-loads out of the per-call path, so its scaling matters for
binding-heavy workloads.
"""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.crypto.keys import KeyPair
from repro.naming.urn import URN
from repro.util.rng import make_rng

from _common import BenchWorld, time_op, write_table

OWNER = URN.parse("urn:principal:bench.org/owner")


def policy_with_rules(n_rules: int) -> SecurityPolicy:
    rules = [
        PolicyRule("owner", f"urn:principal:elsewhere{i}.org/*", Rights.all())
        for i in range(n_rules - 1)
    ]
    rules.append(
        PolicyRule("owner", "urn:principal:bench.org/*",
                   Rights.of("Buffer.*"), confine=False)
    )
    return SecurityPolicy(rules=rules)


def make_buffer(policy: SecurityPolicy) -> Buffer:
    return Buffer(URN.parse("urn:resource:bench.org/b"), OWNER, policy)


@pytest.fixture(scope="module")
def world():
    return BenchWorld()


def delegated(world, depth: int):
    creds = world.credentials(Rights.of("Buffer.*"))
    delegator = URN.parse("urn:server:relay.org/s")
    keys = KeyPair.generate(make_rng(99, "relay"), bits=512)
    cert = world.ca.issue(str(delegator), keys.public)
    for _ in range(depth):
        creds = creds.extend(
            delegator=delegator,
            delegator_keys=keys,
            delegator_certificate=cert,
            restriction=Rights.of("Buffer.*"),
            now=world.clock.now(),
            lifetime=1e9,
        )
    return creds


@pytest.mark.parametrize("n_rules", [1, 16, 128])
def test_get_proxy_vs_rules(benchmark, world, n_rules):
    buf = make_buffer(policy_with_rules(n_rules))
    domain = world.agent_domain(Rights.all())
    context = world.context(domain)
    benchmark(buf.get_proxy, domain.credentials, context)


@pytest.mark.parametrize("depth", [0, 4, 8])
def test_get_proxy_vs_delegation_depth(benchmark, world, depth):
    buf = make_buffer(policy_with_rules(1))
    creds = delegated(world, depth)
    domain = world.agent_domain(Rights.all())
    context = world.context(domain)
    benchmark(buf.get_proxy, creds, context)


def test_table_f7(benchmark, world):
    def build():
        rows = []
        domain = world.agent_domain(Rights.all())
        context = world.context(domain)
        for n_rules in (1, 4, 16, 64, 128):
            buf = make_buffer(policy_with_rules(n_rules))
            ns = time_op(lambda: buf.get_proxy(domain.credentials, context),
                         target_seconds=0.02)
            rows.append([f"rules={n_rules}, depth=0", ns])
        for depth in (0, 2, 4, 8):
            buf = make_buffer(policy_with_rules(1))
            creds = delegated(world, depth)
            ns = time_op(lambda: buf.get_proxy(creds, context),
                         target_seconds=0.02)
            rows.append([f"rules=1, depth={depth}", ns])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "F7",
        "get_proxy cost vs policy size and delegation depth (Fig. 7)",
        ["configuration", "ns/get_proxy"],
        rows,
        notes=(
            "linear in rule count (each rule is matched) and in chain depth"
            " (every link's restriction joins the conjunction) — all paid"
            " once per binding, never per call."
        ),
    )

"""R1 — transfer goodput and latency under loss, with and without retry.

The exactly-once machinery (bounded retries + receiver dedup) exists to
keep agent handoffs working over a lossy internet.  This experiment
quantifies it:

- goodput (delivered / launched) and mean delivery latency (virtual
  seconds) for a wave of transfers at 0–30% per-frame loss, comparing
  the single-shot protocol (attempts=1, the pre-retry behaviour) against
  the retrying one;
- the wall-clock overhead the retry/journal/dedup path adds when the
  network is perfect — the "you only pay when it hurts" check.
"""

from __future__ import annotations

import time

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.credentials.rights import Rights
from repro.server.testbed import Testbed
from repro.util.retry import RetryPolicy

from _common import write_table

SEED = 7100
WAVE = 8  # agents per measured wave


@register_trusted_agent_class
class R1Hopper(Agent):
    def __init__(self) -> None:
        self.dest = ""

    def run(self):
        if self.dest and self.host.server_name() != self.dest:
            self.go(self.dest, "run")
        self.complete()


def run_wave(loss: float, attempts: int, n: int = WAVE, seed: int = SEED):
    """Launch ``n`` one-hop agents under ``loss``; return measurements."""
    bed = Testbed(
        2,
        seed=seed,
        loss_rate=loss,
        server_kwargs={
            "transfer_timeout": 10.0,
            "transfer_retry": RetryPolicy(attempts=attempts, base_delay=1.0,
                                          jitter=0.25),
        },
    )
    home, dest = bed.home, bed.servers[1]
    for i in range(n):
        agent = R1Hopper()
        agent.dest = dest.name
        bed.launch(agent, Rights.all(), agent_local=f"r1-{i}",
                   register_name=False)
    wall_start = time.perf_counter()
    bed.run(detect_deadlock=False)
    wall = time.perf_counter() - wall_start
    # Mean delivery latency over the agents that made it (launches at t=0,
    # so each arrival timestamp IS that agent's transfer latency).
    arrived = [
        r.arrived_at
        for r in dest.domain_db._records.values()  # noqa: SLF001 - bench introspection
    ]
    return {
        "delivered": dest.stats["agents_hosted"],
        "failed": home.stats["transfers_failed"],
        "retries": home.stats["transfer_retries"],
        "suppressed": dest.stats["transfers_duplicate_suppressed"],
        "mean_latency": sum(arrived) / len(arrived) if arrived else float("nan"),
        "virtual_end": bed.clock.now(),
        "wall": wall,
    }


def test_wave_lossless_with_retry(benchmark):
    benchmark.pedantic(lambda: run_wave(0.0, 4), rounds=1, iterations=1)


def test_wave_lossy_with_retry(benchmark):
    benchmark.pedantic(lambda: run_wave(0.2, 4), rounds=1, iterations=1)


def test_table_r1(benchmark):
    def build():
        rows = []
        lossless = {}
        for attempts, label in ((1, "single-shot"), (4, "retry x4")):
            for loss in (0.0, 0.1, 0.2, 0.3):
                m = run_wave(loss, attempts)
                if loss == 0.0:
                    lossless[attempts] = m
                rows.append([
                    label,
                    f"{loss:.0%}",
                    f"{m['delivered']}/{WAVE}",
                    f"{m['mean_latency']:.3f}s",
                    m["retries"],
                    m["suppressed"],
                    m["failed"],
                    f"{m['wall'] * 1e3:.0f}ms",
                ])
        overhead = (
            lossless[4]["wall"] / max(lossless[1]["wall"], 1e-9) - 1.0
        ) * 100.0
        rows.append([
            "lossless overhead (retry vs single-shot)", "0%", "", "", "", "",
            "", f"{overhead:+.1f}%",
        ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "R1",
        "transfer goodput/latency vs loss, retry on/off (exactly-once)",
        ["protocol", "loss", "delivered", "mean arrival", "retries",
         "dedup hits", "failed", "wall"],
        rows,
        seed=SEED,
        notes=(
            "single-shot loses agents as soon as any handshake/transfer"
            " frame dies; the retrying protocol holds goodput at the cost"
            " of backoff latency, with receiver-side dedup absorbing"
            " retransmits whose ack was lost.  The last row is the"
            " wall-clock price of the retry machinery on a perfect"
            " network (target: within noise, <5%)."
        ),
    )

"""S1 — warm-path enforcement throughput: the million-invocations sweep.

The paper's whole argument is that mediation belongs at bind time so the
per-call path stays a handful of local checks.  PR 6 finished that job
with capability tokens (O(1) staleness check against two epoch cells)
and protection rings (the dispatch path picked once at proxy
instantiation).  This bench measures the result end to end:

* invocation throughput (ops/sec) and tail latency (p99) as the
  invocation count sweeps 10^3 → 10^6, per protection ring;
* the token fast path itself: warm validation (seen-cache probe) vs
  cold (full HMAC), and token *redemption* against a fresh bind;
* the headline number for EXPERIMENTS.md: warm enforcement stays under
  a microsecond per call.

``python benchmarks/bench_s1_throughput.py --quick`` runs a reduced
sweep with generous regression thresholds — the CI smoke gate.
"""

from __future__ import annotations

import sys
import time

try:
    from repro.apps.buffer import Buffer
except ImportError:  # CLI invocation without PYTHONPATH=src
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))
    from repro.apps.buffer import Buffer

import pytest

from repro.core.access_protocol import BindingContext
from repro.core.policy import SecurityPolicy
from repro.core.token import (
    RING_NAMES,
    RING_TRUSTED,
    RING_UNTRUSTED,
    RING_VERIFIED,
    default_token_authority,
)
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group
from repro.util.audit import AuditLog

from _common import BenchWorld, time_op, write_table

OWNER = URN.parse("urn:principal:bench.org/owner")

SWEEP = (1_000, 10_000, 100_000, 1_000_000)
QUICK_SWEEP = (1_000, 10_000)
#: p99 is computed from per-call timestamps; past this many samples the
#: instrumentation would dominate the run, so the tail is sampled.
MAX_TIMED_SAMPLES = 100_000


def make_buffer(local="buf"):
    return Buffer(
        URN.parse(f"urn:resource:bench.org/{local}"),
        OWNER,
        SecurityPolicy.allow_all(confine=False),
    )


def ring_context(world, domain, ring: int) -> BindingContext:
    """A binding context as the server's ring tiering would build it:
    ring 0 drops the audit sink, ring 2 gets one (per-call mediation)."""
    audit = None if ring == RING_TRUSTED else AuditLog(world.clock, capacity=256)
    return BindingContext(
        domain_id=domain.domain_id,
        clock=world.clock,
        server_domain_id="server",
        audit=audit,
        ring=ring,
    )


def proxy_at_ring(world, ring: int):
    buf = make_buffer(f"buf-r{ring}")
    domain = world.agent_domain(Rights.all())
    proxy = buf.get_proxy(domain.credentials, ring_context(world, domain, ring))
    return buf, domain, proxy


def sweep_row(proxy, n: int) -> tuple[float, float, float]:
    """(ops/sec, mean ns, p99 ns) over ``n`` warm invocations.

    Throughput comes from one plain timed loop (no per-call probes);
    the tail comes from a separate per-call-instrumented loop, sampled
    down so instrumentation never dominates.
    """
    call = proxy.size
    call()  # prime every lazy path before timing
    start = time.perf_counter()
    for _ in range(n):
        call()
    elapsed = time.perf_counter() - start
    samples = min(n, MAX_TIMED_SAMPLES)
    stamps = []
    clock = time.perf_counter_ns
    for _ in range(samples):
        t0 = clock()
        call()
        stamps.append(clock() - t0)
    stamps.sort()
    p99 = stamps[min(samples - 1, int(samples * 0.99))]
    return n / elapsed, elapsed / n * 1e9, float(p99)


# ---------------------------------------------------------------------------
# pytest-benchmark micro timings
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def world():
    return BenchWorld()


@pytest.mark.parametrize("ring", [RING_TRUSTED, RING_VERIFIED, RING_UNTRUSTED])
def test_warm_call_by_ring(benchmark, world, ring):
    _, domain, proxy = proxy_at_ring(world, ring)
    with enter_group(domain.thread_group):
        benchmark(proxy.size)


def test_token_validate_warm(benchmark, world):
    _, _, proxy = proxy_at_ring(world, RING_VERIFIED)
    token = proxy.capability_token()
    authority = default_token_authority()
    benchmark(authority.authenticate, token)


def test_token_validate_cold(benchmark, world):
    _, _, proxy = proxy_at_ring(world, RING_VERIFIED)
    token = proxy.capability_token()
    authority = default_token_authority()

    def cold():
        authority._seen.clear()
        authority.authenticate(token)

    benchmark(cold)


def test_token_redeem_warm(benchmark, world):
    buf, domain, proxy = proxy_at_ring(world, RING_VERIFIED)
    token = proxy.capability_token()
    context = ring_context(world, domain, RING_VERIFIED)
    benchmark(buf.redeem_token, token, domain.credentials, context)


# ---------------------------------------------------------------------------
# The regenerated S1 table
# ---------------------------------------------------------------------------


def build_sweep_rows(world, sweep=SWEEP):
    rows = []
    for ring in (RING_TRUSTED, RING_VERIFIED, RING_UNTRUSTED):
        _, domain, proxy = proxy_at_ring(world, ring)
        with enter_group(domain.thread_group):
            for n in sweep:
                ops, mean_ns, p99 = sweep_row(proxy, n)
                rows.append([
                    f"{n:>9,}", RING_NAMES[ring], f"{ops:,.0f}",
                    f"{mean_ns:.0f}", f"{p99:.0f}",
                ])
    return rows


def token_path_notes(world) -> str:
    buf, domain, proxy = proxy_at_ring(world, RING_VERIFIED)
    token = proxy.capability_token()
    authority = default_token_authority()
    context = ring_context(world, domain, RING_VERIFIED)
    warm_validate = time_op(lambda: authority.authenticate(token),
                            target_seconds=0.02)

    def cold_validate():
        authority._seen.clear()
        authority.authenticate(token)

    cold = time_op(cold_validate, target_seconds=0.02)
    redeem = time_op(
        lambda: buf.redeem_token(token, domain.credentials, context),
        target_seconds=0.02,
    )
    buf.flush_grant_cache()

    def cold_bind():
        buf.flush_grant_cache()
        buf.get_proxy(domain.credentials, context)

    bind = time_op(cold_bind, target_seconds=0.02)
    return (
        f"token validate: warm {warm_validate:.0f} ns (seen-cache probe),"
        f" cold {cold:.0f} ns (full HMAC); redeem_token {redeem:.0f} ns"
        f" vs cold get_proxy {bind:.0f} ns"
        f" ({bind / max(redeem, 1.0):.0f}x).  Rings differ only in"
        " bookkeeping: ring0 drops the audit sink, ring2 writes one audit"
        " record per call; the enforcement checks are identical."
    )


def test_table_s1(benchmark, world):
    def build():
        return build_sweep_rows(world), token_path_notes(world)

    rows, notes = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "S1",
        "warm enforcement throughput sweep, 10^3..10^6 invocations",
        ["invocations", "ring", "ops/sec", "mean ns/call", "p99 ns"],
        rows,
        seed=4000,
        notes=notes,
    )


# ---------------------------------------------------------------------------
# CI smoke mode
# ---------------------------------------------------------------------------

#: Generous CI-box thresholds — regression tripwires, not targets.
QUICK_MIN_OPS_PER_SEC = 50_000.0
QUICK_MAX_WARM_CALL_NS = 20_000.0
QUICK_MAX_WARM_VALIDATE_NS = 5_000.0


def run_quick() -> int:
    world = BenchWorld()
    failures: list[str] = []
    rows = build_sweep_rows(world, sweep=QUICK_SWEEP)
    print(f"{'invocations':>11}  {'ring':5}  {'ops/sec':>12}  "
          f"{'mean ns':>8}  {'p99 ns':>8}")
    for n, ring, ops, mean_ns, p99 in rows:
        print(f"{n:>11}  {ring:5}  {ops:>12}  {mean_ns:>8}  {p99:>8}")
        if float(ops.replace(",", "")) < QUICK_MIN_OPS_PER_SEC:
            failures.append(
                f"{ring} @ {n.strip()} invocations: {ops} ops/sec"
                f" < {QUICK_MIN_OPS_PER_SEC:,.0f}"
            )
        if float(mean_ns) > QUICK_MAX_WARM_CALL_NS:
            failures.append(
                f"{ring} @ {n.strip()}: mean {mean_ns} ns/call"
                f" > {QUICK_MAX_WARM_CALL_NS:,.0f}"
            )
    _, _, proxy = proxy_at_ring(world, RING_VERIFIED)
    token = proxy.capability_token()
    authority = default_token_authority()
    warm_ns = time_op(lambda: authority.authenticate(token),
                      target_seconds=0.02)
    print(f"warm token validate: {warm_ns:.0f} ns")
    if warm_ns > QUICK_MAX_WARM_VALIDATE_NS:
        failures.append(
            f"warm token validate {warm_ns:.0f} ns"
            f" > {QUICK_MAX_WARM_VALIDATE_NS:,.0f}"
        )
    if failures:
        print("\nS1 smoke FAILED:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("\nS1 smoke OK")
    return 0


def main(argv: list[str]) -> int:
    if "--quick" in argv:
        return run_quick()
    world = BenchWorld()
    rows, notes = build_sweep_rows(world), token_path_notes(world)
    write_table(
        "S1",
        "warm enforcement throughput sweep, 10^3..10^6 invocations",
        ["invocations", "ring", "ops/sec", "mean ns/call", "p99 ns"],
        rows,
        seed=4000,
        notes=notes,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""C5 — credential construction, verification and delegation (section 5.2).

Every agent transfer pays one credential-chain verification at admission,
so these costs bound hosting throughput.  Measured: issuing, verifying,
extending chains, verification vs delegation depth, and wire size growth.
"""

from __future__ import annotations

import pytest

from repro.credentials.credentials import Credentials
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.rights import Rights
from repro.crypto.keys import KeyPair
from repro.naming.urn import URN
from repro.util.rng import make_rng
from repro.util.serialization import encode

from _common import BenchWorld, time_op, write_table


@pytest.fixture(scope="module")
def world():
    return BenchWorld()


@pytest.fixture(scope="module")
def relay(world):
    keys = KeyPair.generate(make_rng(5, "relay"), bits=512)
    cert = world.ca.issue("urn:server:relay.org/s", keys.public)
    return keys, cert


def chain_of(world, relay, depth: int) -> DelegatedCredentials:
    keys, cert = relay
    creds = world.credentials(Rights.of("Buffer.*"))
    for _ in range(depth):
        creds = creds.extend(
            delegator=URN.parse("urn:server:relay.org/s"),
            delegator_keys=keys,
            delegator_certificate=cert,
            restriction=Rights.of("Buffer.get"),
            now=world.clock.now(),
            lifetime=1e9,
        )
    return creds


def test_issue(benchmark, world):
    benchmark(world.credentials, Rights.of("Buffer.*"))


def test_verify_base(benchmark, world):
    creds = world.credentials(Rights.all())
    benchmark(creds.verify, world.ca, world.clock.now())


@pytest.mark.parametrize("depth", [1, 4, 8])
def test_verify_chain(benchmark, world, relay, depth):
    creds = chain_of(world, relay, depth)
    benchmark(creds.verify, world.ca, world.clock.now())


def test_extend_chain(benchmark, world, relay):
    keys, cert = relay
    creds = world.credentials(Rights.all())
    benchmark(
        lambda: creds.extend(
            delegator=URN.parse("urn:server:relay.org/s"),
            delegator_keys=keys,
            delegator_certificate=cert,
            restriction=Rights.of("Buffer.get"),
            now=world.clock.now(),
        )
    )


def test_table_c5(benchmark, world, relay):
    def build():
        rows = []
        issue_ns = time_op(lambda: world.credentials(Rights.of("Buffer.*")),
                           target_seconds=0.05)
        rows.append(["issue (owner signs)", 0, issue_ns / 1e3, ""])
        for depth in (0, 1, 2, 4, 8):
            creds = chain_of(world, relay, depth)
            verify_ns = time_op(
                lambda: creds.verify(world.ca, world.clock.now()),
                target_seconds=0.05,
            )
            rights_ns = time_op(
                lambda: creds.effective_rights().permits("Buffer.get")
            )
            rows.append([
                f"verify chain depth {depth}",
                len(encode(creds)),
                verify_ns / 1e3,
                f"rights eval {rights_ns:,.0f} ns",
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "C5",
        "credential costs vs delegation depth (section 5.2)",
        ["operation", "wire bytes", "µs", "notes"],
        rows,
        seed=4000,
        notes=(
            "verification is linear in depth (one cert validation + one"
            " signature per link); rights evaluation stays cheap because"
            " the conjunction is computed lazily per permission — offline"
            " verifiability, as the paper requires (no online authority)."
        ),
    )

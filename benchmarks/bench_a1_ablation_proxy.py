"""A1 — ablation: why the proxy front-loads policy evaluation.

The proxy's defining design choice (section 5.4) is *when* authorization
work happens.  Three points on that axis, all enforcing the same policy:

1. **precomputed set** (the shipped design): ``get_proxy`` evaluates the
   policy once; each call tests membership in a set;
2. **memoised decision**: first call per method evaluates, later calls
   hit a per-method cache (a middle ground);
3. **re-evaluate per call**: the policy's ``decide`` runs on every
   invocation (what the wrapper/secman designs effectively do).

A second axis: the enabled-set representation on the fast path —
``set`` vs ``frozenset`` vs ``dict`` — to justify the implementation
detail benchmarked in F5.
"""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.core.policy import SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group

from _common import BenchWorld, time_op, write_table

OWNER = URN.parse("urn:principal:bench.org/owner")


def make_buffer():
    return Buffer(URN.parse("urn:resource:bench.org/b"), OWNER,
                  SecurityPolicy.allow_all(confine=False))


class ReEvaluatingGuard:
    """Variant 3: full policy evaluation per call."""

    def __init__(self, resource, policy, credentials):
        self._ref = resource
        self._policy = policy
        self._credentials = credentials

    def size(self):
        grant = self._policy.decide(self._ref, self._credentials)
        if "size" not in grant.enabled:
            raise PermissionError
        return self._ref.size()


class MemoisedGuard(ReEvaluatingGuard):
    """Variant 2: evaluate once per method, then cache."""

    def __init__(self, resource, policy, credentials):
        super().__init__(resource, policy, credentials)
        self._cache: dict[str, bool] = {}

    def size(self):
        allowed = self._cache.get("size")
        if allowed is None:
            grant = self._policy.decide(self._ref, self._credentials)
            allowed = "size" in grant.enabled
            self._cache["size"] = allowed
        if not allowed:
            raise PermissionError
        return self._ref.size()


@pytest.fixture(scope="module")
def world():
    return BenchWorld()


def test_precomputed_set(benchmark, world):
    buf = make_buffer()
    domain = world.agent_domain(Rights.all())
    proxy = buf.get_proxy(domain.credentials, world.context(domain))
    with enter_group(domain.thread_group):
        benchmark(proxy.size)


def test_memoised(benchmark, world):
    buf = make_buffer()
    creds = world.credentials(Rights.all())
    guard = MemoisedGuard(buf, SecurityPolicy.allow_all(confine=False), creds)
    benchmark(guard.size)


def test_reevaluate_per_call(benchmark, world):
    buf = make_buffer()
    creds = world.credentials(Rights.all())
    guard = ReEvaluatingGuard(buf, SecurityPolicy.allow_all(confine=False), creds)
    benchmark(guard.size)


def test_table_a1(benchmark, world):
    def build():
        rows = []
        buf = make_buffer()
        domain = world.agent_domain(Rights.all())
        creds = domain.credentials
        policy = SecurityPolicy.allow_all(confine=False)
        proxy = buf.get_proxy(creds, world.context(domain))
        with enter_group(domain.thread_group):
            pre = time_op(proxy.size)
        memo = time_op(MemoisedGuard(buf, policy, creds).size)
        reev = time_op(ReEvaluatingGuard(buf, policy, creds).size)
        rows.append(["precomputed enabled-set (shipped)", pre, 1.0])
        rows.append(["memoised per-method decision", memo, memo / pre])
        rows.append(["re-evaluate policy per call", reev, reev / pre])
        # representation micro-ablation
        for label, container in (
            ("set membership", {"size", "put", "get"}),
            ("frozenset membership", frozenset({"size", "put", "get"})),
            ("dict lookup", {"size": True, "put": True, "get": True}),
        ):
            ns = time_op(lambda c=container: "size" in c)
            rows.append([f"fast-path container: {label}", ns, ns / pre])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "A1",
        "ablation: when and how authorization is evaluated",
        ["variant", "ns/call", "x precomputed"],
        rows,
        seed=4000,
        notes=(
            "re-evaluating per call costs orders of magnitude more than the"
            " precomputed set; memoisation recovers most of it but cannot"
            " support per-agent selective revocation the way a materialised"
            " enabled-set can (section 5.5)."
        ),
    )

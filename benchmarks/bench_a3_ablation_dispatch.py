"""A3 — ablation: how the proxy dispatches (synthesis vs __getattr__).

The shipped design synthesizes one forwarder method per exported method
(the paper's generated proxy classes).  The tempting simpler alternative
is a single dynamic ``__getattr__`` proxy — no synthesis step at all.
This bench measures what that simplicity costs per call, and the table
records the safety difference that settles the question regardless:
a dynamic proxy must *re-derive* the method set on every access, and any
bug there fails open; the synthesized class fails closed (a method that
wasn't generated simply does not exist).
"""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.core.policy import SecurityPolicy
from repro.core.proxy import synthesize_proxy_class, _proxy_class_cache
from repro.core.resource import exported_methods
from repro.credentials.rights import Rights
from repro.errors import MethodDisabledError
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group

from _common import BenchWorld, time_op, write_table

OWNER = URN.parse("urn:principal:bench.org/owner")


class GetattrProxy:
    """The ablation variant: one dynamic dispatcher, no synthesis."""

    def __init__(self, resource, enabled):
        object.__setattr__(self, "_ref", resource)
        object.__setattr__(self, "_enabled", set(enabled))

    def __getattr__(self, name):
        # Re-derive legality on every *attribute access*.
        if name.startswith("_"):
            raise AttributeError(name)
        if name not in exported_methods(type(self._ref)):
            raise AttributeError(name)
        if name not in self._enabled:
            raise MethodDisabledError(name)
        return getattr(self._ref, name)


def make_buffer():
    return Buffer(URN.parse("urn:resource:bench.org/b"), OWNER,
                  SecurityPolicy.allow_all(confine=False))


@pytest.fixture(scope="module")
def world():
    return BenchWorld()


def test_synthesized_proxy_call(benchmark, world):
    buf = make_buffer()
    domain = world.agent_domain(Rights.all())
    proxy = buf.get_proxy(domain.credentials, world.context(domain))
    with enter_group(domain.thread_group):
        benchmark(proxy.size)


def test_getattr_proxy_call(benchmark, world):
    buf = make_buffer()
    proxy = GetattrProxy(buf, exported_methods(Buffer))
    benchmark(lambda: proxy.size())


def test_getattr_proxy_bound_method_reuse(benchmark, world):
    """The dynamic proxy's best case: caller caches the bound method —
    which also silently BYPASSES all future revocation, the fatal flaw."""
    buf = make_buffer()
    proxy = GetattrProxy(buf, exported_methods(Buffer))
    bound = proxy.size
    benchmark(bound)


def test_table_a3(benchmark, world):
    def build():
        rows = []
        buf = make_buffer()
        domain = world.agent_domain(Rights.all())
        synthesized = buf.get_proxy(domain.credentials, world.context(domain))
        dynamic = GetattrProxy(buf, exported_methods(Buffer))
        with enter_group(domain.thread_group):
            synth_ns = time_op(synthesized.size)
        dyn_ns = time_op(lambda: dynamic.size())
        bound = dynamic.size
        bound_ns = time_op(bound)
        rows.append(["synthesized per-method forwarder (shipped)",
                     synth_ns, "checks every call; fails closed"])
        rows.append(["__getattr__ dynamic proxy",
                     dyn_ns, "re-derives interface per access"])
        rows.append(["__getattr__ with cached bound method",
                     bound_ns, "FAST but bypasses revocation forever"])
        # Demonstrate the bypass concretely for the table note.
        dynamic._enabled.discard("size")
        try:
            dynamic.size()
            revoked_blocked = False
        except MethodDisabledError:
            revoked_blocked = True
        bypassed = bound() == buf.size()  # cached handle still works
        return rows, revoked_blocked, bypassed

    rows, revoked_blocked, bypassed = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    write_table(
        "A3",
        "ablation: proxy dispatch mechanism",
        ["variant", "ns/call", "safety"],
        rows,
        seed=4000,
        notes=(
            f"after disabling `size`: dynamic proxy blocks new lookups"
            f" ({revoked_blocked}) but a previously cached bound method still"
            f" reaches the resource ({bypassed}) — the synthesized forwarder"
            " re-checks inside the call, so caching it is harmless."
            " Dispatch speed is comparable; revocation semantics decide."
        ),
    )

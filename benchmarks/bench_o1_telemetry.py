"""O1 — the cluster telemetry plane, end to end.

PR 9's tentpole claims, pinned as numbers:

* **federation is exact** — a federated scrape of an 8-server cluster
  (every server serving ``telemetry.scrape`` over its secure channel,
  one collector pulling and merging deltas) converges to the *same*
  totals as the testbed's omniscient registry: every integer counter
  key matches exactly (conservation under merge) and histogram mass is
  preserved bucket-for-bucket;
* **profiling attributes the tour** — the deterministic sampling
  profiler, ticking on kernel virtual time, attributes ≥ 90% of its
  samples to open spans across a 5-hop tour, and
  ``FlightRecorder.critical_path`` decomposes the tour's wall-clock
  latency into segments (crypto / network / queue / supervision /
  compute) that sum *exactly* to the total;
* **off means off** — with the whole plane constructed but not started
  (no tracer installed, no collector ticking, no profiler, no SLO
  watchdog), the S1-style warm enforcement path pays ≤ 2% overhead.

``python benchmarks/bench_o1_telemetry.py --quick`` runs the reduced CI
gate: the same exactness checks on a 4-server world, the unclosed-span
check, a bounded scrape p99, and the 2% all-off tripwire.  It also
drops ``results/O1_scrape.json`` (the merged cluster snapshot) and
``results/O1_flame.txt`` (collapsed flame stacks) as CI artifacts.
"""

from __future__ import annotations

import sys

try:
    from repro.server.testbed import Testbed
except ImportError:  # CLI invocation without PYTHONPATH=src
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))
    from repro.server.testbed import Testbed

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.buffer import Buffer
from repro.core.policy import SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.obs import runtime as _obs
from repro.sandbox.threadgroup import enter_group
from repro.sim.threads import SimThread

from _common import RESULTS_DIR, BenchWorld, time_op, write_table

SEED = 7500
N_SERVERS = 8
N_AGENTS = 5
QUICK_N_SERVERS = 4
QUICK_N_AGENTS = 2

#: tripwires (CI regression gates, not targets)
MIN_ATTRIBUTION_RATIO = 0.90
MAX_ALL_OFF_OVERHEAD_PCT = 2.0
MAX_SCRAPE_P99_VIRTUAL_NS = 1e9  # one virtual second per pull, generously


@register_trusted_agent_class
class O1Tourist(Agent):
    """Hop the given tour, touching transfer/crypto machinery per hop."""

    def run(self):
        while self.tour:
            self.go(self.tour.pop(0), "run")
        self.complete("done")


def _launch_tours(bed: Testbed, n_agents: int) -> list:
    """Launch ``n_agents`` ring tours with rotated starting offsets."""
    names = [s.name for s in bed.servers]
    images = []
    for i in range(n_agents):
        agent = O1Tourist()
        rotated = names[i % len(names):] + names[:i % len(names)]
        agent.tour = [n for n in rotated if n != bed.home.name] + [bed.home.name]
        images.append(bed.launch(agent, Rights.none()))
    bed.run()
    return images


# ---------------------------------------------------------------------------
# federation exactness
# ---------------------------------------------------------------------------


def federation_report(n_servers: int = N_SERVERS,
                      n_agents: int = N_AGENTS, seed: int = SEED) -> dict:
    """Drive tours, scrape the cluster, compare against omniscience."""
    bed = Testbed(n_servers, seed=seed)
    _launch_tours(bed, n_agents)

    out: dict = {}

    def scrape():
        out["federated"] = bed.cluster_scrape()

    SimThread(bed.kernel, scrape, name="o1-scraper").start()
    bed.run()

    federated = out["federated"]
    omniscient = bed.scrape()
    # The collector's own bookkeeping (scrape latency, round counters)
    # has no omniscient twin; everything else must match exactly.
    fed_counters = {
        k: v for k, v in federated.items()
        if isinstance(v, int) and not k.startswith("telemetry.")
    }
    omni_counters = {k: v for k, v in omniscient.items() if isinstance(v, int)}
    mismatched = sorted(
        k for k in set(fed_counters) | set(omni_counters)
        if fed_counters.get(k) != omni_counters.get(k)
    )

    def hist_mass(scrape_dict):
        return sum(
            v["count"] for k, v in scrape_dict.items()
            if isinstance(v, dict) and "count" in v
            and not k.startswith("telemetry.")
        )

    # Histogram observations land on each server's own telemetry unit
    # (the omniscient registry only absorbs counters), so ground truth
    # is the sum over per-server snapshots.
    omni_hist_mass = sum(
        state["count"]
        for server in bed.servers
        for key, state in server.telemetry.snapshot().histograms.items()
        if not key.startswith("telemetry.")
    )

    latency = bed.collector.cluster.histogram("telemetry.scrape_latency_ns")
    return {
        "servers": n_servers,
        "targets": len(bed.telemetry_targets()),
        "counter_keys": len(omni_counters),
        "counters_exact": not mismatched,
        "mismatched": mismatched,
        "federated_total": sum(fed_counters.values()),
        "omniscient_total": sum(omni_counters.values()),
        "hist_mass_federated": hist_mass(federated),
        "hist_mass_omniscient": omni_hist_mass,
        "scrape_p99_ns": latency.quantile(0.99) if latency.count else 0.0,
        "cluster_snapshot": bed.collector.cluster_snapshot(),
    }


# ---------------------------------------------------------------------------
# profiling + critical path
# ---------------------------------------------------------------------------


def profiler_report(seed: int = SEED + 1) -> dict:
    """A 5-hop tour under the sampling profiler and flight recorder."""
    bed = Testbed(6, seed=seed)
    recorder = bed.start_tracing()
    profiler = bed.start_profiler(period=0.001)
    agent = O1Tourist()
    agent.tour = [s.name for s in bed.servers][1:]  # 5 hops
    image = bed.launch(agent, Rights.none())
    bed.run()
    bed.stop_profiler()
    bed.stop_tracing()
    cp = recorder.critical_path(image.name)
    residual = abs(sum(cp["segments"].values()) - cp["total"])
    return {
        "samples": profiler.total_samples,
        "attributed": profiler.attributed_samples,
        "ratio": profiler.attribution_ratio,
        "critical_path": cp,
        "cp_residual": residual,
        "unclosed_spans": len(recorder.open_spans()),
        "profiler": profiler,
    }


# ---------------------------------------------------------------------------
# the all-off overhead gate
# ---------------------------------------------------------------------------


def _warm_proxy():
    """An S1-style warm enforcement path: proxy.size on a live binding."""
    world = BenchWorld(seed=SEED)
    buf = Buffer(
        URN.parse("urn:resource:bench.org/o1"),
        URN.parse("urn:principal:bench.org/owner"),
        SecurityPolicy.allow_all(confine=False),
    )
    domain = world.agent_domain(Rights.all())
    proxy = buf.get_proxy(domain.credentials, world.context(domain))
    return domain, proxy


def overhead_report(target_seconds: float = 0.05) -> dict:
    """ns/call with the plane absent vs constructed-but-off.

    Interleaved min-of-5 on each side so scheduler noise cancels, with
    the cyclic GC parked during each timed batch — a bigger heap makes
    generational collections dearer, which is a property of the bench
    process, not of the enforcement path under test.  The off-state
    plane never touches the call path, so the ratio is the honest price
    of merely *having* the telemetry objects around.
    """
    import gc

    _obs.uninstall()  # deterministic baseline: no hooks installed
    domain, proxy = _warm_proxy()
    call = proxy.size

    def measure():
        gc.collect()
        gc.disable()
        try:
            with enter_group(domain.thread_group):
                return time_op(call, target_seconds=target_seconds)
        finally:
            gc.enable()

    measure()  # warm every lazy path before the recorded trials
    bare: list[float] = []
    off: list[float] = []
    plane = None
    for _ in range(5):
        bare.append(measure())
        if plane is None:
            # Construct the whole plane, started nowhere: a telemetry'd
            # world, its SLO watchdog, and a profiler, all idle.
            plane = Testbed(2, seed=SEED + 2)
            plane.slo_monitor()
            plane.start_profiler()
            plane.stop_profiler()
            plane.stop_tracing()
        off.append(measure())
    bare_ns, off_ns = min(bare), min(off)
    return {
        "bare_ns": bare_ns,
        "off_ns": off_ns,
        "overhead_pct": (off_ns / bare_ns - 1.0) * 100.0,
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_federated_scrape_is_exact():
    report = federation_report()
    assert report["counters_exact"], report["mismatched"]
    assert report["federated_total"] == report["omniscient_total"]
    assert report["hist_mass_federated"] == report["hist_mass_omniscient"]
    assert report["scrape_p99_ns"] <= MAX_SCRAPE_P99_VIRTUAL_NS


def test_profiler_attribution_and_critical_path():
    report = profiler_report()
    assert report["ratio"] >= MIN_ATTRIBUTION_RATIO
    assert report["cp_residual"] == pytest.approx(0.0, abs=1e-9)
    assert report["critical_path"]["total"] > 0
    assert report["unclosed_spans"] == 0


def test_all_off_overhead_within_budget():
    report = overhead_report()
    assert report["overhead_pct"] <= MAX_ALL_OFF_OVERHEAD_PCT, report


def build_rows(fed: dict, prof: dict, over: dict) -> tuple[list, str]:
    cp = prof["critical_path"]
    segments = ", ".join(
        f"{k} {v / cp['total']:>4.0%}" for k, v in
        sorted(cp["segments"].items(), key=lambda kv: -kv[1])
    )
    rows = [
        ["federated counter keys", fed["counter_keys"], "keys",
         f"{fed['servers']} servers + {fed['targets'] - fed['servers']}"
         f" ns hosts; exact={fed['counters_exact']}"],
        ["counter conservation", fed["federated_total"], "sum",
         f"omniscient {fed['omniscient_total']}"],
        ["histogram mass preserved", fed["hist_mass_federated"], "observations",
         f"omniscient {fed['hist_mass_omniscient']}"],
        ["scrape p99", fed["scrape_p99_ns"], "virtual ns",
         f"tripwire <= {MAX_SCRAPE_P99_VIRTUAL_NS:.0e}"],
        ["profiler attribution", round(prof["ratio"], 4), "ratio",
         f"{prof['attributed']}/{prof['samples']} samples, 5-hop tour"],
        ["critical-path residual", prof["cp_residual"], "s",
         f"total {cp['total']:.4f}s = {segments}"],
        ["unclosed spans", prof["unclosed_spans"], "spans", "must be 0"],
        ["all-off overhead", round(over["overhead_pct"], 3), "%",
         f"warm call {over['bare_ns']:.0f} -> {over['off_ns']:.0f} ns;"
         f" tripwire <= {MAX_ALL_OFF_OVERHEAD_PCT:.0f}%"],
    ]
    notes = (
        "Federation pulls cumulative snapshots over the secure channel and"
        " merges deltas (restart-safe); the collector scrapes its own host"
        " last so one settled-world round is exact.  The profiler ticks on"
        " kernel virtual time, so sampling is deterministic per seed."
    )
    return rows, notes


def test_table_o1(benchmark):
    def build():
        return build_rows(
            federation_report(), profiler_report(), overhead_report()
        )

    rows, notes = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "O1",
        "cluster telemetry plane: federation exactness, profiling, overhead",
        ["check", "value", "unit", "detail"],
        rows,
        seed=SEED,
        notes=notes,
    )


# ---------------------------------------------------------------------------
# CI smoke mode
# ---------------------------------------------------------------------------


def run_quick() -> int:
    failures: list[str] = []
    fed = federation_report(QUICK_N_SERVERS, QUICK_N_AGENTS)
    prof = profiler_report()
    over = overhead_report(target_seconds=0.02)
    rows, notes = build_rows(fed, prof, over)
    write_table(
        "O1",
        "cluster telemetry plane (CI quick gate)",
        ["check", "value", "unit", "detail"],
        rows,
        seed=SEED,
        notes=notes,
    )

    if not fed["counters_exact"]:
        failures.append(f"federated counters diverge: {fed['mismatched']}")
    if fed["hist_mass_federated"] != fed["hist_mass_omniscient"]:
        failures.append(
            f"histogram mass {fed['hist_mass_federated']}"
            f" != omniscient {fed['hist_mass_omniscient']}"
        )
    if fed["scrape_p99_ns"] > MAX_SCRAPE_P99_VIRTUAL_NS:
        failures.append(
            f"scrape p99 {fed['scrape_p99_ns']:.3g} virtual ns"
            f" > {MAX_SCRAPE_P99_VIRTUAL_NS:.0e}"
        )
    if prof["ratio"] < MIN_ATTRIBUTION_RATIO:
        failures.append(
            f"profiler attribution {prof['ratio']:.3f}"
            f" < {MIN_ATTRIBUTION_RATIO}"
        )
    if prof["cp_residual"] > 1e-9:
        failures.append(
            f"critical path residual {prof['cp_residual']:.3g}s != 0"
        )
    if prof["unclosed_spans"]:
        failures.append(f"{prof['unclosed_spans']} span(s) left unclosed")
    if over["overhead_pct"] > MAX_ALL_OFF_OVERHEAD_PCT:
        failures.append(
            f"all-off overhead {over['overhead_pct']:.2f}%"
            f" > {MAX_ALL_OFF_OVERHEAD_PCT:.0f}%"
        )

    # CI artifacts: the merged cluster view and the collapsed flame stacks.
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "O1_scrape.json").write_text(
        fed["cluster_snapshot"].to_json() + "\n"
    )
    prof["profiler"].render_collapsed(RESULTS_DIR / "O1_flame.txt")

    if failures:
        print("\nO1 smoke FAILED:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("\nO1 smoke OK")
    return 0


def main(argv: list[str]) -> int:
    if "--quick" in argv:
        return run_quick()
    rows, notes = build_rows(
        federation_report(), profiler_report(), overhead_report()
    )
    write_table(
        "O1",
        "cluster telemetry plane: federation exactness, profiling, overhead",
        ["check", "value", "unit", "detail"],
        rows,
        seed=SEED,
        notes=notes,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""C2 — accounting and metering overhead (section 5.5).

What does billing cost on the proxy's fast path?  Configurations:

- unmetered proxy (baseline);
- metered, counting only (free tariff);
- metered with per-call prices (charge accumulation + sink callback);
- metered with quotas (bound check per call);
- metered with elapsed-time charging (two clock reads per call).
"""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.core.accounting import Tariff
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group

from _common import BenchWorld, time_op, write_table

OWNER = URN.parse("urn:principal:bench.org/owner")


def metered_proxy(world, *, metered: bool, tariff: Tariff | None = None,
                  quota: int | None = None):
    quotas = {"Buffer.size": quota} if quota is not None else {}
    policy = SecurityPolicy(
        rules=[
            PolicyRule("any", "*", Rights.of("Buffer.*", quotas=quotas),
                       confine=False, metered=metered)
        ]
    )
    buf = Buffer(URN.parse("urn:resource:bench.org/b"), OWNER, policy,
                 tariff=tariff)
    domain = world.agent_domain(Rights.all())
    return domain, buf.get_proxy(domain.credentials, world.context(domain))


@pytest.fixture(scope="module")
def world():
    return BenchWorld()


def test_unmetered(benchmark, world):
    domain, proxy = metered_proxy(world, metered=False)
    with enter_group(domain.thread_group):
        benchmark(proxy.size)


def test_metered_counting(benchmark, world):
    domain, proxy = metered_proxy(world, metered=True)
    with enter_group(domain.thread_group):
        benchmark(proxy.size)


def test_metered_priced(benchmark, world):
    domain, proxy = metered_proxy(
        world, metered=True, tariff=Tariff.of({"size": 0.001})
    )
    with enter_group(domain.thread_group):
        benchmark(proxy.size)


def test_metered_timed(benchmark, world):
    domain, proxy = metered_proxy(
        world, metered=True, tariff=Tariff.of({}, per_second=1.0)
    )
    with enter_group(domain.thread_group):
        benchmark(proxy.size)


def test_table_c2(benchmark, world):
    def build():
        rows = []
        configs = [
            ("unmetered", dict(metered=False)),
            ("counting only", dict(metered=True)),
            ("per-call price", dict(metered=True, tariff=Tariff.of({"size": 0.001}))),
            ("quota check", dict(metered=True, quota=10**9)),
            ("elapsed-time rate", dict(metered=True,
                                       tariff=Tariff.of({}, per_second=1.0))),
        ]
        baseline = None
        for label, kw in configs:
            domain, proxy = metered_proxy(world, **kw)
            with enter_group(domain.thread_group):
                ns = time_op(proxy.size)
            if baseline is None:
                baseline = ns
            rows.append([label, ns, (ns - baseline) / baseline * 100])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "C2",
        "metering overhead on the proxy call path (section 5.5)",
        ["configuration", "ns/call", "overhead % vs unmetered"],
        rows,
        seed=4000,
        notes=(
            "counting/quota metering is a dict update on the fast path;"
            " elapsed-time billing adds two clock reads — all small"
            " multiples, supporting the paper's embed-it-in-the-proxy design."
        ),
    )

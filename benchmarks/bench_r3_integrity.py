"""R3 — per-hop cost of tamper-evident integrity on multi-hop tours.

Every departure seals a hash-chained appraisal link (sign) and every
admission verifies the whole carried chain (hash + signature checks), so
the price grows with tour length.  This experiment runs waves of 5-hop
round trips with the integrity layer on (the default) and off
(``appraisal=False``) and reports the relative wall-clock overhead per
tour and per hop.  Target: <10% end-to-end on 5-hop tours.
"""

from __future__ import annotations

import time

from repro.agents.agent import register_trusted_agent_class
from repro.agents.itinerary import Itinerary
from repro.agents.patterns import ItineraryAgent
from repro.credentials.rights import Rights
from repro.server.testbed import Testbed

from _common import write_table

SEED = 7300
HOPS = 5  # stops per tour (incl. the homecoming hop)
WAVE = 6  # concurrent tours per measured wave
ROUNDS = 5  # measured waves per configuration


@register_trusted_agent_class
class R3Tourist(ItineraryAgent):
    def visit(self, stop):
        pass


def run_wave(*, appraisal: bool, seed: int):
    """``WAVE`` 5-hop round trips across ``HOPS`` servers; one wave."""
    bed = Testbed(
        HOPS,
        seed=seed,
        server_kwargs={"appraisal": appraisal},
    )
    home = bed.home
    stops = [s.name for s in bed.servers[1:]] + [home.name]
    for i in range(WAVE):
        agent = R3Tourist()
        agent.itinerary = Itinerary.tour(list(stops))
        bed.launch(agent, Rights.all(), agent_local=f"r3-{i}",
                   register_name=False)
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    bed.run(detect_deadlock=False)
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - wall_start
    completed = sum(
        1
        for s in bed.servers
        for r in s.domain_db._records.values()  # noqa: SLF001 - bench introspection
        if r.status == "completed"
    )
    sealed = (
        sum(s.integrity.stats["links_sealed"] for s in bed.servers)
        if appraisal
        else 0
    )
    return {"wall": wall, "cpu": cpu, "completed": completed, "sealed": sealed}


def measure(*, appraisal: bool):
    """Best-of-``ROUNDS`` waves.

    The kernel hops between agent threads, so wall clock carries
    scheduler noise an order of magnitude above the effect being
    measured; process CPU time is the stable, honest cost metric and the
    min over rounds discards GC/interference outliers.
    """
    runs = [
        run_wave(appraisal=appraisal, seed=SEED + i) for i in range(ROUNDS)
    ]
    best = min(runs, key=lambda m: m["cpu"])
    assert all(m["completed"] == WAVE for m in runs)
    return best


def test_wave_integrity_on(benchmark):
    benchmark.pedantic(lambda: run_wave(appraisal=True, seed=SEED),
                       rounds=1, iterations=1)


def test_wave_integrity_off(benchmark):
    benchmark.pedantic(lambda: run_wave(appraisal=False, seed=SEED),
                       rounds=1, iterations=1)


def test_table_r3(benchmark):
    def build():
        off = measure(appraisal=False)
        on = measure(appraisal=True)
        overhead = (on["cpu"] / max(off["cpu"], 1e-9) - 1.0) * 100.0
        hops = HOPS * WAVE  # sealed departures per wave
        rows = [
            [
                "appraisal off", f"{off['completed']}/{WAVE}", 0,
                f"{off['cpu'] * 1e3:.0f}ms",
                f"{off['cpu'] * 1e3 / hops:.2f}ms",
                f"{off['wall'] * 1e3:.0f}ms", "",
            ],
            [
                "appraisal on", f"{on['completed']}/{WAVE}", on["sealed"],
                f"{on['cpu'] * 1e3:.0f}ms",
                f"{on['cpu'] * 1e3 / hops:.2f}ms",
                f"{on['wall'] * 1e3:.0f}ms",
                f"{overhead:+.1f}%",
            ],
        ]
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "R3",
        f"per-hop appraisal overhead, {WAVE} concurrent {HOPS}-hop tours",
        ["integrity", "completed", "links sealed", "cpu/wave", "cpu/hop",
         "wall/wave", "overhead"],
        rows,
        seed=SEED,
        notes=(
            "each hop pays one seal (origin signs the chained link with"
            " one RSA-CRT private op) and one verify (chain walk +"
            " signature/certificate checks, memoized where value-stable);"
            " the homecoming hop adds the itinerary-commitment MAC."
            f"  Overhead is CPU-time, best-of-{ROUNDS} waves, appraisal"
            " on vs off on identical tours.  Target: <10% end-to-end;"
            " the floor is the per-hop seal signature (~0.4ms of pure-"
            "Python RSA-512)."
        ),
    )

"""Benchmark-suite conftest: per-test tracing and table aggregation."""

from __future__ import annotations

import pathlib
import re

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def pytest_addoption(parser):
    # (pytest's builtin --trace is the pdb hook, hence the longer name)
    parser.addoption(
        "--trace-dir",
        action="store",
        default=None,
        metavar="DIR",
        help="export a Chrome trace per benchmark test into DIR",
    )


@pytest.fixture(autouse=True)
def _bench_trace(request):
    """With ``--trace-dir DIR``, every bench runs under a wall-clock tracer.

    Each test gets its own ``<DIR>/<test>.json`` / ``.jsonl`` pair
    (written only if the bench actually drove instrumented code).
    """
    dest = request.config.getoption("--trace-dir")
    if not dest:
        yield
        return
    from _common import tracing_to

    out = pathlib.Path(dest)
    out.mkdir(parents=True, exist_ok=True)
    safe = re.sub(r"[^\w.=-]+", "_", request.node.name)
    with tracing_to(out / safe):
        yield

_ORDER = ["F1", "F2", "F3", "F4", "F5", "F6", "F7", "S1", "C1", "C1b",
          "C2", "C3", "C4", "C5", "C6", "C7", "R1", "R2", "R3", "R4", "R5",
          "A1",
          "A2", "A3", "O1"]


def pytest_sessionfinish(session, exitstatus):
    """Concatenate per-experiment tables into results/SUMMARY.txt."""
    if not RESULTS_DIR.is_dir():
        return
    parts: list[str] = []
    for exp in _ORDER:
        path = RESULTS_DIR / f"{exp}.txt"
        if path.is_file():
            parts.append(path.read_text())
    if parts:
        (RESULTS_DIR / "SUMMARY.txt").write_text("\n".join(parts))

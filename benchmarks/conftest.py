"""Benchmark-suite conftest: aggregate all experiment tables at exit."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

_ORDER = ["F1", "F2", "F3", "F4", "F5", "F6", "F7", "C1", "C1b",
          "C2", "C3", "C4", "C5", "C6", "C7", "R1", "A1", "A2", "A3"]


def pytest_sessionfinish(session, exitstatus):
    """Concatenate per-experiment tables into results/SUMMARY.txt."""
    if not RESULTS_DIR.is_dir():
        return
    parts: list[str] = []
    for exp in _ORDER:
        path = RESULTS_DIR / f"{exp}.txt"
        if path.is_file():
            parts.append(path.read_text())
    if parts:
        (RESULTS_DIR / "SUMMARY.txt").write_text("\n".join(parts))

"""F6 — the six-step resource binding protocol (Fig. 6).

Measured:

- the one-time cost of ``get_resource`` (steps 2-5: registry lookup,
  policy upcall, proxy manufacture, domain-db bookkeeping);
- the amortization argument that justifies proxies over wrappers: total
  cost of *bind once + N proxy calls* vs *N wrapper (ACL-checked) calls*,
  reporting the crossover N.
"""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.core.baselines.wrapper import AccessControlList, wrap_resource
from repro.core.binding import BindingService
from repro.core.domain_db import DomainDatabase
from repro.core.policy import SecurityPolicy
from repro.core.registry import ResourceRegistry
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.sandbox.security_manager import SecurityManager
from repro.sandbox.threadgroup import enter_group
from repro.util.audit import AuditLog

from _common import BenchWorld, time_op, write_table

OWNER = URN.parse("urn:principal:bench.org/owner")
RES = URN.parse("urn:resource:bench.org/buf")


@pytest.fixture(scope="module")
def world():
    return BenchWorld()


@pytest.fixture(scope="module")
def service(world):
    secman = SecurityManager(world.server_domain, AuditLog(world.clock))
    registry = ResourceRegistry(secman, world.clock)
    db = DomainDatabase(world.clock)
    service = BindingService(registry, db, world.clock)
    buf = Buffer(RES, OWNER, SecurityPolicy.allow_all(confine=False))
    with enter_group(world.server_domain.thread_group):
        service.register_resource(buf)
    return service


def test_get_resource_full_protocol(benchmark, world, service):
    domain = world.agent_domain(Rights.all())
    with enter_group(domain.thread_group):
        benchmark(service.get_resource, RES)


def test_registry_lookup_only(benchmark, service):
    benchmark(service.registry.lookup, RES)


def test_table_f6(benchmark, world, service):
    def build():
        domain = world.agent_domain(Rights.all())
        resource = service.registry.lookup(RES)
        with enter_group(domain.thread_group):
            def cold_bind():
                resource.flush_grant_cache()
                service.get_resource(RES)

            # Cold: first visit (policy decided afresh).  Warm: re-binding
            # with the grant memoized — the steady state for agents that
            # bind on every hop.
            bind_ns = time_op(cold_bind, target_seconds=0.03)
            service.get_resource(RES)  # prime the grant cache
            warm_bind_ns = time_op(lambda: service.get_resource(RES),
                                   target_seconds=0.03)
            proxy = service.get_resource(RES)
            proxy_call_ns = time_op(proxy.size)
            acl = AccessControlList().allow(
                "owner", "urn:principal:bench.org/*", Rights.of("Buffer.*")
            )
            wrapper = wrap_resource(service.registry.lookup(RES), acl)
            wrapper_call_ns = time_op(wrapper.size)
        rows = []
        for n_calls in (1, 10, 100, 1000, 10000):
            proxy_total = bind_ns + n_calls * proxy_call_ns
            wrapper_total = n_calls * wrapper_call_ns
            winner = "proxy" if proxy_total < wrapper_total else "wrapper"
            rows.append([
                n_calls, proxy_total / 1000, wrapper_total / 1000, winner,
            ])
        crossover = bind_ns / max(wrapper_call_ns - proxy_call_ns, 1e-9)
        return (rows, bind_ns, warm_bind_ns, proxy_call_ns, wrapper_call_ns,
                crossover)

    rows, bind_ns, warm_bind_ns, proxy_ns, wrapper_ns, crossover = (
        benchmark.pedantic(build, rounds=1, iterations=1)
    )
    write_table(
        "F6",
        "binding amortization: bind-once+proxy vs per-call ACL wrapper (Fig. 6)",
        ["N calls", "proxy total µs", "wrapper total µs", "winner"],
        rows,
        seed=4000,
        notes=(
            f"one-time binding (cold) = {bind_ns:,.0f} ns;"
            f" re-binding (warm, grant cache hit) = {warm_bind_ns:,.0f} ns;"
            f" proxy call = {proxy_ns:,.0f} ns;"
            f" wrapper call = {wrapper_ns:,.0f} ns;"
            f" crossover at N ≈ {crossover:.1f} calls — beyond that the"
            " proxy's front-loaded authorization wins, matching section 5.4."
            " Amortization rows use the cold bind; agents re-binding to a"
            " resource they have visited pay only the warm cost."
        ),
    )
    assert warm_bind_ns < bind_ns  # the fast path must actually be faster

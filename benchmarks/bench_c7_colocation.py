"""C7 — co-located agent communication (section 6's closing claim).

"This same scheme is also used for controlled binding between agents
co-located at a server, allowing them to securely communicate with each
other."  What does that security layer cost per message?

- raw queue hand-off (no protection, the floor);
- mailbox ``deliver`` through a policy-restricted proxy (the shipped
  design: sender identity attached server-side);
- the full stack: two live agents exchanging N messages through a
  mailbox, wall-clock per round trip.
"""

from __future__ import annotations

import time

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.agents.mailbox import AgentMailbox
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group
from repro.sim.kernel import Kernel
from repro.sim.sync import BlockingQueue
from repro.server.testbed import Testbed

from _common import BenchWorld, time_op, write_table

N_MESSAGES = 200


def make_mailbox_proxy(world):
    kernel = Kernel()
    owner_agent = URN.parse("urn:agent:bench.org/listener")
    mailbox = AgentMailbox(
        owner_agent, SecurityPolicy.allow_all(confine=False), kernel
    )
    domain = world.agent_domain(Rights.all())
    proxy = mailbox.get_proxy(domain.credentials, world.context(domain))
    return mailbox, domain, proxy


@pytest.fixture(scope="module")
def world():
    return BenchWorld()


def test_raw_queue_put(benchmark):
    queue = BlockingQueue(Kernel())
    benchmark(queue.try_put, "message")


def test_mailbox_deliver_via_proxy(benchmark, world):
    _, domain, proxy = make_mailbox_proxy(world)
    with enter_group(domain.thread_group):
        benchmark(proxy.deliver, "message")


@register_trusted_agent_class
class C7Listener(Agent):
    def run(self):
        self.host.create_mailbox(SecurityPolicy.allow_all(confine=False))
        for _ in range(N_MESSAGES):
            self.host.receive()
        self.complete()


@register_trusted_agent_class
class C7Speaker(Agent):
    def __init__(self) -> None:
        self.target = ""

    def run(self):
        self.host.sleep(0.1)  # let the listener open its mailbox
        mailbox = self.host.get_resource(self.host.mailbox_of(self.target))
        for i in range(N_MESSAGES):
            mailbox.deliver(i)
        self.complete()


def exchange_run() -> float:
    bed = Testbed(1)
    listener = bed.launch(C7Listener(), Rights.all(),
                          agent_local=f"listener-{id(bed)}")
    speaker = C7Speaker()
    speaker.target = str(listener.name)
    bed.launch(speaker, Rights.all(), agent_local=f"speaker-{id(bed)}")
    start = time.perf_counter()
    bed.run()
    return time.perf_counter() - start


def test_full_agent_exchange(benchmark):
    benchmark.pedantic(exchange_run, rounds=3, iterations=1)


def test_table_c7(benchmark, world):
    def build():
        queue = BlockingQueue(Kernel())
        raw_ns = time_op(lambda: queue.try_put("m"))
        mailbox, domain, proxy = make_mailbox_proxy(world)
        with enter_group(domain.thread_group):
            proxy_ns = time_op(lambda: proxy.deliver("m"))
        wall = exchange_run()
        return [
            ["raw queue hand-off (floor)", raw_ns, 1.0],
            ["mailbox deliver via proxy", proxy_ns, proxy_ns / raw_ns],
            [f"live agents, {N_MESSAGES} messages (full stack)",
             wall / N_MESSAGES * 1e9, (wall / N_MESSAGES * 1e9) / raw_ns],
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "C7",
        "co-located agent communication cost (section 6)",
        ["path", "ns/message", "x raw queue"],
        rows,
        seed=4000,
        notes=(
            "the security layer (policy-gated proxy + server-attached sender"
            " identity) costs a small multiple of a raw queue operation; the"
            " full-stack figure is dominated by simulated-thread context"
            " switches, not by the protection."
        ),
    )

"""C3 — revocation, expiry and confinement costs (section 5.5).

Three questions:

- what do the extra pre-checks (expiry clock read, confinement domain
  compare) cost per call on a *live* proxy?
- how fast does a *revoked/expired* proxy fail (the deny path)?
- how long does it take a resource manager to revoke N outstanding
  proxies at once?
"""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import SecurityException
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group

from _common import BenchWorld, time_op, write_table

OWNER = URN.parse("urn:principal:bench.org/owner")


def proxy_with(world, *, lifetime=None, confine=False):
    policy = SecurityPolicy(
        rules=[PolicyRule("any", "*", Rights.of("Buffer.*"),
                          lifetime=lifetime, confine=confine)]
    )
    buf = Buffer(URN.parse("urn:resource:bench.org/b"), OWNER, policy)
    domain = world.agent_domain(Rights.all())
    return buf, domain, buf.get_proxy(domain.credentials, world.context(domain))


@pytest.fixture(scope="module")
def world():
    return BenchWorld()


def test_live_call_no_extras(benchmark, world):
    _, domain, proxy = proxy_with(world)
    with enter_group(domain.thread_group):
        benchmark(proxy.size)


def test_live_call_with_expiry(benchmark, world):
    _, domain, proxy = proxy_with(world, lifetime=1e9)
    with enter_group(domain.thread_group):
        benchmark(proxy.size)


def test_live_call_with_confinement(benchmark, world):
    _, domain, proxy = proxy_with(world, confine=True)
    with enter_group(domain.thread_group):
        benchmark(proxy.size)


def test_denied_call_revoked(benchmark, world):
    _, domain, proxy = proxy_with(world)
    with enter_group(world.server_domain.thread_group):
        proxy.revoke()

    def denied():
        try:
            proxy.size()
        except SecurityException:
            pass

    with enter_group(domain.thread_group):
        benchmark(denied)


@pytest.mark.parametrize("n_proxies", [10, 1000])
def test_revoke_all(benchmark, world, n_proxies):
    def setup():
        buf = Buffer(URN.parse("urn:resource:bench.org/b"), OWNER,
                     SecurityPolicy.allow_all(confine=False))
        for _ in range(n_proxies):
            domain = world.agent_domain(Rights.all())
            buf.get_proxy(domain.credentials, world.context(domain))
        return (buf,), {}

    def revoke(buf):
        with enter_group(world.server_domain.thread_group):
            buf.revoke_all()

    benchmark.pedantic(revoke, setup=setup, rounds=5, iterations=1)


def test_table_c3(benchmark, world):
    def build():
        rows = []
        _, domain, plain = proxy_with(world)
        _, domain_e, with_expiry = proxy_with(world, lifetime=1e9)
        _, domain_c, with_confine = proxy_with(world, confine=True)
        with enter_group(domain.thread_group):
            base = time_op(plain.size)
            rows.append(["live call, minimal pre-check", base, 1.0])
        with enter_group(domain_e.thread_group):
            ns = time_op(with_expiry.size)
            rows.append(["+ expiry check (clock read)", ns, ns / base])
        with enter_group(domain_c.thread_group):
            ns = time_op(with_confine.size)
            rows.append(["+ confinement check (domain compare)", ns, ns / base])
        # deny paths
        buf, domain_r, revoked = proxy_with(world)
        with enter_group(world.server_domain.thread_group):
            revoked.revoke()

        def call_revoked():
            try:
                revoked.size()
            except SecurityException:
                pass

        _, domain_x, expired = proxy_with(world, lifetime=1.0)
        world.clock.advance(5.0)

        def call_expired():
            try:
                expired.size()
            except SecurityException:
                pass

        with enter_group(domain_r.thread_group):
            ns = time_op(call_revoked)
            rows.append(["denied: revoked proxy", ns, ns / base])
        with enter_group(domain_x.thread_group):
            ns = time_op(call_expired)
            rows.append(["denied: expired proxy", ns, ns / base])
        # bulk revocation
        import time as _time

        for n in (100, 10000):
            buf = Buffer(URN.parse("urn:resource:bench.org/b"), OWNER,
                         SecurityPolicy.allow_all(confine=False))
            for _ in range(n):
                d = world.agent_domain(Rights.all())
                buf.get_proxy(d.credentials, world.context(d))
            start = _time.perf_counter()
            with enter_group(world.server_domain.thread_group):
                buf.revoke_all()
            wall = _time.perf_counter() - start
            rows.append([f"revoke_all over {n} proxies", wall / n * 1e9, ""])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "C3",
        "revocation / expiry / confinement costs (section 5.5)",
        ["operation", "ns", "x live-call"],
        rows,
        seed=4000,
        notes=(
            "revocation takes effect at the very next invocation (a flag"
            " on the proxy), and bulk revocation is linear with a tiny"
            " constant — 'a resource manager can invalidate any of its"
            " currently active proxies at any time it wishes'."
        ),
    )

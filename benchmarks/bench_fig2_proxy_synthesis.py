"""F2 — proxy synthesis (Fig. 2's class machinery).

The paper generated proxy classes offline with "a simple lexical
processing tool"; here synthesis happens at runtime, once per resource
class, and instantiation once per (agent, resource).  Measured:

- class synthesis cost vs. interface size (cold cache);
- cached synthesis (the common path);
- proxy instantiation;
- the full authorization path ``get_proxy`` (policy decide + meter +
  instantiation).
"""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.core.policy import SecurityPolicy
from repro.core.proxy import _proxy_class_cache, synthesize_proxy_class
from repro.core.resource import ResourceImpl, export
from repro.core.access_protocol import AccessProtocol
from repro.credentials.rights import Rights
from repro.naming.urn import URN

from _common import BenchWorld, time_op, write_table

OWNER = URN.parse("urn:principal:bench.org/owner")


def make_resource_class(n_methods: int) -> type:
    """A resource class exporting ``n_methods`` trivial methods."""
    namespace = {}
    for i in range(n_methods):
        def method(self, _i=i):
            return _i

        method.__name__ = f"op{i}"
        namespace[f"op{i}"] = export(method)
    return type(f"Wide{n_methods}", (ResourceImpl, AccessProtocol), namespace)


@pytest.fixture(scope="module")
def world():
    return BenchWorld()


@pytest.mark.parametrize("n_methods", [2, 8, 32, 128])
def test_synthesis_cold(benchmark, n_methods):
    cls = make_resource_class(n_methods)

    def synthesize():
        _proxy_class_cache.pop(cls, None)
        return synthesize_proxy_class(cls)

    benchmark(synthesize)


def test_synthesis_cached(benchmark):
    synthesize_proxy_class(Buffer)
    benchmark(synthesize_proxy_class, Buffer)


def test_proxy_instantiation(benchmark, world):
    buf = Buffer(URN.parse("urn:resource:bench.org/b"), OWNER,
                 SecurityPolicy.allow_all(confine=False))
    domain = world.agent_domain(Rights.all())
    context = world.context(domain)
    benchmark(buf.get_proxy, domain.credentials, context)


def test_table_f2(benchmark, world):
    def build():
        rows = []
        for n in (2, 8, 32, 128):
            cls = make_resource_class(n)

            def cold(cls=cls):
                _proxy_class_cache.pop(cls, None)
                synthesize_proxy_class(cls)

            cold_ns = time_op(cold, target_seconds=0.02)
            synthesize_proxy_class(cls)
            cached_ns = time_op(lambda cls=cls: synthesize_proxy_class(cls),
                                target_seconds=0.02)
            resource = cls(URN.parse(f"urn:resource:bench.org/w{n}"), OWNER)
            resource.init_access_protocol(SecurityPolicy.allow_all(confine=False))
            domain = world.agent_domain(Rights.all())
            context = world.context(domain)
            get_proxy_ns = time_op(
                lambda: resource.get_proxy(domain.credentials, context),
                target_seconds=0.02,
            )
            rows.append([n, cold_ns, cached_ns, get_proxy_ns])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "F2",
        "proxy class synthesis and grant cost vs interface width (Fig. 2)",
        ["exported methods", "synth cold ns", "synth cached ns", "get_proxy ns"],
        rows,
        seed=4000,
        notes=(
            "synthesis is linear in interface width but paid once per class;"
            " get_proxy grows with width (policy decides per method) and is"
            " paid once per (agent, resource) — after that every call is the"
            " F5 fast path."
        ),
    )

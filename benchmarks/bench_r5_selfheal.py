"""R5 — self-healing under a hard mid-tour server crash.

One of four servers fail-stops (no restart) in the middle of a wave of
24 three-hop tours.  The self-healing plane — lease/heartbeat failure
detection, escrow checkpoints, load-aware re-homing — must keep the
wave honest:

- **completion**: >= 95% of tours still finish (the baseline row shows
  what happens without the plane: every agent dwelling on the dead
  server is simply gone);
- **conservation**: zero agents lost (no copy stranded ``running``, no
  agent without a terminal record) and zero double-completions, with
  the healed conservation residual exactly 0;
- **latency**: detection (crash -> confirmed dead) and relaunch
  (confirmed -> re-homed copy running) are reported per seed;
- **calm-path price**: enabling the plane on R2's calm workload (no
  faults, no hops) costs <= 3% of the simulator's deterministic work
  (kernel events processed) — the calm path seals and sends nothing;
  the heartbeat mesh's fixed-rate cost is priced separately, per
  heartbeat.

``python benchmarks/bench_r5_selfheal.py --quick`` runs the reduced CI
tripwire: one seed, crash wave only, hard assertions.

Replayed under three seeds; the table reports each run.
"""

from __future__ import annotations

import statistics
import sys
import time

from repro.agents.agent import register_trusted_agent_class
from repro.agents.itinerary import Itinerary
from repro.agents.patterns import ItineraryAgent
from repro.credentials.rights import Rights
from repro.obs.slo import healed_conservation_residual
from repro.server.testbed import Testbed
from repro.util.retry import RetryPolicy

from _common import write_table

SEEDS = (7501, 7502, 7503)
TOURS = 24
CRASH_AT = 6.0
HORIZON = 300.0


@register_trusted_agent_class
class R5Tourist(ItineraryAgent):
    dwell = 1.0

    def visit(self, stop):
        self.host.sleep(self.dwell)

    def finish(self):
        self.complete({"done": True})


def launch_wave(bed: Testbed):
    workers = bed.servers[1:]
    images = []
    for i in range(TOURS):
        agent = R5Tourist()
        # Staggered dwells spread the wave over every tour phase, so
        # the crash catches residents, in-flight transfers and
        # not-yet-arrived agents alike.
        agent.dwell = 0.5 + (i % 8) * 0.75
        stops = [workers[(i + j) % len(workers)].name for j in range(3)]
        agent.itinerary = Itinerary.tour(stops)
        images.append(bed.launch(agent, Rights.all()))
    return images


def account(bed: Testbed, images) -> dict:
    lost = doubled = completed = 0
    for image in images:
        statuses = []
        for server in bed.servers:
            statuses.extend(
                r.status for r in server.domain_db.records_of(image.name)
            )
        if statuses.count("running") or not statuses:
            lost += 1
        if statuses.count("completed") > 1:
            doubled += 1
        completed += statuses.count("completed") == 1
    return {
        "completed": completed,
        "lost": lost,
        "doubled": doubled,
        "residual": healed_conservation_residual(bed.servers)(),
    }


def run_wave(self_heal: bool, crash: bool, seed: int) -> dict:
    bed = Testbed(
        4,
        seed=seed,
        self_healing=self_heal,
        server_kwargs={
            "transfer_timeout": 5.0,
            "transfer_retry": RetryPolicy(
                attempts=4, base_delay=1.0, jitter=0.0
            ),
        },
    )
    home = bed.home
    victim = bed.servers[1]
    images = launch_wave(bed)
    if crash:
        bed.faults().crash(victim, at=CRASH_AT)  # hard: never restarts
    wall_start = time.perf_counter()
    bed.run(until=HORIZON, detect_deadlock=False)
    wall = time.perf_counter() - wall_start
    out = account(bed, images)
    out.update({
        "seed": seed,
        "wall": wall,
        "killed": victim.stats["agents_killed_crash"],
        "rehomed": 0,
        "detect_s": float("nan"),
        "relaunch_s": float("nan"),
    })
    if self_heal and crash:
        confirmed = [
            t for t, state, peer in home.membership.log
            if state == "confirmed-dead" and peer == victim.name
        ]
        if confirmed:
            out["detect_s"] = confirmed[0] - CRASH_AT
        log = home.recovery.rehome_log
        out["rehomed"] = len(log)
        if log:
            out["relaunch_s"] = statistics.mean(
                e["relaunched_at"] - e["confirmed_at"] for e in log
            )
    return out


def calm_overhead() -> dict:
    """Price the plane's calm path on R2's calm workload.

    Two figures, deliberately separated:

    - ``overhead_pct`` — plane on vs off on R2's calm workload exactly
      as R2 defines it (six home-hosted agents doing lookups, no
      faults, no hops).  The ratio compares the simulator's
      deterministic work metric, kernel events processed: a ~5ms wave's
      wall-clock is thread-handoff scheduler jitter on shared hardware
      (pair-to-pair ratios swing +-20%, measured), while the event
      count is exact and replayable under the fixed seed.  The calm
      plane must be near-free: admission escrow never fires (a
      checkpoint stored in the host's own failure domain protects
      nothing and is skipped), the refresh tick digest-skips parked
      residents, and a peerless detector never arms its ticks.
    - ``mesh_ms_per_beat`` — the *fixed-rate* price of the heartbeat
      mesh, from re-running the same wave on this bench's 4-server
      cluster: (on - off) wall divided by heartbeats sent.  Heartbeat
      cost scales with cluster size and elapsed time, not with agent
      work, so it is priced per heartbeat instead of being folded into
      a ratio against an otherwise idle workload.
    """
    from bench_r2_overload import run_wave as r2_calm

    solo = {
        self_heal: r2_calm(False, runaways=0, self_healing=self_heal)
        for self_heal in (False, True)
    }
    mesh = {True: 0.0, False: 0.0}
    beats = 0
    for _ in range(3):
        for self_heal in (False, True):
            m = r2_calm(
                False, runaways=0, servers=4, self_healing=self_heal
            )
            mesh[self_heal] += m["wall"]
            beats += m["heartbeats"]
    return {
        "on_events": solo[True]["events"],
        "off_events": solo[False]["events"],
        "on_ms": solo[True]["wall"] * 1e3,
        "off_ms": solo[False]["wall"] * 1e3,
        "overhead_pct": (
            solo[True]["events"] / max(solo[False]["events"], 1) - 1.0
        ) * 100.0,
        "mesh_ms_per_beat": (
            (mesh[True] - mesh[False]) * 1e3 / max(beats, 1)
        ),
    }


# -- pytest-benchmark entry points -------------------------------------------


def test_selfheal_crash_wave(benchmark):
    m = benchmark.pedantic(
        lambda: run_wave(True, True, SEEDS[0]), rounds=1, iterations=1
    )
    assert m["completed"] >= TOURS * 0.95
    assert m["lost"] == 0 and m["doubled"] == 0
    assert m["residual"] == 0
    assert m["rehomed"] >= 1  # the crash caught someone resident


def test_baseline_crash_wave(benchmark):
    m = benchmark.pedantic(
        lambda: run_wave(False, True, SEEDS[0]), rounds=1, iterations=1
    )
    # Without the plane the dead server's residents are simply gone.
    assert m["completed"] < TOURS


def test_table_r5(benchmark):
    def build():
        rows = []
        for seed in SEEDS:
            healed = run_wave(True, True, seed)
            assert healed["completed"] >= TOURS * 0.95, healed
            assert healed["lost"] == 0, healed
            assert healed["doubled"] == 0, healed
            assert healed["residual"] == 0, healed
            base = run_wave(False, True, seed)
            rows.append([
                "self-healing", seed,
                f"{healed['completed']}/{TOURS}",
                f"{healed['completed'] / TOURS:.0%}",
                healed["lost"], healed["doubled"],
                healed["killed"], healed["rehomed"],
                f"{healed['detect_s']:.1f}s",
                f"{healed['relaunch_s'] * 1e3:.0f}ms",
                "yes" if healed["residual"] == 0 else "NO",
            ])
            rows.append([
                "baseline (no plane)", seed,
                f"{base['completed']}/{TOURS}",
                f"{base['completed'] / TOURS:.0%}",
                base["lost"], base["doubled"],
                base["killed"], 0, "-", "-",
                "yes" if base["residual"] == 0 else "NO",
            ])
        calm = calm_overhead()
        # The acceptance bar: enabling the plane on R2's calm workload
        # must cost <= 3% — with escrow skipped for home-domain
        # residents, the refresh tick digest-skipping parked agents,
        # and a peerless detector never arming its ticks, the calm
        # path seals nothing and sends nothing.
        assert calm["overhead_pct"] <= 3.0, calm
        rows.append([
            "calm overhead (R2 calm workload)", "",
            f"{calm['off_events']} ev off", f"{calm['on_events']} ev on",
            "", "", "", "", "", f"{calm['overhead_pct']:+.1f}%", "",
        ])
        rows.append([
            "heartbeat mesh price (4 servers, fixed-rate)", "",
            "", "", "", "", "", "", "",
            f"{calm['mesh_ms_per_beat']:.2f}ms/beat", "",
        ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "R5",
        "self-healing: hard crash of 1-of-4 servers mid-tour",
        ["config", "seed", "tours", "rate", "lost", "doubled", "killed",
         "rehomed", "detect", "relaunch", "conserved"],
        rows,
        seed=list(SEEDS),
        notes=(
            "24 three-hop tours; one worker fail-stops at t=6s and never"
            " returns.  'killed' counts residents that died with the"
            " crash; every one must be re-homed (escrow checkpoint ->"
            " load-aware survivor) and complete exactly once: lost ="
            " agents with no terminal record or a copy still marked"
            " running, doubled = agents completing twice — both must be"
            " zero, with the healed conservation residual 0.  detect ="
            " crash to confirmed-dead (lease/heartbeat walk), relaunch ="
            " confirmed to the re-homed copy running.  The baseline rows"
            " run the identical wave without the plane.  The last rows"
            " price the calm path: plane on vs off on R2's calm"
            " workload, compared on kernel events processed — the"
            " simulator's deterministic work metric; wall ratios of a"
            " ~5ms wave are scheduler jitter (acceptance: <= 3% —"
            " escrow is skipped for home-domain residents, the refresh"
            " tick digest-skips parked agents, and a peerless detector"
            " never arms, so a calm server seals and sends nothing) —"
            " and the heartbeat mesh's fixed-rate cost per beat, which"
            " scales with cluster size and time rather than with agent"
            " work."
        ),
    )


# -- the CI tripwire ----------------------------------------------------------


def run_quick() -> int:
    failures: list[str] = []
    m = run_wave(True, True, SEEDS[0])
    checks = (
        (m["completed"] >= TOURS * 0.95,
         f"completion {m['completed']}/{TOURS} (>= 95% required)"),
        (m["lost"] == 0, f"agents lost: {m['lost']}"),
        (m["doubled"] == 0, f"double-completions: {m['doubled']}"),
        (m["residual"] == 0, f"conservation residual: {m['residual']}"),
        (m["rehomed"] >= 1,
         f"re-homed residents: {m['rehomed']} (>= 1, else vacuous)"),
        (m["detect_s"] == m["detect_s"] and m["detect_s"] < 30.0,
         f"detection latency: {m['detect_s']:.1f}s (< 30s)"),
    )
    for ok, message in checks:
        print(f"  {'ok' if ok else 'FAIL'}: {message}")
        if not ok:
            failures.append(message)
    if failures:
        print("\nR5 smoke FAILED")
        return 1
    print("\nR5 smoke OK")
    return 0


def main(argv: list[str]) -> int:
    if "--quick" in argv:
        return run_quick()
    import pytest

    return pytest.main(
        ["-q", __file__, "--benchmark-only", "-p", "no:randomly"]
    )


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

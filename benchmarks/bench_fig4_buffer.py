"""F4 — the bounded buffer resource (Fig. 4).

Throughput of the paper's running example under protection:

- direct-mode put/get pairs, direct vs via proxy (pure overhead on a
  stateful resource);
- the simulated blocking buffer: a producer/consumer pair of agents
  through asymmetric proxies — how many items/sec of *wall-clock* time
  the whole stack (kernel, threads, proxies) sustains.
"""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group
from repro.server.testbed import Testbed

from _common import BenchWorld, time_op, write_table

OWNER = URN.parse("urn:principal:bench.org/owner")
N_ITEMS = 300


def direct_buffer():
    return Buffer(URN.parse("urn:resource:bench.org/b"), OWNER,
                  SecurityPolicy.allow_all(confine=False))


@pytest.fixture(scope="module")
def world():
    return BenchWorld()


def test_put_get_direct(benchmark):
    buf = direct_buffer()

    def cycle():
        buf.put(1)
        buf.get()

    benchmark(cycle)


def test_put_get_via_proxy(benchmark, world):
    buf = direct_buffer()
    domain = world.agent_domain(Rights.all())
    proxy = buf.get_proxy(domain.credentials, world.context(domain))

    def cycle():
        proxy.put(1)
        proxy.get()

    with enter_group(domain.thread_group):
        benchmark(cycle)


@register_trusted_agent_class
class BenchProducer(Agent):
    def run(self):
        pipe = self.host.get_resource("urn:resource:site0.net/pipe")
        for i in range(N_ITEMS):
            pipe.put(i)
        self.complete()


@register_trusted_agent_class
class BenchConsumer(Agent):
    def run(self):
        pipe = self.host.get_resource("urn:resource:site0.net/pipe")
        for _ in range(N_ITEMS):
            pipe.get()
        self.complete()


def producer_consumer_run() -> float:
    bed = Testbed(1)
    policy = SecurityPolicy(
        rules=[
            PolicyRule("agent", "*producer*", Rights.of("Buffer.put")),
            PolicyRule("agent", "*consumer*", Rights.of("Buffer.get")),
        ]
    )
    pipe = Buffer(URN.parse("urn:resource:site0.net/pipe"), OWNER, policy,
                  capacity=8, kernel=bed.kernel)
    bed.home.install_resource(pipe)
    bed.launch(BenchProducer(), Rights.all(), agent_local=f"producer-{id(bed)}")
    bed.launch(BenchConsumer(), Rights.all(), agent_local=f"consumer-{id(bed)}")
    bed.run()
    return bed.clock.now()


def test_producer_consumer_sim(benchmark):
    benchmark.pedantic(producer_consumer_run, rounds=3, iterations=1)


def test_table_f4(benchmark, world):
    import time

    def build():
        buf = direct_buffer()
        domain = world.agent_domain(Rights.all())
        proxy = buf.get_proxy(domain.credentials, world.context(domain))

        def direct_cycle():
            buf.put(1)
            buf.get()

        def proxy_cycle():
            proxy.put(1)
            proxy.get()

        with enter_group(domain.thread_group):
            direct_ns = time_op(direct_cycle)
            proxy_ns = time_op(proxy_cycle)
        start = time.perf_counter()
        producer_consumer_run()
        sim_wall = time.perf_counter() - start
        return [
            ["put+get direct", direct_ns, 1e9 / direct_ns],
            ["put+get via proxy", proxy_ns, 1e9 / proxy_ns],
            [
                f"producer/consumer agents ({N_ITEMS} items, full stack)",
                sim_wall / N_ITEMS * 1e9,
                N_ITEMS / sim_wall,
            ],
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "F4",
        "bounded buffer throughput under protection (Fig. 4)",
        ["configuration", "ns/item", "items/sec (wall)"],
        rows,
        seed=4000,
        notes=(
            "proxy overhead on a stateful resource is a constant few hundred"
            " ns; the full-stack row includes kernel, simulated threads and"
            " blocking hand-off, not just the proxy."
        ),
    )

"""Shared helpers for the benchmark harness.

Every bench regenerates one experiment from DESIGN.md's index and writes
its table to ``benchmarks/results/<exp>.txt`` (also echoed to stdout), so
``pytest benchmarks/ --benchmark-only`` reproduces both the rigorous
per-operation timings (pytest-benchmark) and the paper-shaped comparison
tables that EXPERIMENTS.md records.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import time
from typing import Callable, Iterable

from repro.core.access_protocol import BindingContext
from repro.credentials.credentials import Credentials
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.rights import Rights
from repro.crypto.cert import CertificateAuthority
from repro.crypto.keys import KeyPair
from repro.naming.urn import URN
from repro.sandbox.domain import ProtectionDomain
from repro.sandbox.threadgroup import ThreadGroup
from repro.util.clock import VirtualClock
from repro.util.rng import make_rng

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


class BenchWorld:
    """A minimal PKI + domain factory for direct-mode micro-benchmarks."""

    def __init__(self, seed: int = 4000) -> None:
        self.clock = VirtualClock()
        self.ca = CertificateAuthority("bench-ca", make_rng(seed, "ca"), self.clock)
        self.owner = URN.parse("urn:principal:bench.org/owner")
        self.owner_keys = KeyPair.generate(make_rng(seed, "owner"), bits=512)
        self.owner_cert = self.ca.issue(str(self.owner), self.owner_keys.public)
        self.server_domain = ProtectionDomain(
            "server", "server", ThreadGroup("server-group")
        )
        self._counter = 0

    def credentials(self, rights: Rights, lifetime: float = 1e9) -> DelegatedCredentials:
        self._counter += 1
        cred = Credentials.issue(
            agent=URN.parse(f"urn:agent:bench.org/a{self._counter}"),
            owner=self.owner,
            creator=self.owner,
            owner_keys=self.owner_keys,
            owner_certificate=self.owner_cert,
            rights=rights,
            now=self.clock.now(),
            lifetime=lifetime,
        )
        return DelegatedCredentials.wrap(cred)

    def agent_domain(self, rights: Rights) -> ProtectionDomain:
        creds = self.credentials(rights)
        self._counter += 1
        return ProtectionDomain(
            f"dom-{self._counter}",
            "agent",
            ThreadGroup(f"group-{self._counter}"),
            credentials=creds,
        )

    def context(self, domain: ProtectionDomain) -> BindingContext:
        return BindingContext(
            domain_id=domain.domain_id, clock=self.clock, server_domain_id="server"
        )


def time_op(fn: Callable[[], object], *, target_seconds: float = 0.05,
            repeat: int | None = None) -> float:
    """Nanoseconds per call of ``fn`` (median of 3 self-calibrated batches)."""
    if repeat is None:
        # Calibrate the batch size so one batch takes ~target_seconds.
        n, elapsed = 1, 0.0
        while True:
            start = time.perf_counter()
            for _ in range(n):
                fn()
            elapsed = time.perf_counter() - start
            if elapsed >= target_seconds / 10 or n >= 1_000_000:
                break
            n *= 4
        repeat = max(1, min(1_000_000, int(n * target_seconds / max(elapsed, 1e-9))))
    samples = []
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(repeat):
            fn()
        samples.append((time.perf_counter() - start) / repeat)
    samples.sort()
    return samples[1] * 1e9


def write_table(
    exp_id: str,
    title: str,
    headers: list[str],
    rows: Iterable[Iterable[object]],
    notes: str = "",
    *,
    seed: object = None,
) -> str:
    """Format, print and persist one experiment table.

    Besides the human-readable ``results/<exp>.txt``, every table also
    lands as machine-readable ``results/BENCH_<exp>.json`` — headline
    metric/value/unit (derived from the first numeric column of the
    first data row; the header strings double as units here), the
    driving ``seed``, and the full raw table for downstream tooling.
    """
    raw_rows = [list(row) for row in rows]
    _write_json(exp_id, title, headers, raw_rows, notes, seed)
    rows = [[_fmt(cell) for cell in row] for row in raw_rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [f"== {exp_id}: {title} =="]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    if notes:
        lines.append(notes)
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(text)
    print("\n" + text)
    return text


def _write_json(
    exp_id: str,
    title: str,
    headers: list[str],
    raw_rows: list[list[object]],
    notes: str,
    seed: object,
) -> None:
    metric, value, unit = None, None, None
    if raw_rows:
        first = raw_rows[0]
        for j, cell in enumerate(first):
            if isinstance(cell, bool) or not isinstance(cell, (int, float)):
                continue
            unit = headers[j] if j < len(headers) else None
            label = next((c for c in first if isinstance(c, str)), None)
            metric = f"{label}: {unit}" if label else unit
            value = cell
            break
    payload = {
        "exp_id": exp_id,
        "title": title,
        "metric": metric,
        "value": value,
        "unit": unit,
        "seed": seed,
        "headers": headers,
        "rows": raw_rows,
        "notes": notes,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"BENCH_{exp_id}.json").write_text(
        json.dumps(payload, indent=2, default=str) + "\n"
    )


@contextlib.contextmanager
def tracing_to(path_base: pathlib.Path | str):
    """Install a wall-clock tracer for the block; export on the way out.

    Backs ``pytest benchmarks/ --trace-dir DIR`` (see conftest): any
    instrumented code path the bench drives lands in
    ``<path_base>.json`` (Chrome trace-event) and ``<path_base>.jsonl``.
    Nothing is written when the block produced no spans.
    """
    from repro.obs import runtime as _obs
    from repro.obs.trace import Tracer

    tracer = Tracer(service="bench")
    _obs.install(tracer=tracer)
    try:
        yield tracer
    finally:
        _obs.uninstall()
        if tracer.finished or tracer.open_spans():
            tracer.export_chrome(f"{path_base}.json")
            tracer.export_jsonl(f"{path_base}.jsonl")


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)

"""C4 — secure-channel costs and attack detection (section 2).

- wall-clock cost of the crypto on the transfer path: canonical
  serialization, AEAD seal/open across payload sizes, the RSA handshake;
- plain vs secure request/response wall cost at the endpoint level;
- detection table: each adversary class against the secure channel —
  every active attack must be *detected* (and counted), every passive
  attack must yield no plaintext.
"""

from __future__ import annotations

import pytest

from repro.crypto.cipher import NONCE_SIZE, open_payload, seal_payload
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair
from repro.net.adversary import Eavesdropper, Replayer, Tamperer
from repro.util.rng import make_rng
from repro.util.serialization import decode, encode

from _common import time_op, write_table

KEY = sha256(b"bench session key")
NONCE = b"n" * NONCE_SIZE


@pytest.mark.parametrize("size", [128, 4096, 65536])
def test_seal(benchmark, size):
    payload = b"x" * size
    benchmark(seal_payload, KEY, NONCE, payload)


@pytest.mark.parametrize("size", [128, 4096, 65536])
def test_open(benchmark, size):
    sealed = seal_payload(KEY, NONCE, b"x" * size)
    benchmark(open_payload, KEY, sealed)


def test_rsa_handshake_sign(benchmark):
    keys = KeyPair.generate(make_rng(1, "kp"), bits=512)
    digest = sha256(b"transcript")
    benchmark(keys.private.sign, digest)


def test_rsa_handshake_verify(benchmark):
    keys = KeyPair.generate(make_rng(1, "kp"), bits=512)
    digest = sha256(b"transcript")
    sig = keys.private.sign(digest)
    benchmark(keys.public.verify, digest, sig)


@pytest.mark.parametrize("bits", [384, 512, 1024])
def test_rsa_sign_vs_key_size(benchmark, bits):
    """How the handshake cost scales with key strength."""
    keys = KeyPair.generate(make_rng(1, f"kp{bits}"), bits=bits)
    digest = sha256(b"transcript")
    benchmark(keys.private.sign, digest)


def _attack_world(adversary):
    """One secure exchange with an adversary on the forward link."""
    from repro.crypto.cert import CertificateAuthority
    from repro.net.network import Network
    from repro.net.secure_channel import SecureHost
    from repro.net.transport import Endpoint
    from repro.sim.kernel import Kernel
    from repro.sim.threads import SimThread

    kernel = Kernel()
    network = Network(kernel, seed=1)
    ca = CertificateAuthority("ca", make_rng(1, "ca"), kernel.clock)
    hosts = {}
    for name in ("alice", "bob"):
        network.add_node(name)
        ep = Endpoint(network, name)
        keys = KeyPair.generate(make_rng(2, name), bits=512)
        hosts[name] = SecureHost(
            endpoint=ep, name=name, keys=keys,
            certificate=ca.issue(name, keys.public), trust_anchor=ca,
            clock=kernel.clock, rng=make_rng(3, name),
        )
    fwd, _rev = network.connect("alice", "bob")
    delivered = []
    hosts["bob"].bind_app("data", lambda peer, body: delivered.append(body))

    def client():
        channel = hosts["alice"].connect("bob")
        if adversary is not None:
            fwd.add_tap(adversary)  # attack the data plane only
        channel.send("data", b"credit-card=4242424242424242")
        channel.send("data", b"second message")

    SimThread(kernel, client, "client").start()
    kernel.run(detect_deadlock=False)
    return hosts["bob"], delivered


def test_table_c4(benchmark):
    def build():
        rows = []
        # crypto micro-costs
        image_like = {"state": {"k": list(range(50))}, "code": "x" * 2000}
        blob = encode(image_like)
        rows.append(["canonical encode (2KB image)", time_op(lambda: encode(image_like)), ""])
        rows.append(["canonical decode (2KB image)", time_op(lambda: decode(blob)), ""])
        sealed = seal_payload(KEY, NONCE, blob)
        rows.append(["AEAD seal (2KB)", time_op(lambda: seal_payload(KEY, NONCE, blob)), ""])
        rows.append(["AEAD open (2KB)", time_op(lambda: open_payload(KEY, sealed)), ""])
        keys = KeyPair.generate(make_rng(1, "kp"), bits=512)
        digest = sha256(b"t")
        sig = keys.private.sign(digest)
        rows.append(["RSA-512 sign (per handshake flight)",
                     time_op(lambda: keys.private.sign(digest)), ""])
        rows.append(["RSA-512 verify",
                     time_op(lambda: keys.public.verify(digest, sig)), ""])
        # attack detection
        bob, delivered = _attack_world(None)
        rows.append(["baseline: 2 messages sent", "", f"{len(delivered)} delivered"])
        spy = Eavesdropper()
        bob, delivered = _attack_world(spy)
        leaked = spy.saw_substring(b"4242424242424242")
        rows.append(["eavesdropper", "",
                     f"{len(delivered)} delivered, plaintext leaked: {leaked}"])
        bob, delivered = _attack_world(Tamperer(make_rng(4, "t"), rate=1.0))
        rows.append(["tamperer (all frames)", "",
                     f"{len(delivered)} delivered,"
                     f" {bob.stats['rejected_tampered']} rejected"])
        bob, delivered = _attack_world(Replayer(copies=2))
        rows.append(["replayer (x2 every frame)", "",
                     f"{len(delivered)} delivered,"
                     f" {bob.stats['rejected_replayed']} rejected"])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "C4",
        "secure transfer: crypto costs and attack detection (section 2)",
        ["operation / attack", "ns", "outcome"],
        rows,
        seed=1,
        notes=(
            "integrity: tampered frames never deliver; replay: duplicates"
            " rejected by sequence check; privacy: eavesdroppers see no"
            " plaintext.  RSA dominates channel *setup*; AEAD dominates the"
            " per-message path and scales with payload size."
        ),
    )

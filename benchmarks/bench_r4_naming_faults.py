"""R4 — directory lookup availability under replica faults (replicated NS).

The replicated naming layer (quorum directory, hinted handoff,
anti-entropy — PR 8) exists so "where is agent X" keeps answering while
directory nodes crash or the network degrades.  This experiment
quantifies it on the N=3 / W=2 / R=2 configuration:

- a continuous register/lookup/relocate workload against one shard's
  names while a fault window ``[30 s, 60 s)`` hits that shard:
  (a) a single-replica crash (restart at 60 s), and
  (b) a 30%-per-frame loss burst on every server link of two of the
  three replicas — a majority of the shard behind a partition you can
  only occasionally shout across, leaving quorum reads to scraps and
  the one clean minority replica;
- **lookup availability** inside the window — a lookup counts as
  available if it returns a record at all, fresh *or* stale-but-flagged
  (the degraded-read contract) — with a >= 99% target;
- the conservation oracle after heal + anti-entropy: every registration
  the client committed must be resolvable, fully replicated (3/3), and
  the replica groups divergence-free.

Replayed under three seeds; the table reports each run.
"""

from __future__ import annotations

from repro.errors import NetworkError, ReproError, UnknownNameError
from repro.naming.urn import URN
from repro.server.testbed import Testbed
from repro.sim.threads import SimThread
from repro.util.retry import RetryPolicy

from _common import write_table

SEEDS = (7401, 7402, 7403)
WINDOW = (30.0, 60.0)
HORIZON = 150.0


def shard_names(ring, shard, count):
    out, i = [], 0
    while len(out) < count:
        name = URN.parse(f"urn:agent:r4.net/a{i}")
        if ring.shard_for(name) == shard:
            out.append(name)
        i += 1
    return out


def run_scenario(fault: str, seed: int) -> dict:
    bed = Testbed(
        2,
        seed=seed,
        replicated_name_service=True,
        ns_anti_entropy=5.0,
        ns_timeout=2.0,
        # Loss-window tuning: keep trying lossy replicas (generous breaker
        # budget, fast half-open) and retry a round further than default.
        ns_retry=RetryPolicy(attempts=4, base_delay=0.2, max_delay=1.0),
        ns_breaker_threshold=8,
        ns_breaker_reset=5.0,
    )
    ring = bed.ns_ring
    shard = ring.shard_ids()[0]
    replicas = ring.replicas(shard)
    if fault == "crash":
        bed.faults().crash(
            bed.ns_host(replicas[0]), WINDOW[0], restart_at=WINDOW[1]
        )
    elif fault == "loss30":
        for node in replicas[:2]:  # a majority of the shard goes lossy
            for server in bed.servers:
                bed.faults().loss_burst(
                    server.name, node,
                    at=WINDOW[0], duration=WINDOW[1] - WINDOW[0],
                    loss_rate=0.3,
                )
    else:  # pragma: no cover - config error
        raise ValueError(fault)

    # Distinct clients (distinct breaker state): write-side refusals must
    # not poison the read path whose availability we are measuring.
    client = bed.servers[1].name_service
    reader_client = bed.home.name_service
    pool = shard_names(ring, shard, 40)
    committed: list[tuple[URN, str]] = []
    counts = {
        "lookups": 0, "lookups_window": 0, "ok_window": 0,
        "stale_window": 0, "failed_window": 0,
        "registers_refused": 0, "relocates_refused": 0,
    }

    def in_window() -> bool:
        return WINDOW[0] <= bed.clock.now() < WINDOW[1]

    def writer():
        thread = bed.kernel.current_thread()
        for i, name in enumerate(pool):
            try:
                token = client.register(name, bed.home.name)
                committed.append((name, token))
            except (NetworkError, ReproError):
                counts["registers_refused"] += 1
            if committed and i % 4 == 3:
                target, token = committed[(i // 4) % len(committed)]
                try:
                    client.relocate(target, token, bed.servers[1].name)
                except (NetworkError, UnknownNameError, ReproError):
                    counts["relocates_refused"] += 1
            thread.sleep(2.0)

    def reader():
        thread = bed.kernel.current_thread()
        thread.sleep(3.0)  # let the first registration land
        while bed.clock.now() < HORIZON - 30.0:
            if committed:
                name, _ = committed[counts["lookups"] % len(committed)]
                windowed = in_window()
                counts["lookups"] += 1
                counts["lookups_window"] += windowed
                try:
                    record = reader_client.lookup(name)
                    if windowed:
                        counts["ok_window"] += 1
                        counts["stale_window"] += bool(
                            record.attributes.get("ns.stale")
                        )
                except (NetworkError, ReproError):
                    if windowed:
                        counts["failed_window"] += 1
            thread.sleep(0.5)

    SimThread(bed.kernel, writer, "r4-writer").start()
    for i in range(3):  # concurrent readers: more in-window samples
        SimThread(bed.kernel, reader, f"r4-reader{i}").start()
    bed.run(until=HORIZON)

    # Heal is long past; force one more explicit anti-entropy round so the
    # conservation claim is "after heal + one repair round", not "after
    # whenever the sweep timers happened to fire".
    def final_repair():
        for host in bed.ns_hosts.values():
            host.anti_entropy_round()

    SimThread(bed.kernel, final_repair, "r4-repair").start()
    bed.run(until=HORIZON + 30.0)

    conserved = all(
        bed.name_service.contains(name)
        and bed.name_service.replicas_holding(name) == 3
        for name, _ in committed
    )
    divergences = len(bed.name_service.divergences())
    scrape = bed.scrape()
    hints = sum(
        v for k, v in scrape.items()
        if k.startswith("ns_replica.hints_delivered")
    )
    repaired = sum(
        v for k, v in scrape.items()
        if k.startswith("ns_replica.repair_records_in")
    )
    window_total = counts["lookups_window"]
    availability = (
        counts["ok_window"] / window_total if window_total else float("nan")
    )
    return {
        "fault": fault,
        "seed": seed,
        "availability": availability,
        "window_lookups": window_total,
        "stale": counts["stale_window"],
        "failed": counts["failed_window"],
        "committed": len(committed),
        "refused": counts["registers_refused"],
        "relocates_refused": counts["relocates_refused"],
        "conserved": conserved,
        "divergences": divergences,
        "hints": hints,
        "repaired": repaired,
    }


def test_crash_window_availability(benchmark):
    m = benchmark.pedantic(
        lambda: run_scenario("crash", SEEDS[0]), rounds=1, iterations=1
    )
    assert m["availability"] >= 0.99
    assert m["conserved"] and m["divergences"] == 0


def test_loss_window_availability(benchmark):
    m = benchmark.pedantic(
        lambda: run_scenario("loss30", SEEDS[0]), rounds=1, iterations=1
    )
    assert m["availability"] >= 0.99
    assert m["conserved"] and m["divergences"] == 0


def test_table_r4(benchmark):
    def build():
        rows = []
        for fault, label in (("crash", "replica crash"),
                             ("loss30", "30% loss burst")):
            for seed in SEEDS:
                m = run_scenario(fault, seed)
                assert m["availability"] >= 0.99, m
                assert m["conserved"], m
                assert m["divergences"] == 0, m
                rows.append([
                    label,
                    seed,
                    f"{m['availability']:.1%}",
                    f"{m['window_lookups']}",
                    m["stale"],
                    m["failed"],
                    f"{m['committed']}/40",
                    m["refused"],
                    m["hints"],
                    m["repaired"],
                    "yes" if m["conserved"] and m["divergences"] == 0
                    else "NO",
                ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "R4",
        "directory availability under replica faults (N=3 W=2 R=2)",
        ["fault", "seed", "avail", "lookups", "stale", "failed",
         "committed", "refused", "hints", "repaired", "conserved"],
        rows,
        seed=list(SEEDS),
        notes=(
            "availability = in-window lookups answered (fresh or"
            " stale-but-flagged) / attempted, fault window 30-60s of a"
            " 150s run, one shard targeted.  'committed' counts"
            " registrations the client quorum-acked; every one must"
            " resolve with 3/3 replicas holding it after heal plus one"
            " explicit anti-entropy round (conserved), with zero"
            " divergent replica groups.  Hints/repaired show which"
            " repair path did the catching up."
        ),
    )

"""A2 — ablation: what the sandbox costs at load time.

The Java-model analogue is pure load-time work (nothing on the call
path): AST verification scales with shipped code size; namespace
construction is a builtins copy; the impostor scan is a top-level-name
set intersection.  This bench justifies accepting that work per arrival
rather than per call.
"""

from __future__ import annotations

import pytest

from repro.sandbox.namespace import AgentNamespace
from repro.sandbox.verifier import verify_source

from _common import time_op, write_table


def agent_source(n_methods: int) -> str:
    lines = ["class Visitor(Agent):"]
    for i in range(n_methods):
        lines.append(f"    def step{i}(self, x):")
        lines.append(f"        total = x + {i}")
        lines.append("        for j in range(3):")
        lines.append("            total = total + j * 2")
        lines.append("        return total")
    lines.append("    def run(self):")
    lines.append("        self.complete()")
    return "\n".join(lines) + "\n"


class AgentStub:
    def complete(self):
        pass


@pytest.mark.parametrize("n_methods", [1, 20, 200])
def test_verify_source(benchmark, n_methods):
    source = agent_source(n_methods)
    benchmark(verify_source, source)


def test_namespace_construction(benchmark):
    benchmark(lambda: AgentNamespace("a", trusted={"Agent": AgentStub}))


def test_load_including_verify(benchmark):
    source = agent_source(20)
    counter = iter(range(10**9))

    def load():
        ns = AgentNamespace(f"a{next(counter)}", trusted={"Agent": AgentStub})
        ns.load(source)

    benchmark(load)


def test_table_a2(benchmark):
    def build():
        rows = []
        for n in (1, 20, 100, 200):
            source = agent_source(n)
            size = len(source)
            verify_ns = time_op(lambda s=source: verify_source(s),
                                target_seconds=0.03)
            counter = iter(range(10**9))

            def load(s=source):
                ns = AgentNamespace(f"a{next(counter)}",
                                    trusted={"Agent": AgentStub})
                ns.load(s)

            load_ns = time_op(load, target_seconds=0.03)
            rows.append([size, verify_ns / 1e3, load_ns / 1e3,
                         verify_ns / load_ns * 100])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "A2",
        "ablation: sandbox load-time cost vs shipped code size",
        ["source bytes", "verify µs", "verify+namespace+exec µs", "verify %"],
        rows,
        notes=(
            "verification is linear in code size and a moderate fraction of"
            " total load cost; all of it is paid once per arrival — the"
            " call path (F5) carries none of it."
        ),
    )

"""C1 — RPC vs REV vs mobile agent (the section-1 motivation).

Reproduces the claim from Harrison et al. that the paper's introduction
leans on: moving processing to the data "reduces communication between
the client and the server".  The sweep varies server count, selectivity
(how much data matches) and record size, and reports bytes on the wire,
bytes crossing the client's links, and makespan for all three paradigms
on identical data.

Expected shape: RPC wins when results are tiny (nothing to save); agents
win client-link bytes decisively as data grows; REV sits between (small
results but client-driven round trips).
"""

from __future__ import annotations

import pytest

import numpy as np

from repro.paradigms.workload import STRATEGIES, build_search_world, run_search

from _common import write_table

SMALL = dict(records_per_server=40, selectivity=0.05, blob_size=8)
HEAVY = dict(records_per_server=150, selectivity=0.4, blob_size=400)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_search_heavy(benchmark, strategy):
    benchmark.pedantic(
        lambda: run_search(strategy, n_servers=4, seed=5, **HEAVY),
        rounds=2,
        iterations=1,
    )


def test_table_c1(benchmark):
    def build():
        rows = []
        for label, params in (("light", SMALL), ("heavy", HEAVY)):
            for n_servers in (2, 4, 8):
                results = {}
                for strategy in STRATEGIES:
                    world = build_search_world(
                        n_servers=n_servers, seed=5, **params
                    )
                    results[strategy] = run_search(strategy, world)
                byte_winner = min(results.values(), key=lambda r: r.total_bytes)
                client_winner = min(
                    results.values(), key=lambda r: r.client_link_bytes
                )
                for strategy in STRATEGIES:
                    r = results[strategy]
                    rows.append([
                        label,
                        n_servers,
                        strategy,
                        r.total_bytes,
                        r.client_link_bytes,
                        round(r.makespan, 4),
                        "« total" if r is byte_winner else
                        ("« client" if r is client_winner else ""),
                    ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "C1",
        "paradigm comparison: RPC vs REV vs mobile agent (section 1)",
        ["workload", "servers", "strategy", "total bytes", "client bytes",
         "makespan s", "winner"],
        rows,
        seed=5,
        notes=(
            "light workload (tiny results): RPC's total bytes win — shipping"
            " code costs more than asking.  heavy workload: the agent"
            " minimizes client-link bytes (one departure + one report),"
            " reproducing the Harrison et al. advantage the paper cites."
        ),
    )


def test_table_c1b_crossover(benchmark):
    """Locate the RPC↔agent crossover in selectivity, by interpolation.

    For fixed topology and record size, sweep the fraction of matching
    records and find where shipping the agent starts paying for itself in
    *total* bytes (it always wins client-link bytes once data is nontrivial).
    """

    SELECTIVITIES = [0.02, 0.05, 0.1, 0.2, 0.3, 0.5]

    def build():
        rows = []
        rpc_bytes, agent_bytes = [], []
        for selectivity in SELECTIVITIES:
            results = {}
            for strategy in ("rpc", "agent"):
                world = build_search_world(
                    n_servers=4, records_per_server=60,
                    selectivity=selectivity, blob_size=200, seed=5,
                )
                results[strategy] = run_search(strategy, world)
            rpc_bytes.append(results["rpc"].total_bytes)
            agent_bytes.append(results["agent"].total_bytes)
            rows.append([
                selectivity,
                results["rpc"].total_bytes,
                results["agent"].total_bytes,
                "agent" if agent_bytes[-1] < rpc_bytes[-1] else "rpc",
            ])
        # Interpolate the sign change of (rpc - agent) over selectivity.
        xs = np.array(SELECTIVITIES)
        diff = np.array(rpc_bytes, dtype=float) - np.array(agent_bytes, dtype=float)
        crossover = None
        signs = np.sign(diff)
        flips = np.where(np.diff(signs) != 0)[0]
        if flips.size:
            i = int(flips[0])
            # linear interpolation between the two bracketing points
            x0, x1 = xs[i], xs[i + 1]
            y0, y1 = diff[i], diff[i + 1]
            crossover = float(x0 - y0 * (x1 - x0) / (y1 - y0))
        return rows, crossover

    rows, crossover = benchmark.pedantic(build, rounds=1, iterations=1)
    where = (
        f"crossover at selectivity ~= {crossover:.3f}"
        if crossover is not None
        else "no crossover inside the sweep"
    )
    write_table(
        "C1b",
        "RPC vs agent total bytes across selectivity (4 servers, 200B blobs)",
        ["selectivity", "rpc bytes", "agent bytes", "total-bytes winner"],
        rows,
        seed=5,
        notes=(
            f"{where}; below it, asking is cheaper than travelling — the"
            " quantitative form of the paper's qualitative trade-off."
        ),
    )

"""R2 — goodput under overload, with and without supervision.

The supervision layer (leases, bulkheads, watchdog kills) exists so that
misbehaving agents degrade a corner of a server instead of wedging all
of it.  This experiment quantifies that claim on a shared slot-pool
resource:

- a wave of well-behaved agents runs short ``lookup`` calls while a
  pack of runaways hammers the same resource with slot-hogging
  ``audit_scan`` calls;
- **unsupervised**, every call queues FIFO on the pool, so lookups
  starve behind 30-second scans;
- **supervised**, the bulkhead sheds over-cap calls fast (agents retry
  after a short backoff) and the watchdog strikes out each runaway after
  three blown deadlines, killing it and revoking its grants — after
  which the well-behaved wave runs at full speed.

Goodput is the fraction of lookups completed inside a fixed virtual
horizon.  The last row prices the supervision fast path on a calm
workload (no runaways): the guard's begin/finish bookkeeping should be
within noise of the unsupervised proxy ("you only pay when it hurts").
"""

from __future__ import annotations

import time

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.core.access_protocol import AccessProtocol
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.core.resource import ResourceImpl, export
from repro.credentials.rights import Rights
from repro.errors import SupervisionError
from repro.naming.urn import URN
from repro.server.supervisor import SupervisorConfig
from repro.server.testbed import Testbed
from repro.sim.sync import Semaphore

from _common import write_table

SEED = 7200
CATALOG = "urn:resource:site0.net/catalog"
OWNER = URN.parse("urn:principal:site0.net/o")

SLOTS = 4           # catalog worker pool width (= supervised bulkhead cap)
GOOD = 6            # well-behaved agents
BAD = 6             # runaway agents
LOOKUPS = 15        # lookups each good agent wants
SCANS = 5           # scans each runaway attempts (bounds the baseline run)
LOOKUP_HOLD = 0.1   # virtual seconds a lookup occupies a slot
SCAN_HOLD = 30.0    # virtual seconds a scan occupies a slot
HORIZON = 120.0     # goodput window (virtual seconds)

RESULTS: list[float] = []  # completion times of good lookups, per run


class Catalog(ResourceImpl, AccessProtocol):
    """A query service with a fixed worker pool.

    ``lookup`` holds a pool slot briefly; ``audit_scan`` holds one for
    :data:`SCAN_HOLD` virtual seconds.  Unsupervised callers *queue* on
    the pool — which is exactly how a few slow calls starve everyone.
    """

    def __init__(self, name: URN, owner: URN, policy: SecurityPolicy,
                 kernel) -> None:
        ResourceImpl.__init__(self, name, owner)
        self.init_access_protocol(policy)
        self._kernel = kernel
        self._pool = Semaphore(kernel, SLOTS)

    def _occupy(self, seconds: float) -> None:
        self._pool.acquire()
        try:
            self._kernel.current_thread().sleep(seconds)
        finally:
            self._pool.release()

    @export
    def lookup(self, key: str) -> str:
        self._occupy(LOOKUP_HOLD)
        return f"value:{key}"

    @export
    def audit_scan(self) -> int:
        self._occupy(SCAN_HOLD)
        return SLOTS


@register_trusted_agent_class
class R2Good(Agent):
    def run(self):
        catalog = self.host.get_resource(CATALOG)
        for i in range(LOOKUPS):
            for _ in range(40):  # retry sheds with a short backoff
                try:
                    catalog.lookup(f"k{i}")
                except SupervisionError:
                    self.host.sleep(1.5)
                else:
                    RESULTS.append(self.host.now())
                    break
            self.host.sleep(1.0)
        self.complete()


@register_trusted_agent_class
class R2Runaway(Agent):
    def run(self):
        catalog = self.host.get_resource(CATALOG)
        done = 0
        while done < SCANS:  # hammers until struck out by the watchdog
            try:
                catalog.audit_scan()
            except SupervisionError:
                self.host.sleep(0.5)
            else:
                done += 1
        self.complete()


def run_wave(supervised: bool, runaways: int = BAD, seed: int = SEED,
             *, servers: int = 1, self_healing: bool = False):
    # ``servers``/``self_healing`` let R5 reuse this calm workload to
    # price the heartbeat+checkpoint plane on a cluster-sized bed; the
    # R2 rows themselves always run the single-server default.
    supervision = None
    if supervised:
        supervision = SupervisorConfig(
            invoke_deadline=2.0,
            resource_concurrency=SLOTS,
            quarantine_after=50,  # isolate shedding+kills from quarantine
            runaway_strikes=3,
        )
    bed = Testbed(servers, seed=seed, supervision=supervision,
                  self_healing=self_healing)
    policy = SecurityPolicy(
        rules=[PolicyRule("any", "*", Rights.of("Catalog.*"), confine=False)]
    )
    bed.home.install_resource(Catalog(URN.parse(CATALOG), OWNER, policy,
                                      bed.kernel))
    RESULTS.clear()
    for i in range(max(GOOD, runaways)):
        if i < GOOD:
            bed.launch(R2Good(), Rights.all(), agent_local=f"good-{i}",
                       register_name=False)
        if i < runaways:
            bed.launch(R2Runaway(), Rights.all(), agent_local=f"bad-{i}",
                       register_name=False)
    wall_start = time.perf_counter()
    bed.run(detect_deadlock=False)
    wall = time.perf_counter() - wall_start
    supervisor = bed.home.supervisor
    return {
        "goodput": sum(1 for t in RESULTS if t <= HORIZON),
        "completed": len(RESULTS),
        "shed": (supervisor.stats["invocations_shed_overload"]
                 if supervisor else 0),
        "killed": (supervisor.stats["agents_killed_runaway"]
                   if supervisor else 0),
        "virtual_end": bed.clock.now(),
        "wall": wall,
        "events": bed.kernel.events_processed,
        "heartbeats": sum(
            s.membership.stats["heartbeats_sent"]
            for s in bed.servers
            if getattr(s, "membership", None) is not None
        ),
    }


def test_overload_unsupervised(benchmark):
    benchmark.pedantic(lambda: run_wave(False), rounds=1, iterations=1)


def test_overload_supervised(benchmark):
    benchmark.pedantic(lambda: run_wave(True), rounds=1, iterations=1)


def test_table_r2(benchmark):
    target = GOOD * LOOKUPS

    def build():
        rows = []
        calm = {}
        for supervised, label in ((False, "unsupervised"),
                                  (True, "supervised")):
            cold = run_wave(supervised)
            warm = run_wave(supervised)
            rows.append([
                label,
                f"{warm['goodput']}/{target}",
                f"{warm['goodput'] / target:.0%}",
                warm["shed"],
                f"{warm['killed']}/{BAD}",
                f"{warm['virtual_end']:.0f}s",
                f"{cold['wall'] * 1e3:.0f}ms",
                f"{warm['wall'] * 1e3:.0f}ms",
            ])
            # Calm workload: no runaways — the fast-path price check.
            calm[supervised] = run_wave(supervised, runaways=0)
        overhead = (
            calm[True]["wall"] / max(calm[False]["wall"], 1e-9) - 1.0
        ) * 100.0
        rows.append([
            "calm-workload overhead (supervised vs not)", "", "", "", "", "",
            "", f"{overhead:+.1f}%",
        ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "R2",
        f"goodput under overload within t<={HORIZON:.0f}s,"
        " supervision on/off",
        ["configuration", "lookups done", "goodput", "shed", "runaways"
         " killed", "virtual end", "wall (cold)", "wall (warm)"],
        rows,
        seed=SEED,
        notes=(
            "unsupervised, every lookup queues FIFO behind 30s audit scans"
            " on the catalog's worker pool and the wave crawls; supervised,"
            " the bulkhead sheds over-cap calls fast (agents back off and"
            " retry) and the watchdog kills each runaway after 3 blown"
            " 2s deadlines, so the well-behaved wave finishes inside the"
            " horizon.  The last row is the supervision layer's wall-clock"
            " price on a calm workload (target: within noise, <5%)."
        ),
    )

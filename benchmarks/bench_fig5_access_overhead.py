"""F5 — the design-space comparison of section 5.4 (Fig. 5's call path).

Per-invocation cost of one enabled resource call under each access-control
design, against a direct (unprotected) call:

- **proxy** (the paper's choice), confined and unconfined;
- **wrapper + ACL**, with growing ACL length (the ACL is consulted per call);
- **security-manager-checked**, with a growing central policy table;
- **Safe-Tcl two-environment** (per-call screening + marshalling).

Paper's prediction: "Once a safe proxy is made available to an agent,
access control checks would require a minimal amount of computation",
wrappers re-check identity per call, and the two-environment design
"can incur substantial overhead ... a transition across system-level
protection domains on every resource access".
"""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.core.baselines.safe_env import SafeEnvironment, TrustedEnvironment
from repro.core.baselines.secman_checked import AppSecurityManager, guard_resource
from repro.core.baselines.wrapper import AccessControlList, wrap_resource
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group
from repro.util.audit import AuditLog

from _common import BenchWorld, time_op, write_table

OWNER = URN.parse("urn:principal:bench.org/owner")


def make_buffer(local="buf"):
    return Buffer(
        URN.parse(f"urn:resource:bench.org/{local}"),
        OWNER,
        SecurityPolicy.allow_all(confine=False),
    )


@pytest.fixture(scope="module")
def world():
    return BenchWorld()


@pytest.fixture(scope="module")
def domain(world):
    return world.agent_domain(Rights.all())


def proxy_for(world, domain, confine: bool):
    buf = make_buffer()
    buf.set_policy(SecurityPolicy.allow_all(confine=confine))
    return buf.get_proxy(domain.credentials, world.context(domain))


def proxy_at_ring(world, domain, ring: int):
    """A proxy bound under an explicit protection ring (PR 6 tiering).

    Ring 2 carries an audit sink, so every successful call writes one
    audit record — the mediation cost untrusted tenants pay.
    """
    from repro.core.access_protocol import BindingContext
    from repro.core.token import RING_TRUSTED

    buf = make_buffer()
    buf.set_policy(SecurityPolicy.allow_all(confine=False))
    audit = None if ring == RING_TRUSTED else AuditLog(world.clock, capacity=256)
    context = BindingContext(
        domain_id=domain.domain_id,
        clock=world.clock,
        server_domain_id="server",
        audit=audit,
        ring=ring,
    )
    return buf.get_proxy(domain.credentials, context)


def acl_wrapper(acl_len: int):
    buf = make_buffer()
    acl = AccessControlList()
    # Non-matching entries first: the real principal matches only the last
    # entry, the worst (and common open-world) case.
    for i in range(acl_len - 1):
        acl.allow("owner", f"urn:principal:other{i}.org/*", Rights.of("Buffer.*"))
    acl.allow("owner", "urn:principal:bench.org/*", Rights.of("Buffer.*"))
    return wrap_resource(buf, acl)


def secman_guarded(world, n_policies: int):
    manager = AppSecurityManager(world.server_domain, AuditLog(world.clock))
    for i in range(n_policies - 1):
        manager.install_app_policy(f"Other{i}", SecurityPolicy.allow_all())
    manager.install_app_policy("Buffer", SecurityPolicy.allow_all(confine=False))
    return guard_resource(make_buffer(), manager)


def safe_env(world):
    trusted = TrustedEnvironment()
    trusted.install("buf", make_buffer())
    safe = SafeEnvironment(trusted)
    safe.set_policy("buf", SecurityPolicy.allow_all(confine=False))
    return safe


# ---------------------------------------------------------------------------
# pytest-benchmark micro timings
# ---------------------------------------------------------------------------


def test_direct_call(benchmark, world, domain):
    buf = make_buffer()
    benchmark(buf.size)


def test_proxy_call_unconfined(benchmark, world, domain):
    proxy = proxy_for(world, domain, confine=False)
    with enter_group(domain.thread_group):
        benchmark(proxy.size)


def test_proxy_call_confined(benchmark, world, domain):
    proxy = proxy_for(world, domain, confine=True)
    with enter_group(domain.thread_group):
        benchmark(proxy.size)


@pytest.mark.parametrize("acl_len", [1, 16, 64])
def test_wrapper_call(benchmark, world, domain, acl_len):
    wrapper = acl_wrapper(acl_len)
    with enter_group(domain.thread_group):
        benchmark(wrapper.size)


@pytest.mark.parametrize("n_policies", [1, 64])
def test_secman_checked_call(benchmark, world, domain, n_policies):
    guarded = secman_guarded(world, n_policies)
    with enter_group(domain.thread_group):
        benchmark(guarded.size)


def test_safe_env_call(benchmark, world, domain):
    safe = safe_env(world)
    with enter_group(domain.thread_group):
        benchmark(lambda: safe.invoke("buf", "size"))


# ---------------------------------------------------------------------------
# The regenerated comparison table
# ---------------------------------------------------------------------------


def test_table_f5(benchmark, world):
    def build_table():
        domain = world.agent_domain(Rights.all())
        rows = []
        buf = make_buffer()
        baseline = time_op(buf.size)
        variants = [
            ("direct (no protection)", buf.size),
            ("proxy, unconfined", None),
            ("proxy, confined", None),
            ("proxy, ring0 (trusted launcher)", None),
            ("proxy, ring2 (per-call audit)", None),
            ("wrapper+ACL (1 entry)", None),
            ("wrapper+ACL (16 entries)", None),
            ("wrapper+ACL (64 entries)", None),
            ("secman-checked (1 policy)", None),
            ("secman-checked (64 policies)", None),
            ("safe-tcl two-environment", None),
        ]
        with enter_group(domain.thread_group):
            from repro.core.token import RING_TRUSTED, RING_UNTRUSTED

            p_u = proxy_for(world, domain, confine=False)
            p_c = proxy_for(world, domain, confine=True)
            p_r0 = proxy_at_ring(world, domain, RING_TRUSTED)
            p_r2 = proxy_at_ring(world, domain, RING_UNTRUSTED)
            w1, w16, w64 = acl_wrapper(1), acl_wrapper(16), acl_wrapper(64)
            s1 = secman_guarded(world, 1)
            s64 = secman_guarded(world, 64)
            se = safe_env(world)
            timings = {
                "direct (no protection)": baseline,
                "proxy, unconfined": time_op(p_u.size),
                "proxy, confined": time_op(p_c.size),
                "proxy, ring0 (trusted launcher)": time_op(p_r0.size),
                "proxy, ring2 (per-call audit)": time_op(p_r2.size),
                "wrapper+ACL (1 entry)": time_op(w1.size),
                "wrapper+ACL (16 entries)": time_op(w16.size),
                "wrapper+ACL (64 entries)": time_op(w64.size),
                "secman-checked (1 policy)": time_op(s1.size),
                "secman-checked (64 policies)": time_op(s64.size),
                "safe-tcl two-environment": time_op(
                    lambda: se.invoke("buf", "size")
                ),
            }
        for label, _ in variants:
            ns = timings[label]
            rows.append([label, ns, ns / baseline])
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    write_table(
        "F5",
        "per-invocation cost by access-control design (Fig. 5 / section 5.4)",
        ["design", "ns/call", "x direct"],
        rows,
        seed=4000,
        notes=(
            "expected shape: proxy ≈ small constant over direct;"
            " wrapper grows with ACL length; the central manager re-runs a"
            " full policy evaluation per call (its table lookup is O(1) —"
            " the paper's objection to it is modularity, not lookup cost);"
            " two-environment pays screening + marshalling every call."
            "  ring0 skips audit bookkeeping (≈ unconfined proxy); ring2"
            " adds one audit record per call — full mediation for"
            " untrusted tenants."
        ),
    )

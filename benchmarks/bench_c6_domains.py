"""C6 — protection-domain creation and resident scaling (section 5.3).

Domain creation = thread group + (for untrusted code) namespace + domain
database record.  Also: how the server behaves as the resident population
grows (registry/db lookups with many agents).
"""

from __future__ import annotations

import pytest

from repro.credentials.rights import Rights
from repro.sandbox.domain import ProtectionDomain
from repro.sandbox.namespace import AgentNamespace
from repro.sandbox.threadgroup import ThreadGroup
from repro.core.domain_db import DomainDatabase

from _common import BenchWorld, time_op, write_table

AGENT_SOURCE = """
class Visitor(Agent):
    def run(self):
        self.complete()
"""


@pytest.fixture(scope="module")
def world():
    return BenchWorld()


def test_thread_group_creation(benchmark):
    benchmark(lambda: ThreadGroup("g"))


def test_domain_creation_trusted(benchmark, world):
    creds = world.credentials(Rights.all())
    counter = iter(range(10**9))
    benchmark(
        lambda: ProtectionDomain(
            f"d{next(counter)}", "agent", ThreadGroup("g"), credentials=creds
        )
    )


def test_namespace_creation_and_load(benchmark):
    class Agent:  # stand-in trusted binding
        pass

    def create():
        ns = AgentNamespace("bench", trusted={"Agent": Agent})
        ns.load(AGENT_SOURCE)

    benchmark(create)


def test_domain_db_admit(benchmark, world):
    db = DomainDatabase(world.clock)
    creds = world.credentials(Rights.all())
    counter = iter(range(10**9))

    def admit():
        domain = ProtectionDomain(
            f"d{next(counter)}", "agent", ThreadGroup("g"), credentials=creds
        )
        with db.privileged():
            db.admit(domain, creds, "home")

    benchmark(admit)


def test_table_c6(benchmark, world):
    def build():
        rows = []
        creds = world.credentials(Rights.all())
        rows.append(["thread group", time_op(lambda: ThreadGroup("g"))])
        counter = iter(range(10**9))
        rows.append([
            "protection domain (trusted code)",
            time_op(lambda: ProtectionDomain(
                f"d{next(counter)}", "agent", ThreadGroup("g"),
                credentials=creds,
            )),
        ])

        class AgentStub:
            pass

        rows.append([
            "namespace construct (builtins copy)",
            time_op(lambda: AgentNamespace("b", trusted={"Agent": AgentStub})),
        ])
        ns_counter = iter(range(10**9))

        def create_and_load():
            ns = AgentNamespace(f"b{next(ns_counter)}",
                                trusted={"Agent": AgentStub})
            ns.load(AGENT_SOURCE)

        rows.append(["namespace + verify + load agent code",
                     time_op(create_and_load, target_seconds=0.03)])
        db = DomainDatabase(world.clock)

        def admit():
            domain = ProtectionDomain(
                f"d{next(counter)}", "agent", ThreadGroup("g"),
                credentials=creds,
            )
            with db.privileged():
                db.admit(domain, creds, "home")

        rows.append(["domain-db admit", time_op(admit, target_seconds=0.03)])
        # resident scaling: db lookups with many residents
        for n in (10, 1000, 10000):
            db2 = DomainDatabase(world.clock)
            last = None
            with db2.privileged():
                for i in range(n):
                    last = ProtectionDomain(
                        f"r{i}", "agent", ThreadGroup("g"), credentials=creds
                    )
                    db2.admit(last, creds, "home")
            rows.append([
                f"domain-db get() with {n} residents",
                time_op(lambda: db2.get(last.domain_id)),
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "C6",
        "protection-domain creation and resident scaling (section 5.3)",
        ["operation", "ns"],
        rows,
        seed=4000,
        notes=(
            "domain creation is microseconds (the namespace's builtins copy"
            " and code verification dominate for untrusted agents);"
            " domain-db access is O(1) in residents."
        ),
    )

"""F3 — the generic resource skeleton (Fig. 3).

The ``Resource`` interface's generic queries (name, owner, kind,
interface) as seen directly and through a proxy, plus reflection over the
exported interface — the machinery every application resource inherits.
"""

from __future__ import annotations

import pytest

from repro.apps.buffer import Buffer
from repro.core.policy import SecurityPolicy
from repro.core.resource import exported_methods, permission_for
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group

from _common import BenchWorld, time_op, write_table

OWNER = URN.parse("urn:principal:bench.org/owner")


@pytest.fixture(scope="module")
def world():
    return BenchWorld()


@pytest.fixture(scope="module")
def setup(world):
    buf = Buffer(URN.parse("urn:resource:bench.org/b"), OWNER,
                 SecurityPolicy.allow_all(confine=False))
    domain = world.agent_domain(Rights.all())
    proxy = buf.get_proxy(domain.credentials, world.context(domain))
    return buf, domain, proxy


def test_resource_name_direct(benchmark, setup):
    buf, _, _ = setup
    benchmark(buf.resource_name)


def test_resource_name_via_proxy(benchmark, setup):
    buf, domain, proxy = setup
    with enter_group(domain.thread_group):
        benchmark(proxy.resource_name)


def test_interface_reflection(benchmark):
    benchmark(exported_methods, Buffer)


def test_permission_formatting(benchmark):
    benchmark(permission_for, Buffer, "get")


def test_table_f3(benchmark, setup):
    buf, domain, proxy = setup

    def build():
        with enter_group(domain.thread_group):
            return [
                ["resource_name (direct)", time_op(buf.resource_name)],
                ["resource_name (proxy)", time_op(proxy.resource_name)],
                ["resource_kind (direct)", time_op(buf.resource_kind)],
                ["resource_kind (proxy)", time_op(proxy.resource_kind)],
                ["resource_interface (direct)", time_op(buf.resource_interface)],
                ["exported_methods reflection", time_op(lambda: exported_methods(Buffer))],
            ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "F3",
        "generic Resource queries (Fig. 3)",
        ["operation", "ns/call"],
        rows,
        seed=4000,
        notes="generic queries inherit the same proxy fast path as Fig. 4 methods.",
    )
